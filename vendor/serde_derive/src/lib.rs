//! Offline shim for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote`: they are unavailable
//! offline). Supports exactly the item shapes this workspace uses:
//!
//! * structs with named fields, including `#[serde(default)]` and
//!   `#[serde(alias = "...")]` field attributes;
//! * enums with unit variants (serialized as the variant name string)
//!   and/or named-field struct variants (externally tagged:
//!   `{"Variant": {fields}}`), matching serde's default representation.
//!
//! Anything else (generics, tuple structs, tuple variants) produces a
//! compile error rather than silently wrong code. Generated impls
//! target the `Value`-based `Serialize`/`Deserialize` traits of the
//! vendored `serde` shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match (&item.shape, mode) {
                (Shape::Struct(fields), Mode::Serialize) => serialize_struct(&item.name, fields),
                (Shape::Struct(fields), Mode::Deserialize) => {
                    deserialize_struct(&item.name, fields)
                }
                (Shape::Enum(variants), Mode::Serialize) => serialize_enum(&item.name, variants),
                (Shape::Enum(variants), Mode::Deserialize) => {
                    deserialize_enum(&item.name, variants)
                }
            };
            code.parse()
                .expect("serde_derive shim generated invalid Rust")
        }
        Err(msg) => format!("::std::compile_error!({msg:?});")
            .parse()
            .expect("compile_error emission"),
    }
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: bool,
    aliases: Vec<String>,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip leading attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive shim: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive shim: expected item name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive shim: generic type `{name}` is not supported"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde_derive shim: `{name}` must be a brace-delimited {kind}"
            ))
        }
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body)?),
        "enum" => Shape::Enum(parse_variants(&name, body)?),
        other => return Err(format!("serde_derive shim: unsupported item `{other}`")),
    };
    Ok(Item { name, shape })
}

/// Parse `#[serde(...)]` contents accumulated for the current field.
fn parse_serde_attr(stream: TokenStream, default: &mut bool, aliases: &mut Vec<String>) {
    let mut iter = stream.into_iter().peekable();
    while let Some(tok) = iter.next() {
        if let TokenTree::Ident(id) = &tok {
            match id.to_string().as_str() {
                "default" => *default = true,
                "alias" => {
                    // `alias = "name"`
                    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        iter.next();
                        if let Some(TokenTree::Literal(lit)) = iter.next() {
                            let s = lit.to_string();
                            aliases.push(s.trim_matches('"').to_string());
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        let mut aliases = Vec::new();
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" {
                        parse_serde_attr(args.stream(), &mut default, &mut aliases);
                    }
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde_derive shim: expected field name, found `{other}` (tuple structs are unsupported)"
                ))
            }
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde_derive shim: expected `:` after `{name}`")),
        }
        // Skip the type: consume until a top-level `,` (tracking `<...>`
        // depth; bracketed token groups are single trees already).
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default,
            aliases,
        });
    }
    Ok(fields)
}

fn parse_variants(enum_name: &str, body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (incl. doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde_derive shim: unexpected token `{other}` in enum `{enum_name}`"
                ))
            }
            None => break,
        };
        i += 1;
        let mut fields = None;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_fields(g.stream())?);
                i += 1;
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde_derive shim: enum `{enum_name}` variant `{name}` is a tuple variant; only unit and struct variants are supported"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next comma.
                i += 1;
                while let Some(tok) = tokens.get(i) {
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
            }
            _ => {}
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(&self.{n})),",
                n = f.name
            )
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{pushes}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let inits = field_inits(fields, "v");
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if !::std::matches!(v, ::serde::Value::Object(_)) {{\n\
                     return ::std::result::Result::Err(::serde::Error::type_mismatch(\"object\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

/// Field initializers for a braced constructor, pulling each field out
/// of the `Value` object named by `src`.
fn field_inits(fields: &[Field], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let mut names = vec![f.name.clone()];
            names.extend(f.aliases.iter().cloned());
            let name_list: String = names.iter().map(|n| format!("{n:?},")).collect();
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::missing_field({:?}))",
                    f.name
                )
            };
            format!(
                "{field}: match ::serde::Value::get_first({src}, &[{name_list}]) {{\n\
                     ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                     ::std::option::Option::None => {missing},\n\
                 }},",
                field = f.name
            )
        })
        .collect()
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    // Externally tagged, as serde does by default: unit variants become
    // the variant-name string, struct variants `{"Variant": {fields}}`.
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                None => format!(
                    "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),"
                ),
                Some(fields) => {
                    let bindings: String =
                        fields.iter().map(|f| format!("{},", f.name)).collect();
                    let pushes: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({n:?}), ::serde::Serialize::to_value({n})),",
                                n = f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {bindings} }} => ::serde::Value::Object(::std::vec![(\n\
                             ::std::string::String::from({vn:?}),\n\
                             ::serde::Value::Object(::std::vec![{pushes}]),\n\
                         )]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| v.fields.is_none())
        .map(|v| {
            format!(
                "{:?} => ::std::result::Result::Ok({name}::{}),",
                v.name, v.name
            )
        })
        .collect();
    let struct_arms: String = variants
        .iter()
        .filter_map(|v| v.fields.as_ref().map(|f| (&v.name, f)))
        .map(|(vn, fields)| {
            let inits = field_inits(fields, "__inner");
            format!("{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),")
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\n\
                             \"unknown variant `{{other}}` for enum {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &entries[0];\n\
                         match __tag.as_str() {{\n\
                             {struct_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\n\
                                 \"unknown variant `{{other}}` for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::type_mismatch(\"string or single-key object\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
