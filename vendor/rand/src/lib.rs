//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::{gen, gen_range, gen_bool}`](Rng). The generator is a
//! xoshiro256** seeded through splitmix64 — deterministic and portable,
//! but **not** bit-compatible with upstream `rand`'s `StdRng` (tests in
//! this repository only ever assert same-seed self-consistency).

use std::ops::{Range, RangeInclusive};

/// Deterministic seeding, by `u64` only.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Raw 64-bit output.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`: uniform
    /// in `[0, 1)` for floats, uniform over all values for integers and
    /// `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// The "standard" distribution of `T` (see [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (see [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard the half-open contract against rounding up.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                (lo + unit * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let f = r.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
            let u = r.gen_range(0u64..1);
            assert_eq!(u, 0);
            let inc = r.gen_range(3usize..=3);
            assert_eq!(inc, 3);
        }
    }

    #[test]
    fn unit_floats_cover_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi);
    }
}
