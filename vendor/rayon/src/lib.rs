//! Offline shim for the `rayon` crate.
//!
//! Mirrors the rayon trait names (`IntoParallelIterator`,
//! `par_iter`, `par_iter_mut`, `ParallelIterator::{map, for_each,
//! enumerate, collect, sum, count}`) so callers are source-compatible
//! with upstream, but executes on `std::thread::scope` with one
//! contiguous chunk per available core instead of a work-stealing pool.
//! Ordering guarantees match rayon's indexed iterators: `collect`
//! preserves input order.

use std::thread;

/// Worker count: one per available core.
fn threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Apply `consumer` to every `(index, item)` pair in parallel,
/// returning results in input order.
fn drive_chunks<T: Send, R: Send>(
    items: Vec<T>,
    consumer: &(impl Fn(usize, T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    let workers = threads().min(n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| consumer(i, x))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    // Pair each input chunk with its output chunk so threads write
    // disjoint regions.
    let mut item_chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        item_chunks.push(std::mem::replace(&mut items, rest));
    }
    thread::scope(|s| {
        for (ci, (in_chunk, out_chunk)) in item_chunks
            .into_iter()
            .zip(out.chunks_mut(chunk))
            .enumerate()
        {
            s.spawn(move || {
                let base = ci * chunk;
                for (j, (x, slot)) in in_chunk.into_iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(consumer(base + j, x));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect()
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The produced element type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `collection.par_iter()` — parallel iteration by shared reference.
pub trait IntoParallelRefIterator<'data> {
    /// The produced element type (`&'data T`).
    type Item: Send + 'data;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterate by shared reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    type Iter = <&'data C as IntoParallelIterator>::Iter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `collection.par_iter_mut()` — parallel iteration by unique reference.
pub trait IntoParallelRefMutIterator<'data> {
    /// The produced element type (`&'data mut T`).
    type Item: Send + 'data;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterate by unique reference.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoParallelIterator,
{
    type Item = <&'data mut C as IntoParallelIterator>::Item;
    type Iter = <&'data mut C as IntoParallelIterator>::Iter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// A parallel iterator: adaptors compose closures, the terminal
/// operation fans work out across threads.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Apply `consumer` to each `(index, item)` in parallel, preserving
    /// input order in the result.
    fn drive<R: Send>(self, consumer: &(impl Fn(usize, Self::Item) -> R + Sync)) -> Vec<R>;

    /// Map each element through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Pair each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Run `f` on every element.
    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        self.drive(&|_, x| f(x));
    }

    /// Collect into `C`, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive(&|_, x| x).into_iter().collect()
    }

    /// Sum the elements.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive(&|_, x| x).into_iter().sum()
    }

    /// Count the elements.
    fn count(self) -> usize {
        self.drive(&|_, _| ()).len()
    }
}

/// Source iterator over pre-materialized items.
pub struct ParVec<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn drive<R: Send>(self, consumer: &(impl Fn(usize, T) -> R + Sync)) -> Vec<R> {
        drive_chunks(self.items, consumer)
    }
}

/// [`ParallelIterator::map`] adaptor.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I: ParallelIterator, R: Send, F: Fn(I::Item) -> R + Sync + Send> ParallelIterator
    for Map<I, F>
{
    type Item = R;

    fn drive<R2: Send>(self, consumer: &(impl Fn(usize, R) -> R2 + Sync)) -> Vec<R2> {
        let f = &self.f;
        self.inner.drive(&move |i, x| consumer(i, f(x)))
    }
}

/// [`ParallelIterator::enumerate`] adaptor.
pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn drive<R: Send>(self, consumer: &(impl Fn(usize, (usize, I::Item)) -> R + Sync)) -> Vec<R> {
        self.inner.drive(&move |i, x| consumer(i, (i, x)))
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParVec<&'a T>;

    fn into_par_iter(self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParVec<&'a T>;

    fn into_par_iter(self) -> ParVec<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = ParVec<&'a mut T>;

    fn into_par_iter(self) -> ParVec<&'a mut T> {
        ParVec {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = ParVec<&'a mut T>;

    fn into_par_iter(self) -> ParVec<&'a mut T> {
        self.as_mut_slice().into_par_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParVec<usize>;

    fn into_par_iter(self) -> ParVec<usize> {
        ParVec {
            items: self.collect(),
        }
    }
}

/// The traits a caller needs in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        let mut v = vec![0u32; 5000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_indices_are_global() {
        let v = vec![7u8; 1000];
        let idx: Vec<usize> = v.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(idx, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn range_source_and_sum() {
        let total: usize = (0..1000usize).into_par_iter().map(|i| i).sum();
        assert_eq!(total, 499_500);
        assert_eq!((0..77usize).into_par_iter().count(), 77);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
