//! Offline shim for the `serde` crate.
//!
//! Instead of serde's visitor architecture, this shim routes everything
//! through a single JSON-like [`Value`] data model: [`Serialize`] maps a
//! type *to* a [`Value`], [`Deserialize`] builds a type *from* one. The
//! companion `serde_json` shim renders/parses `Value` as JSON text, and
//! `serde_derive` generates these impls for plain structs and
//! unit-variant enums.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Error, Value};

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Build `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for primitives and containers.
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Tuples serialize as fixed-length arrays, as in upstream serde.
macro_rules! serialize_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($idx)),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::type_mismatch("fixed-length array", other)),
                }
            }
        }
    )*};
}
serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Supports round-tripping types that store `&'static str` (e.g.
        // model cards). Leaks the string; acceptable for the config- and
        // test-sized payloads this workspace deserializes.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => {
                        let lo = <$t>::MIN as f64;
                        let hi = <$t>::MAX as f64;
                        if *n >= lo && *n <= hi {
                            Ok(*n as $t)
                        } else {
                            Err(Error::new(format!(
                                "integer {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::type_mismatch("number", other)),
                }
            }
        }
    )*};
}
deserialize_float!(f32, f64);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
