//! The JSON-like data model shared by the `serde`/`serde_json` shims.

use std::fmt;
use std::ops::Index;

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers are exact up to 2^53).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// First object member matching any of `names` (field name plus
    /// aliases, for the derive's `#[serde(alias)]` support).
    pub fn get_first(&self, names: &[&str]) -> Option<&Value> {
        names.iter().find_map(|n| self.get(n))
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render as indented JSON.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&render_number(*n)),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn render_number(n: f64) -> String {
    if n.is_nan() || n.is_infinite() {
        // JSON has no non-finite literals; follow serde_json's lossy
        // convention of emitting null.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        let mut s = format!("{n}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `value["key"]` / `value[index]` access, returning `Null` when absent
/// (mirroring `serde_json`).
impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, found Y"-style error.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::new(format!("expected {expected}, found {kind}"))
    }

    /// Error for a required field that is absent.
    pub fn missing_field(name: &str) -> Self {
        Error::new(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
