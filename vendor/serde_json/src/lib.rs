//! Offline shim for `serde_json`: JSON text rendering and parsing over
//! the vendored `serde` shim's [`Value`] data model.

pub use serde::{Error, Value};

/// Serialize `value` as compact JSON text.
///
/// # Errors
///
/// Never fails in this shim (the signature matches upstream).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render())
}

/// Serialize `value` as 2-space-indented JSON text.
///
/// # Errors
///
/// Never fails in this shim (the signature matches upstream).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Parse JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the config
                            // files this workspace parses.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value =
            from_str(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#).unwrap();
        assert_eq!(v["a"][0], 1.0f64);
        assert_eq!(v["a"][1], 2.5f64);
        assert_eq!(v["b"]["c"], "x\ny");
        assert_eq!(v["b"]["d"].as_bool(), Some(true));
        assert_eq!(v["e"], Value::Null);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn round_trips_through_text() {
        let v: Value = from_str(r#"{"k": [true, "s", 12, 1.5]}"#).unwrap();
        let text = to_string(&v).unwrap();
        let v2: Value = from_str(&text).unwrap();
        assert_eq!(v, v2);
        let pretty = to_string_pretty(&v).unwrap();
        let v3: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v3);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>(r#""unterminated"#).is_err());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let v: Value = from_str("[1200, 1.25]").unwrap();
        assert_eq!(to_string(&v).unwrap(), "[1200,1.25]");
    }
}
