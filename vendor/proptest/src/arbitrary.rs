//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, Standard};
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
