//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}
