//! Offline shim for the `proptest` crate.
//!
//! Provides the `proptest!` macro, `prop_assert*` macros,
//! [`ProptestConfig`], a [`Strategy`](strategy::Strategy) trait over
//! numeric ranges / tuples / `prop_map`, `prop::collection::vec`, and
//! `any::<T>()`. Differences from upstream:
//!
//! * each test case's RNG seed is derived deterministically from the
//!   case index, so runs are exactly reproducible everywhere;
//! * there is **no shrinking** — a failing case reports its inputs via
//!   the panic message (the `Debug` of each bound variable).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Mirrors upstream's grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<bool>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn` inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_cases(stringify!($name), |__proptest_rng| {
                let mut __proptest_inputs = ::std::string::String::new();
                $(
                    let __proptest_val =
                        $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    __proptest_inputs.push_str(&::std::format!(
                        "{} = {:?}; ",
                        ::std::stringify!($pat),
                        &__proptest_val
                    ));
                    let $pat = __proptest_val;
                )+
                let __proptest_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __proptest_result.map_err(|e| e.with_inputs(&__proptest_inputs))
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert within a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard a case when its inputs don't satisfy a precondition. This
/// shim counts a discarded case as passing (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in -4i64..=4, f in 0.5f64..2.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(any::<bool>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn tuples_and_map_compose(p in (0u8..10, 0u8..10).prop_map(|(a, b)| (a.min(b), a.max(b)))) {
            prop_assert!(p.0 <= p.1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_accepted(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u32..100, 1..10);
        let a: Vec<Vec<u32>> = (0..20)
            .map(|i| strat.generate(&mut StdRng::seed_from_u64(i)))
            .collect();
        let b: Vec<Vec<u32>> = (0..20)
            .map(|i| strat.generate(&mut StdRng::seed_from_u64(i)))
            .collect();
        assert_eq!(a, b);
    }
}
