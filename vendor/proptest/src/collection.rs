//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// `Vec` strategy: a length from `size` and elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
