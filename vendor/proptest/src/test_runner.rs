//! Deterministic case runner.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default. Override per-block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    inputs: Option<String>,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            inputs: None,
        }
    }

    /// Attach the generated inputs for the failure report.
    pub fn with_inputs(mut self, inputs: &str) -> Self {
        self.inputs = Some(inputs.to_string());
        self
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(inputs) = &self.inputs {
            write!(f, "\n  inputs: {inputs}")?;
        }
        Ok(())
    }
}

/// Runs a property over its configured number of cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run `case` once per configured case with a case-indexed RNG.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case whose
    /// closure returns an error. Since seeds derive from the case index
    /// alone, a failure reproduces identically on re-run.
    pub fn run_cases<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            // Golden-ratio stride decorrelates neighbouring cases while
            // keeping every run identical.
            let seed = (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest property `{name}` failed at case {i}/{}:\n{e}",
                    self.config.cases
                );
            }
        }
    }
}
