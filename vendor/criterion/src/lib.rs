//! Offline shim for the `criterion` crate.
//!
//! Runs each benchmark closure for a fixed number of timed iterations
//! (after a short warm-up) and prints the mean time per iteration. No
//! statistical analysis, HTML reports, or CLI parsing — just enough to
//! keep `[[bench]]` targets with `harness = false` building and
//! producing useful numbers offline.
//!
//! Beyond printing, every completed benchmark is recorded on the
//! [`Criterion`] instance: [`Criterion::results`] returns the
//! `(label, mean ns/iter)` pairs and [`Criterion::summary_json`] renders
//! them as a minimal JSON object, which is how `hnlpu-bench` emits its
//! committed machine-readable baselines (upstream criterion writes
//! `estimates.json` files; this shim exposes the equivalent directly).

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
}

impl Bencher {
    /// Time `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        std_black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn report(label: &str, mean_ns: f64) {
    if mean_ns >= 1e6 {
        println!("bench {label:<60} {:>12.3} ms/iter", mean_ns / 1e6);
    } else if mean_ns >= 1e3 {
        println!("bench {label:<60} {:>12.3} us/iter", mean_ns / 1e3);
    } else {
        println!("bench {label:<60} {:>12.1} ns/iter", mean_ns);
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// `(label, mean ns/iter)` of every completed benchmark, in run order.
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the default per-benchmark sample count (groups may override).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn record(&mut self, label: &str, mean_ns: f64) {
        report(label, mean_ns);
        self.results.push((label.to_string(), mean_ns));
    }

    /// Benchmark a single closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.record(name, b.mean_ns);
        self
    }

    /// Open a named group of related benchmarks. Results land on this
    /// `Criterion` when the group runs them.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    /// `(label, mean ns/iter)` of every benchmark run so far, in order.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }

    /// The collected results as a minimal JSON object
    /// (`{"label": mean_ns, ...}`), insertion-ordered.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (label, ns)) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            for ch in label.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str("\":");
            out.push_str(&format!("{ns:.1}"));
        }
        out.push('}');
        out
    }
}

/// A named group of benchmarks, recording onto its parent [`Criterion`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.criterion
            .record(&format!("{}/{}", self.name, id), b.mean_ns);
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.criterion
            .record(&format!("{}/{}", self.name, id), b.mean_ns);
        self
    }

    /// Finish the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_recorded_and_summarized() {
        let mut c = Criterion::default();
        c.sample_size(2);
        c.bench_function("alpha", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("beta", |b| b.iter(|| black_box(2 + 2)));
            g.finish();
        }
        let labels: Vec<&str> = c.results().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["alpha", "grp/beta"]);
        assert!(c.results().iter().all(|&(_, ns)| ns >= 0.0));
        let json = c.summary_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"alpha\":"));
        assert!(json.contains("\"grp/beta\":"));
    }

    #[test]
    fn summary_json_escapes_labels() {
        let mut c = Criterion::default();
        c.results.push(("a\"b\\c".to_string(), 1.0));
        assert_eq!(c.summary_json(), "{\"a\\\"b\\\\c\":1.0}");
    }
}
