//! Offline shim for the `criterion` crate.
//!
//! Runs each benchmark closure for a fixed number of timed iterations
//! (after a short warm-up) and prints the mean time per iteration. No
//! statistical analysis, HTML reports, or CLI parsing — just enough to
//! keep `[[bench]]` targets with `harness = false` building and
//! producing useful numbers offline.

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
}

impl Bencher {
    /// Time `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        std_black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn report(label: &str, mean_ns: f64) {
    if mean_ns >= 1e6 {
        println!("bench {label:<60} {:>12.3} ms/iter", mean_ns / 1e6);
    } else if mean_ns >= 1e3 {
        println!("bench {label:<60} {:>12.3} us/iter", mean_ns / 1e3);
    } else {
        println!("bench {label:<60} {:>12.1} ns/iter", mean_ns);
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Benchmark a single closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(name, b.mean_ns);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_ns);
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_ns);
        self
    }

    /// Finish the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
