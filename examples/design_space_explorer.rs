//! Design-space exploration: sweep the Metal-Embedding scan factor (the
//! area-vs-latency knob §3.1's bit-serialization exposes), chip counts, and
//! the Table 4 model zoo.
//!
//! Run with: `cargo run --release -p hnlpu --example design_space_explorer`

use hnlpu::circuit::TechNode;
use hnlpu::embed::array::{HnArrayPlan, MeNeuronParams};
use hnlpu::litho::nre::{chips_for_model, model_nre_price};
use hnlpu::model::zoo;
use hnlpu::sim::{pipeline, SimConfig};

fn main() {
    let tech = TechNode::n5();
    let cfg = zoo::gpt_oss_120b().config;

    println!("=== Scan-factor ablation (gpt-oss 120B, 16 chips) ===");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>16}",
        "scan", "HN array mm²", "array W", "proj cyc", "decode tokens/s"
    );
    for scan in [1u32, 2, 4, 6, 8, 10, 12, 16] {
        let mut p = MeNeuronParams::array_default();
        p.scan_factor = scan;
        let plan = HnArrayPlan::plan(&cfg, 16, p);
        let sim = SimConfig::for_model(&cfg, plan.projection_cycles());
        println!(
            "{:>6} {:>14.1} {:>12.1} {:>12} {:>16.0}",
            scan,
            plan.area_mm2(&tech),
            plan.power_w(&tech),
            plan.projection_cycles(),
            pipeline::decode_throughput(&sim, 2048)
        );
    }
    println!(
        "(The paper's operating point is scan=10: 573 mm²/chip, 250K tokens/s.\n\
         Lower scan buys latency with silicon; the comm-bound pipeline means\n\
         throughput barely moves — exactly why the paper serializes hard.)\n"
    );

    println!("=== Chip-count sweep (gpt-oss 120B, scan=10) ===");
    println!(
        "{:>6} {:>14} {:>16}",
        "chips", "HN array mm²", "per-chip fits?"
    );
    for chips in [8u32, 16, 32, 64] {
        let plan = HnArrayPlan::plan(&cfg, chips, MeNeuronParams::array_default());
        let area = plan.area_mm2(&tech);
        println!(
            "{:>6} {:>14.1} {:>16}",
            chips,
            area,
            if area < 700.0 {
                "yes (<700 mm²)"
            } else {
                "no"
            }
        );
    }
    println!();

    println!("=== Table 4: chip NRE across the model zoo ===");
    println!(
        "{:>14} {:>8} {:>10} {:>24}",
        "model", "chips", "paper $M", "our initial NRE"
    );
    let quotes = [
        (zoo::gpt_oss_120b(), f64::NAN),
        (zoo::kimi_k2(), 462.0),
        (zoo::deepseek_v3(), 353.0),
        (zoo::qwen3_235b(), f64::NAN),
        (zoo::mixtral_8x7b(), f64::NAN),
        (zoo::qwq_32b(), 69.0),
        (zoo::llama3_8b(), 38.0),
    ];
    for (card, paper) in quotes {
        let nre = model_nre_price(&card);
        println!(
            "{:>14} {:>8} {:>10} {:>24}",
            card.name,
            chips_for_model(&card),
            if paper.is_nan() {
                "-".to_string()
            } else {
                format!("{paper:.0}")
            },
            nre.initial_build().to_string()
        );
    }
    println!(
        "\n(The paper does not disclose its per-model chip-count assumptions;\n\
         this parametric model derives chips from weight bits at gpt-oss's\n\
         per-chip capacity and scales design effort by sqrt(chips).)"
    );
}
