//! Serving simulation, two ways.
//!
//! Part 1 drives the HNLPU's hardware continuous-batching scheduler with a
//! bursty chat-style workload (the paper's motivating cloud-serving
//! scenario) and reports the *analytical* throughput, latency, and
//! occupancy of the 120 B machine.
//!
//! Part 2 runs *real tokens* through the batched dataflow engine: the same
//! scheduler plans per-round slot assignments, and the functional 16-chip
//! executor replays that exact schedule on a small test model — measured
//! tokens/s, KV-pool footprint, and collective counts come from actual
//! execution, not a formula.
//!
//! Part 3 is the *online* mode: dynamically arriving requests (diurnal
//! Poisson arrivals) hit the event-driven `OnlineServer` — bounded
//! admission queue, incremental prefill/decode scheduling, per-token
//! streaming, cancellation — and the sweep over arrival rates × admission
//! caps reports p50/p99 TTFT and TPOT in virtual time, written to
//! `serve-slo-report.json` for the CI artifact.
//!
//! Run with: `cargo run --release -p hnlpu --example serving_simulator`
//! (set `HNLPU_SERVE_QUICK=1` for the small smoke configuration).

use hnlpu::llm::serve::OnlineServer;
use hnlpu::llm::{BatchedDataflowExecutor, DataflowExecutor, SequenceRequest, SloReport};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use hnlpu::sim::{BatchScheduler, SimConfig, WorkloadKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn analytical_sweep(cfg: &SimConfig) {
    println!("== analytical: 120B machine, chat workload sweep ==");
    println!(
        "pipeline slots: {}  |  nominal 2K-context decode rate: ~250K tokens/s\n",
        cfg.pipeline_slots()
    );
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "arrivals/s", "requests", "tokens/s", "occupancy", "p50 lat s", "p99 lat s"
    );
    for rate in [50.0f64, 200.0, 500.0, 1000.0, 2000.0] {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Chat,
            requests: 3000,
            arrivals_per_s: rate,
            seed: 7,
        };
        let reqs = spec.generate();
        let scheduler = BatchScheduler::new(cfg.clone(), spec.nominal_context());
        let report = scheduler.run(&reqs);
        let mut lats: Vec<f64> = report.completions.iter().map(|c| c.latency_s).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "{:>12.0} {:>12} {:>14.0} {:>12.3} {:>12.3} {:>12.3}",
            rate,
            report.completions.len(),
            report.throughput_tokens_per_s,
            report.mean_occupancy,
            percentile(&lats, 0.50),
            percentile(&lats, 0.99)
        );
    }
    println!(
        "\nAt low arrival rates the machine is latency-bound (idle slots); past\n\
         ~500 req/s the 216 slots saturate and aggregate throughput approaches\n\
         the Table 2 steady-state figure while tail latency grows with queueing.\n"
    );
}

fn measured_batched_run(cfg: &SimConfig) {
    println!("== measured: real tokens through the batched dataflow engine ==");
    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
    let engine = BatchedDataflowExecutor::new(
        DataflowExecutor::new(weights),
        cfg.pipeline_slots() as usize,
    );
    // A small chat-shaped trace with real prompt tokens (the functional
    // model is the 4x4-mappable test architecture, not the 120B machine).
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<SequenceRequest> = (0..24)
        .map(|i| {
            let prompt_len = rng.gen_range(4..16);
            let prompt = (0..prompt_len)
                .map(|_| rng.gen_range(0..card.config.vocab_size as u32))
                .collect();
            SequenceRequest::greedy(i * 500, prompt, rng.gen_range(8..24))
        })
        .collect();
    let scheduler = BatchScheduler::new(cfg.clone(), 2048);
    let (report, timing) = engine
        .run_with_scheduler(&requests, &scheduler)
        .expect("scheduler-produced plan executes");

    println!(
        "model: {}  |  sequences: {}  |  slots used at peak: {}",
        card.name,
        requests.len(),
        report.peak_resident
    );
    println!(
        "rounds: {}  |  prefill tokens: {}  |  decode tokens: {}",
        report.rounds, report.prefill_tokens, report.decoded_tokens
    );
    println!(
        "peak pooled KV: {} bytes fp16  |  collectives: {} ARs, {} reduces, {} AGs",
        report.peak_kv_bytes_fp16,
        report.comm.all_reduces,
        report.comm.reduces,
        report.comm.all_gathers
    );
    println!(
        "measured (functional, this host): {:>10.0} decode tokens/s  ({:.0} incl. prefill)",
        report.measured_decode_tokens_per_s(),
        report.measured_tokens_per_s()
    );
    println!(
        "analytical (120B HNLPU timing):   {:>10.0} decode tokens/s for the same schedule",
        timing.throughput_tokens_per_s
    );
    println!(
        "\nBoth numbers come from the SAME per-round slot assignments: the\n\
         scheduler's RoundPlans drive the functional engine token-for-token\n\
         (differentially tested against per-sequence execution), while the\n\
         timing model prices those rounds for the full-size machine."
    );
}

/// One cell of the online SLO sweep, serialized into the CI artifact.
#[derive(Serialize)]
struct SloCell {
    arrivals_per_s: f64,
    queue_capacity: usize,
    cancelled_every: Option<usize>,
    slo: SloReport,
}

/// The `serve-slo-report.json` artifact.
#[derive(Serialize)]
struct SloArtifact {
    model: String,
    requests_per_cell: usize,
    pipeline_slots: u32,
    workload: &'static str,
    cells: Vec<SloCell>,
}

/// A chat-shaped functional request trace riding the workload generator's
/// arrival process: arrival times come from the (seeded, diurnal Poisson)
/// trace; prompts/decodes are shrunk to the test model's scale.
fn functional_trace(spec: &WorkloadSpec, vocab: u32, seed: u64) -> Vec<SequenceRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    spec.generate_with_seed(seed)
        .iter()
        .map(|r| {
            let prompt_len = rng.gen_range(4..16);
            let prompt = (0..prompt_len).map(|_| rng.gen_range(0..vocab)).collect();
            SequenceRequest::greedy(r.arrival_s_micros, prompt, rng.gen_range(8..32))
        })
        .collect()
}

fn online_serving_run(cfg: &SimConfig, quick: bool) {
    println!("== online: event-driven serving with SLOs (virtual time) ==");
    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
    let scheduler = BatchScheduler::new(cfg.clone(), 2048);
    let requests_per_cell = if quick { 72 } else { 480 };
    // The machine decodes ~250K tokens/s across 216 slots; chat requests
    // average ~30 tokens, so saturation begins near 9K arrivals/s — the
    // sweep brackets it (under, near, far past).
    let rates: &[f64] = if quick {
        &[2_000.0]
    } else {
        &[2_000.0, 8_000.0, 32_000.0]
    };
    let caps: &[usize] = if quick { &[64] } else { &[32, 1024] };
    // The last sweep point also cancels every 7th request mid-flight to
    // exercise slot reclamation under load.
    let cancel_every = 7usize;

    println!(
        "model: {}  |  {} requests/cell  |  diurnal Poisson arrivals  |  {} slots\n",
        card.name,
        requests_per_cell,
        scheduler.slots()
    );
    println!(
        "{:>10} {:>9} {:>8} {:>8} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "arrivals/s",
        "queue cap",
        "done",
        "cancel",
        "reject",
        "TTFT p50 s",
        "TTFT p99 s",
        "TPOT p50 s",
        "TPOT p99 s"
    );

    let mut cells = Vec::new();
    for (ci, &rate) in rates.iter().enumerate() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::DiurnalChat,
            requests: requests_per_cell,
            arrivals_per_s: rate,
            seed: 7,
        };
        let requests = functional_trace(&spec, card.config.vocab_size as u32, 7 + ci as u64);
        for (ki, &cap) in caps.iter().enumerate() {
            let with_cancels = ci + 1 == rates.len() && ki + 1 == caps.len();
            let cancels: Vec<(u64, usize)> = if with_cancels {
                requests
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % cancel_every == cancel_every - 1)
                    .map(|(i, r)| (r.arrival_s_micros + 2_000, i))
                    .collect()
            } else {
                Vec::new()
            };
            let engine = BatchedDataflowExecutor::new(
                DataflowExecutor::new(weights.clone()),
                cfg.pipeline_slots() as usize,
            );
            let mut server =
                OnlineServer::new(engine, &scheduler, cap).expect("slots fit the engine pool");
            let outcome = server.run_trace(&requests, &cancels);
            let slo = outcome.report.slo.clone();
            println!(
                "{:>10.0} {:>9} {:>8} {:>8} {:>8} {:>11.4} {:>11.4} {:>11.5} {:>11.5}",
                rate,
                cap,
                slo.completed,
                slo.cancelled,
                slo.rejected,
                slo.ttft_p50_s,
                slo.ttft_p99_s,
                slo.tpot_p50_s,
                slo.tpot_p99_s
            );
            cells.push(SloCell {
                arrivals_per_s: rate,
                queue_capacity: cap,
                cancelled_every: with_cancels.then_some(cancel_every),
                slo,
            });
        }
    }

    let artifact = SloArtifact {
        model: card.name.to_string(),
        requests_per_cell,
        pipeline_slots: cfg.pipeline_slots(),
        workload: "diurnal-chat",
        cells,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("report serializes");
    std::fs::write("serve-slo-report.json", json).expect("report file writes");
    println!(
        "\nTight admission queues trade rejections for tail latency: under the\n\
         heavy arrival rate the small queue sheds load (typed QueueFull) and\n\
         keeps TTFT p99 bounded, while the deep queue accepts everything and\n\
         lets queueing delay dominate the tail. Every cell replays bit-for-bit\n\
         against offline planning (see tests/tests/online_differential.rs).\n\
         Wrote serve-slo-report.json."
    );
}

fn main() {
    let cfg = SimConfig::paper_default();
    let quick = std::env::var_os("HNLPU_SERVE_QUICK").is_some();
    println!("HNLPU continuous-batching serving simulation\n");
    analytical_sweep(&cfg);
    measured_batched_run(&cfg);
    println!();
    online_serving_run(&cfg, quick);
}
