//! Serving simulation: drive the HNLPU's hardware continuous-batching
//! scheduler with a bursty chat-style workload (the paper's motivating
//! cloud-serving scenario) and report throughput, latency, and occupancy.
//!
//! Run with: `cargo run --release -p hnlpu --example serving_simulator`

use hnlpu::sim::{BatchScheduler, SimConfig, WorkloadKind, WorkloadSpec};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let cfg = SimConfig::paper_default();
    println!("HNLPU continuous-batching serving simulation");
    println!(
        "pipeline slots: {}  |  nominal 2K-context decode rate: ~250K tokens/s\n",
        cfg.pipeline_slots()
    );
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "arrivals/s", "requests", "tokens/s", "occupancy", "p50 lat s", "p99 lat s"
    );
    for rate in [50.0f64, 200.0, 500.0, 1000.0, 2000.0] {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Chat,
            requests: 3000,
            arrivals_per_s: rate,
            seed: 7,
        };
        let reqs = spec.generate();
        let scheduler = BatchScheduler::new(cfg.clone(), spec.nominal_context());
        let report = scheduler.run(&reqs);
        let mut lats: Vec<f64> = report.completions.iter().map(|c| c.latency_s).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "{:>12.0} {:>12} {:>14.0} {:>12.3} {:>12.3} {:>12.3}",
            rate,
            report.completions.len(),
            report.throughput_tokens_per_s,
            report.mean_occupancy,
            percentile(&lats, 0.50),
            percentile(&lats, 0.99)
        );
    }
    println!(
        "\nAt low arrival rates the machine is latency-bound (idle slots); past\n\
         ~500 req/s the 216 slots saturate and aggregate throughput approaches\n\
         the Table 2 steady-state figure while tail latency grows with queueing."
    );
}
