//! Serving simulation, two ways.
//!
//! Part 1 drives the HNLPU's hardware continuous-batching scheduler with a
//! bursty chat-style workload (the paper's motivating cloud-serving
//! scenario) and reports the *analytical* throughput, latency, and
//! occupancy of the 120 B machine.
//!
//! Part 2 runs *real tokens* through the batched dataflow engine: the same
//! scheduler plans per-round slot assignments, and the functional 16-chip
//! executor replays that exact schedule on a small test model — measured
//! tokens/s, KV-pool footprint, and collective counts come from actual
//! execution, not a formula.
//!
//! Part 3 is the *online* mode: dynamically arriving requests (diurnal
//! Poisson arrivals) hit the event-driven `OnlineServer` — bounded
//! admission queue, incremental prefill/decode scheduling, per-token
//! streaming, cancellation — and the sweep over arrival rates × admission
//! caps reports p50/p99 TTFT and TPOT in virtual time, written to
//! `serve-slo-report.json` for the CI artifact.
//!
//! Part 4 is the *chaos* mode: the same online server runs the same trace
//! under seeded fault plans — chip kills (permanent; hardwired chips are
//! remapped, never repaired), stragglers, lossy links, and deadlines — and
//! every scenario is self-checking: survivor streams must be bit-identical
//! to the fault-free baseline, partial streams must be prefixes, KV slots
//! must be freed exactly once per admission, and the SLO ledger must
//! reconcile. Results go to `fault-report.json` for the CI artifact; any
//! violated invariant aborts the run (the CI smoke step is blocking).
//!
//! Part 5 is the *prefix reuse* mode: a sweep over prompt-sharing levels
//! (0%, 50%, 90% of every prompt shared, system-prompt style) runs the
//! same traces through the dense engine and the paged radix-cache engine.
//! Self-checks (abort-on-violation): token streams bit-identical at every
//! sharing level, and at 90% sharing the cache must cut prefill matvec
//! work by at least 2x. A budgeted online cell additionally exercises
//! deterministic LRU eviction. Results go to `prefix-reuse-report.json`
//! for the CI artifact.
//!
//! Run with: `cargo run --release -p hnlpu --example serving_simulator`
//! (set `HNLPU_SERVE_QUICK=1` for the small smoke configuration).

use hnlpu::llm::fault::{ChaosSpec, FaultPlan};
use hnlpu::llm::serve::{OnlineServer, SeqState, ServeError, ServeReport};
use hnlpu::llm::{
    BatchedDataflowExecutor, DataflowExecutor, PrefixCacheConfig, PrefixStats, SequenceRequest,
    SloReport,
};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use hnlpu::sim::{shared_prefix_tokens, BatchScheduler, SimConfig, WorkloadKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn analytical_sweep(cfg: &SimConfig) {
    println!("== analytical: 120B machine, chat workload sweep ==");
    println!(
        "pipeline slots: {}  |  nominal 2K-context decode rate: ~250K tokens/s\n",
        cfg.pipeline_slots()
    );
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "arrivals/s", "requests", "tokens/s", "occupancy", "p50 lat s", "p99 lat s"
    );
    for rate in [50.0f64, 200.0, 500.0, 1000.0, 2000.0] {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Chat,
            requests: 3000,
            arrivals_per_s: rate,
            seed: 7,
        };
        let reqs = spec.generate();
        let scheduler = BatchScheduler::new(cfg.clone(), spec.nominal_context());
        let report = scheduler.run(&reqs);
        let mut lats: Vec<f64> = report.completions.iter().map(|c| c.latency_s).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "{:>12.0} {:>12} {:>14.0} {:>12.3} {:>12.3} {:>12.3}",
            rate,
            report.completions.len(),
            report.throughput_tokens_per_s,
            report.mean_occupancy,
            percentile(&lats, 0.50),
            percentile(&lats, 0.99)
        );
    }
    println!(
        "\nAt low arrival rates the machine is latency-bound (idle slots); past\n\
         ~500 req/s the 216 slots saturate and aggregate throughput approaches\n\
         the Table 2 steady-state figure while tail latency grows with queueing.\n"
    );
}

fn measured_batched_run(cfg: &SimConfig) {
    println!("== measured: real tokens through the batched dataflow engine ==");
    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
    let engine = BatchedDataflowExecutor::new(
        DataflowExecutor::new(weights),
        cfg.pipeline_slots() as usize,
    );
    // A small chat-shaped trace with real prompt tokens (the functional
    // model is the 4x4-mappable test architecture, not the 120B machine).
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<SequenceRequest> = (0..24)
        .map(|i| {
            let prompt_len = rng.gen_range(4..16);
            let prompt = (0..prompt_len)
                .map(|_| rng.gen_range(0..card.config.vocab_size as u32))
                .collect();
            SequenceRequest::greedy(i * 500, prompt, rng.gen_range(8..24))
        })
        .collect();
    let scheduler = BatchScheduler::new(cfg.clone(), 2048);
    let (report, timing) = engine
        .run_with_scheduler(&requests, &scheduler)
        .expect("scheduler-produced plan executes");

    println!(
        "model: {}  |  sequences: {}  |  slots used at peak: {}",
        card.name,
        requests.len(),
        report.peak_resident
    );
    println!(
        "rounds: {}  |  prefill tokens: {}  |  decode tokens: {}",
        report.rounds, report.prefill_tokens, report.decoded_tokens
    );
    println!(
        "peak pooled KV: {} bytes fp16  |  collectives: {} ARs, {} reduces, {} AGs",
        report.peak_kv_bytes_fp16,
        report.comm.all_reduces,
        report.comm.reduces,
        report.comm.all_gathers
    );
    println!(
        "measured (functional, this host): {:>10.0} decode tokens/s  ({:.0} incl. prefill)",
        report.measured_decode_tokens_per_s(),
        report.measured_tokens_per_s()
    );
    println!(
        "analytical (120B HNLPU timing):   {:>10.0} decode tokens/s for the same schedule",
        timing.throughput_tokens_per_s
    );
    println!(
        "\nBoth numbers come from the SAME per-round slot assignments: the\n\
         scheduler's RoundPlans drive the functional engine token-for-token\n\
         (differentially tested against per-sequence execution), while the\n\
         timing model prices those rounds for the full-size machine."
    );
}

/// One cell of the online SLO sweep, serialized into the CI artifact.
#[derive(Serialize)]
struct SloCell {
    arrivals_per_s: f64,
    queue_capacity: usize,
    cancelled_every: Option<usize>,
    slo: SloReport,
}

/// The `serve-slo-report.json` artifact.
#[derive(Serialize)]
struct SloArtifact {
    model: String,
    requests_per_cell: usize,
    pipeline_slots: u32,
    workload: &'static str,
    cells: Vec<SloCell>,
}

/// A chat-shaped functional request trace riding the workload generator's
/// arrival process: arrival times come from the (seeded, diurnal Poisson)
/// trace; prompts/decodes are shrunk to the test model's scale.
fn functional_trace(spec: &WorkloadSpec, vocab: u32, seed: u64) -> Vec<SequenceRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    spec.generate_with_seed(seed)
        .iter()
        .map(|r| {
            let prompt_len = rng.gen_range(4..16);
            let prompt = (0..prompt_len).map(|_| rng.gen_range(0..vocab)).collect();
            SequenceRequest::greedy(r.arrival_s_micros, prompt, rng.gen_range(8..32))
        })
        .collect()
}

fn online_serving_run(cfg: &SimConfig, quick: bool) {
    println!("== online: event-driven serving with SLOs (virtual time) ==");
    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
    let scheduler = BatchScheduler::new(cfg.clone(), 2048);
    let requests_per_cell = if quick { 72 } else { 480 };
    // The machine decodes ~250K tokens/s across 216 slots; chat requests
    // average ~30 tokens, so saturation begins near 9K arrivals/s — the
    // sweep brackets it (under, near, far past).
    let rates: &[f64] = if quick {
        &[2_000.0]
    } else {
        &[2_000.0, 8_000.0, 32_000.0]
    };
    let caps: &[usize] = if quick { &[64] } else { &[32, 1024] };
    // The last sweep point also cancels every 7th request mid-flight to
    // exercise slot reclamation under load.
    let cancel_every = 7usize;

    println!(
        "model: {}  |  {} requests/cell  |  diurnal Poisson arrivals  |  {} slots\n",
        card.name,
        requests_per_cell,
        scheduler.slots()
    );
    println!(
        "{:>10} {:>9} {:>8} {:>8} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "arrivals/s",
        "queue cap",
        "done",
        "cancel",
        "reject",
        "TTFT p50 s",
        "TTFT p99 s",
        "TPOT p50 s",
        "TPOT p99 s"
    );

    let mut cells = Vec::new();
    for (ci, &rate) in rates.iter().enumerate() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::DiurnalChat,
            requests: requests_per_cell,
            arrivals_per_s: rate,
            seed: 7,
        };
        let requests = functional_trace(&spec, card.config.vocab_size as u32, 7 + ci as u64);
        for (ki, &cap) in caps.iter().enumerate() {
            let with_cancels = ci + 1 == rates.len() && ki + 1 == caps.len();
            let cancels: Vec<(u64, usize)> = if with_cancels {
                requests
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % cancel_every == cancel_every - 1)
                    .map(|(i, r)| (r.arrival_s_micros + 2_000, i))
                    .collect()
            } else {
                Vec::new()
            };
            let engine = BatchedDataflowExecutor::new(
                DataflowExecutor::new(weights.clone()),
                cfg.pipeline_slots() as usize,
            );
            let mut server =
                OnlineServer::new(engine, &scheduler, cap).expect("slots fit the engine pool");
            let outcome = server.run_trace(&requests, &cancels);
            let slo = outcome.report.slo.clone();
            println!(
                "{:>10.0} {:>9} {:>8} {:>8} {:>8} {:>11.4} {:>11.4} {:>11.5} {:>11.5}",
                rate,
                cap,
                slo.completed,
                slo.cancelled,
                slo.rejected,
                slo.ttft_p50_s,
                slo.ttft_p99_s,
                slo.tpot_p50_s,
                slo.tpot_p99_s
            );
            cells.push(SloCell {
                arrivals_per_s: rate,
                queue_capacity: cap,
                cancelled_every: with_cancels.then_some(cancel_every),
                slo,
            });
        }
    }

    let artifact = SloArtifact {
        model: card.name.to_string(),
        requests_per_cell,
        pipeline_slots: cfg.pipeline_slots(),
        workload: "diurnal-chat",
        cells,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("report serializes");
    std::fs::write("serve-slo-report.json", json).expect("report file writes");
    println!(
        "\nTight admission queues trade rejections for tail latency: under the\n\
         heavy arrival rate the small queue sheds load (typed QueueFull) and\n\
         keeps TTFT p99 bounded, while the deep queue accepts everything and\n\
         lets queueing delay dominate the tail. Every cell replays bit-for-bit\n\
         against offline planning (see tests/tests/online_differential.rs).\n\
         Wrote serve-slo-report.json."
    );
}

/// One chaos scenario: the fault mix drawn (seeded) from a [`ChaosSpec`].
struct Scenario {
    name: &'static str,
    seed: u64,
    chip_failures: usize,
    stragglers: usize,
    link_faults: usize,
    deadlines: usize,
}

/// One cell of the fault sweep, serialized into `fault-report.json`.
#[derive(Serialize)]
struct FaultCell {
    scenario: &'static str,
    seed: u64,
    plan: FaultPlan,
    slo: SloReport,
}

/// The `fault-report.json` artifact. `invariants_checked` names the
/// properties asserted (abort-on-violation) for every cell before the
/// file is written.
#[derive(Serialize)]
struct FaultArtifact {
    model: String,
    requests: usize,
    pipeline_slots: u32,
    arrivals_per_s: f64,
    invariants_checked: Vec<&'static str>,
    cells: Vec<FaultCell>,
}

/// Assert the chaos differential invariants of one run against the
/// fault-free baseline (see `tests/tests/chaos_differential.rs` for the
/// property-tested versions). Panics — aborting the CI smoke — on any
/// violation.
fn check_chaos_invariants(scenario: &str, base: &ServeReport, chaos: &ServeReport) {
    for (out, base_out) in chaos.outcomes.iter().zip(&base.outcomes) {
        assert_eq!(
            out.slot_frees, out.admissions,
            "[{scenario}] seq {:?}: KV slot must be freed exactly once per admission",
            out.id
        );
        assert!(
            out.tokens.len() <= base_out.tokens.len()
                && out.tokens[..] == base_out.tokens[..out.tokens.len()],
            "[{scenario}] seq {:?}: stream is not a prefix of the fault-free stream",
            out.id
        );
        match out.state {
            SeqState::Finished => assert_eq!(
                out.tokens, base_out.tokens,
                "[{scenario}] seq {:?}: survivor stream diverged from baseline",
                out.id
            ),
            SeqState::Cancelled => {}
            SeqState::DeadlineMissed => {
                assert!(matches!(out.error, Some(ServeError::Deadline { .. })))
            }
            SeqState::Shed => assert!(matches!(out.error, Some(ServeError::Shed { .. }))),
            SeqState::ChipLost => {
                assert!(matches!(out.error, Some(ServeError::ChipLost { .. })))
            }
            other => panic!(
                "[{scenario}] seq {:?}: non-terminal final state {other:?}",
                out.id
            ),
        }
    }
    let slo = &chaos.slo;
    assert_eq!(
        slo.completed + slo.cancelled + slo.shed + slo.deadline_missed + slo.chip_lost,
        slo.submitted,
        "[{scenario}] SLO ledger does not reconcile"
    );
    assert!(
        slo.recovery.resumed + slo.recovery.failed <= slo.recovery.evictions,
        "[{scenario}] recovery accounting does not reconcile"
    );
}

fn fault_sweep(cfg: &SimConfig, quick: bool) {
    println!("== chaos: seeded fault injection with graceful degradation ==");
    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
    let scheduler = BatchScheduler::new(cfg.clone(), 2048);
    let requests_n = if quick { 48 } else { 240 };
    let rate = 2_000.0;
    let spec = WorkloadSpec {
        kind: WorkloadKind::DiurnalChat,
        requests: requests_n,
        arrivals_per_s: rate,
        seed: 7,
    };
    let requests = functional_trace(&spec, card.config.vocab_size as u32, 21);
    let horizon_micros = requests
        .iter()
        .map(|r| r.arrival_s_micros)
        .max()
        .unwrap_or(0)
        + 50_000;

    let all = [
        Scenario {
            name: "single-chip-kill",
            seed: 11,
            chip_failures: 1,
            stragglers: 0,
            link_faults: 0,
            deadlines: 0,
        },
        Scenario {
            name: "double-chip-kill",
            seed: 12,
            chip_failures: 2,
            stragglers: 0,
            link_faults: 0,
            deadlines: 0,
        },
        Scenario {
            name: "stragglers",
            seed: 13,
            chip_failures: 0,
            stragglers: 2,
            link_faults: 0,
            deadlines: 0,
        },
        Scenario {
            name: "lossy-link",
            seed: 14,
            chip_failures: 0,
            stragglers: 0,
            link_faults: 1,
            deadlines: 0,
        },
        Scenario {
            name: "deadlines",
            seed: 15,
            chip_failures: 0,
            stragglers: 0,
            link_faults: 0,
            deadlines: 6,
        },
        Scenario {
            name: "combined",
            seed: 16,
            chip_failures: 2,
            stragglers: 2,
            link_faults: 1,
            deadlines: 6,
        },
    ];
    let scenarios: &[Scenario] = if quick { &all[..1] } else { &all };
    let combined_quick = [all[5].clone_for_quick()];
    let scenarios: Vec<&Scenario> = if quick {
        scenarios.iter().chain(combined_quick.iter()).collect()
    } else {
        scenarios.iter().collect()
    };

    let run = |plan: FaultPlan| {
        let engine = BatchedDataflowExecutor::new(
            DataflowExecutor::new(weights.clone()),
            cfg.pipeline_slots() as usize,
        );
        let mut server = OnlineServer::with_faults(engine, &scheduler, requests.len(), plan)
            .expect("plan is valid and slots fit");
        server.run_trace(&requests, &[]).report
    };
    let base = run(FaultPlan::none());

    println!(
        "model: {}  |  {} requests at {:.0}/s  |  horizon {:.3} s\n",
        card.name,
        requests.len(),
        rate,
        horizon_micros as f64 / 1e6
    );
    println!(
        "{:>16} {:>6} {:>7} {:>7} {:>5} {:>5} {:>6} {:>8} {:>12} {:>12}",
        "scenario",
        "kills",
        "evict",
        "resume",
        "lost",
        "shed",
        "ddl",
        "done",
        "degr rounds",
        "TTFT dp99 s"
    );

    let mut cells = Vec::new();
    for sc in scenarios {
        let plan = FaultPlan::seeded(
            sc.seed,
            &ChaosSpec {
                horizon_micros,
                submissions: requests.len(),
                chip_failures: sc.chip_failures,
                stragglers: sc.stragglers,
                link_faults: sc.link_faults,
                deadlines: sc.deadlines,
                min_deadline_micros: 10_000,
            },
        );
        let report = run(plan.clone());
        check_chaos_invariants(sc.name, &base, &report);
        let slo = report.slo;
        println!(
            "{:>16} {:>6} {:>7} {:>7} {:>5} {:>5} {:>6} {:>8} {:>12} {:>12.5}",
            sc.name,
            slo.chip_failures,
            slo.recovery.evictions,
            slo.recovery.resumed,
            slo.chip_lost,
            slo.shed,
            slo.deadline_missed,
            slo.completed,
            slo.degraded_rounds,
            slo.ttft_degraded_p99_s
        );
        cells.push(FaultCell {
            scenario: sc.name,
            seed: sc.seed,
            plan,
            slo,
        });
    }

    let artifact = FaultArtifact {
        model: card.name.to_string(),
        requests: requests.len(),
        pipeline_slots: cfg.pipeline_slots(),
        arrivals_per_s: rate,
        invariants_checked: vec![
            "survivor streams bit-identical to fault-free baseline",
            "every stream is a prefix of the fault-free stream",
            "KV slot freed exactly once per admission",
            "fault retirements carry typed errors",
            "SLO ledger reconciles (completed+cancelled+shed+deadline+lost == submitted)",
            "recovery accounting reconciles (resumed+failed <= evictions)",
        ],
        cells,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("report serializes");
    std::fs::write("fault-report.json", json).expect("report file writes");
    println!(
        "\nChip kills evict every resident sequence (KV is column-sharded across\n\
         all 16 chips), shrink capacity to the survivor share, and re-prefill\n\
         evicted sequences token-exact — every invariant above is asserted\n\
         before this line prints, and property-tested in\n\
         tests/tests/chaos_differential.rs. Wrote fault-report.json."
    );
}

/// One cell of the prefix-reuse sweep, serialized into the CI artifact.
#[derive(Serialize)]
struct PrefixCell {
    share_label: &'static str,
    shared_tokens: usize,
    prompt_tokens: usize,
    sequences: usize,
    dense_prefill_tokens: u64,
    paged_prefill_tokens: u64,
    prefill_work_saved: f64,
    prefix: PrefixStats,
    /// Logical KV footprint peak: shared pages counted once per
    /// referencing sequence (what dense private copies would occupy).
    peak_kv_bytes_fp16: u64,
    /// Physically private peak: pages owned exclusively by residents.
    /// Committed prompts live in the pool (charged once), so this drops
    /// on every commit even before anyone reuses the pages.
    peak_kv_owned_bytes_fp16: u64,
    /// KV bytes prefix sharing avoided duplicating: every reused
    /// position is read from the pool instead of a private copy.
    kv_deduped_bytes_fp16: u64,
}

/// The budgeted online eviction cell of `prefix-reuse-report.json`.
#[derive(Serialize)]
struct EvictionCell {
    page_budget: usize,
    completed: usize,
    prefix: PrefixStats,
}

/// The `prefix-reuse-report.json` artifact.
#[derive(Serialize)]
struct PrefixArtifact {
    model: String,
    pipeline_slots: u32,
    sequences: usize,
    prompt_tokens: usize,
    invariants_checked: Vec<&'static str>,
    cells: Vec<PrefixCell>,
    budgeted_online: EvictionCell,
}

fn prefix_reuse_sweep(cfg: &SimConfig, quick: bool) {
    println!("== prefix reuse: paged KV radix cache vs dense prefill ==");
    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
    let vocab = card.config.vocab_size as u32;
    let scheduler = BatchScheduler::new(cfg.clone(), 2048);
    let seqs = if quick { 6 } else { 12 };
    const PROMPT_LEN: usize = 64;
    let shares: &[(&str, usize)] = &[("share0", 0), ("share50", 32), ("share90", 58)];

    // Every sequence's first `shared` tokens come from one system prompt
    // (the workload generator's deterministic helper); suffixes are
    // per-user. Arrivals are staggered so each prompt commits to the
    // radix tree before the next one is matched.
    let trace = |shared: usize| -> Vec<SequenceRequest> {
        let sys = shared_prefix_tokens(7, 0, vocab);
        (0..seqs)
            .map(|s| {
                let mut prompt: Vec<u32> = sys[..shared].to_vec();
                prompt.extend(
                    (shared..PROMPT_LEN).map(|i| (s as u32 * 131 + i as u32 * 3 + 17) % vocab),
                );
                SequenceRequest::greedy(s as u64 * 2_000_000, prompt, 4)
            })
            .collect()
    };
    let dense_engine = || {
        BatchedDataflowExecutor::new(
            DataflowExecutor::new(weights.clone()),
            cfg.pipeline_slots() as usize,
        )
    };

    println!(
        "model: {}  |  {} sequences x {}-token prompts, 4 decode tokens each\n",
        card.name, seqs, PROMPT_LEN
    );
    // fp16 bytes one cached position occupies across all layers (K + V).
    let bytes_per_position = (card.config.num_layers
        * card.config.attention.num_kv_heads
        * card.config.attention.head_dim
        * 2
        * 2) as u64;
    println!(
        "{:>8} {:>7} {:>14} {:>14} {:>11} {:>9} {:>12}",
        "share", "shared", "dense prefill", "paged prefill", "work saved", "hit rate", "KV dedup B"
    );

    let mut cells = Vec::new();
    for &(label, shared) in shares {
        let requests = trace(shared);
        let (dense, _) = dense_engine()
            .run_with_scheduler(&requests, &scheduler)
            .expect("dense plan executes");
        let (paged, _) = dense_engine()
            .with_prefix_cache(PrefixCacheConfig::default())
            .run_with_scheduler(&requests, &scheduler)
            .expect("paged plan executes");
        assert_eq!(
            dense.outputs, paged.outputs,
            "[prefix-reuse {label}] paged token streams diverged from dense"
        );
        assert_eq!(
            dense.prefill_tokens.saturating_sub(paged.prefill_tokens),
            paged.prefix.reused_positions,
            "[prefix-reuse {label}] saved work must equal reused positions"
        );
        let saved = 1.0 - paged.prefill_tokens as f64 / dense.prefill_tokens.max(1) as f64;
        let hit_rate = paged.prefix.hits as f64 / paged.prefix.lookups.max(1) as f64;
        let deduped = paged
            .prefix
            .reused_positions
            .saturating_mul(bytes_per_position);
        println!(
            "{:>8} {:>7} {:>14} {:>14} {:>10.1}% {:>9.3} {:>12}",
            label,
            shared,
            dense.prefill_tokens,
            paged.prefill_tokens,
            saved * 100.0,
            hit_rate,
            deduped,
        );
        if shared * 10 >= PROMPT_LEN * 9 {
            assert!(
                dense.prefill_tokens >= 2 * paged.prefill_tokens,
                "[prefix-reuse {label}] 90% sharing must cut prefill matvec work >= 2x \
                 (dense {} vs paged {})",
                dense.prefill_tokens,
                paged.prefill_tokens
            );
        }
        cells.push(PrefixCell {
            share_label: label,
            shared_tokens: shared,
            prompt_tokens: PROMPT_LEN,
            sequences: seqs,
            dense_prefill_tokens: dense.prefill_tokens,
            paged_prefill_tokens: paged.prefill_tokens,
            prefill_work_saved: saved,
            prefix: paged.prefix,
            peak_kv_bytes_fp16: paged.peak_kv_bytes_fp16,
            peak_kv_owned_bytes_fp16: paged.peak_kv_owned_bytes_fp16,
            kv_deduped_bytes_fp16: deduped,
        });
    }

    // Budgeted online cell: the server enforces the configured page
    // budget (offline planning always runs unbounded), so a tight budget
    // exercises deterministic cold-prefix LRU eviction under live
    // admission — still token-exact against the dense online run.
    let requests = trace(58);
    let budget = 96;
    let mut dense_srv = OnlineServer::new(dense_engine(), &scheduler, requests.len())
        .expect("slots fit the engine pool");
    let dense_out = dense_srv.run_trace(&requests, &[]);
    let budgeted = dense_engine().with_prefix_cache(PrefixCacheConfig {
        page_budget: budget,
        ..PrefixCacheConfig::default()
    });
    let mut server =
        OnlineServer::new(budgeted, &scheduler, requests.len()).expect("slots fit the engine pool");
    let outcome = server.run_trace(&requests, &[]);
    for (out, base) in outcome
        .report
        .outcomes
        .iter()
        .zip(&dense_out.report.outcomes)
    {
        assert_eq!(
            out.state,
            SeqState::Finished,
            "[prefix-reuse online] unfinished"
        );
        assert_eq!(
            out.tokens, base.tokens,
            "[prefix-reuse online] budgeted paged stream diverged from dense"
        );
    }
    let stats = outcome.report.slo.prefix;
    assert!(
        stats.evicted_pages > 0,
        "[prefix-reuse online] tight budget must evict cold prefixes"
    );
    println!(
        "\nonline, page budget {budget}: {} completed, {} hits / {} lookups, \
         {} pages evicted (LRU, deterministic)",
        outcome.report.slo.completed, stats.hits, stats.lookups, stats.evicted_pages
    );

    let artifact = PrefixArtifact {
        model: card.name.to_string(),
        pipeline_slots: cfg.pipeline_slots(),
        sequences: seqs,
        prompt_tokens: PROMPT_LEN,
        invariants_checked: vec![
            "paged token streams bit-identical to dense at every sharing level",
            "prefill tokens saved == radix-cache reused positions",
            ">= 2x prefill matvec work reduction at 90% sharing",
            "budgeted online run token-exact with evictions > 0",
        ],
        cells,
        budgeted_online: EvictionCell {
            page_budget: budget,
            completed: outcome.report.slo.completed,
            prefix: stats,
        },
    };
    let json = serde_json::to_string_pretty(&artifact).expect("report serializes");
    std::fs::write("prefix-reuse-report.json", json).expect("report file writes");
    println!(
        "\nShared system prompts are matched block-granular (16 positions) in\n\
         the radix tree, charged only for their unmatched suffix by the\n\
         scheduler, and read through refcounted shared pages at decode —\n\
         every invariant above is asserted before this line prints, and\n\
         property-tested in tests/tests/paged_prefix_differential.rs.\n\
         Wrote prefix-reuse-report.json."
    );
}

impl Scenario {
    /// The combined scenario shrunk for the quick CI smoke: same mix, one
    /// chip kill fewer so the 48-request trace still completes work.
    fn clone_for_quick(&self) -> Scenario {
        Scenario {
            name: "combined-quick",
            seed: self.seed,
            chip_failures: self.chip_failures.min(1),
            stragglers: self.stragglers,
            link_faults: self.link_faults,
            deadlines: self.deadlines.min(3),
        }
    }
}

fn main() {
    let cfg = SimConfig::paper_default();
    let quick = std::env::var_os("HNLPU_SERVE_QUICK").is_some();
    println!("HNLPU continuous-batching serving simulation\n");
    analytical_sweep(&cfg);
    measured_batched_run(&cfg);
    println!();
    online_serving_run(&cfg, quick);
    println!();
    fault_sweep(&cfg, quick);
    println!();
    prefix_reuse_sweep(&cfg, quick);
}
