//! Serving simulation, two ways.
//!
//! Part 1 drives the HNLPU's hardware continuous-batching scheduler with a
//! bursty chat-style workload (the paper's motivating cloud-serving
//! scenario) and reports the *analytical* throughput, latency, and
//! occupancy of the 120 B machine.
//!
//! Part 2 runs *real tokens* through the batched dataflow engine: the same
//! scheduler plans per-round slot assignments, and the functional 16-chip
//! executor replays that exact schedule on a small test model — measured
//! tokens/s, KV-pool footprint, and collective counts come from actual
//! execution, not a formula.
//!
//! Run with: `cargo run --release -p hnlpu --example serving_simulator`

use hnlpu::llm::{BatchedDataflowExecutor, DataflowExecutor, SequenceRequest};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use hnlpu::sim::{BatchScheduler, SimConfig, WorkloadKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn analytical_sweep(cfg: &SimConfig) {
    println!("== analytical: 120B machine, chat workload sweep ==");
    println!(
        "pipeline slots: {}  |  nominal 2K-context decode rate: ~250K tokens/s\n",
        cfg.pipeline_slots()
    );
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "arrivals/s", "requests", "tokens/s", "occupancy", "p50 lat s", "p99 lat s"
    );
    for rate in [50.0f64, 200.0, 500.0, 1000.0, 2000.0] {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Chat,
            requests: 3000,
            arrivals_per_s: rate,
            seed: 7,
        };
        let reqs = spec.generate();
        let scheduler = BatchScheduler::new(cfg.clone(), spec.nominal_context());
        let report = scheduler.run(&reqs);
        let mut lats: Vec<f64> = report.completions.iter().map(|c| c.latency_s).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "{:>12.0} {:>12} {:>14.0} {:>12.3} {:>12.3} {:>12.3}",
            rate,
            report.completions.len(),
            report.throughput_tokens_per_s,
            report.mean_occupancy,
            percentile(&lats, 0.50),
            percentile(&lats, 0.99)
        );
    }
    println!(
        "\nAt low arrival rates the machine is latency-bound (idle slots); past\n\
         ~500 req/s the 216 slots saturate and aggregate throughput approaches\n\
         the Table 2 steady-state figure while tail latency grows with queueing.\n"
    );
}

fn measured_batched_run(cfg: &SimConfig) {
    println!("== measured: real tokens through the batched dataflow engine ==");
    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
    let engine = BatchedDataflowExecutor::new(
        DataflowExecutor::new(weights),
        cfg.pipeline_slots() as usize,
    );
    // A small chat-shaped trace with real prompt tokens (the functional
    // model is the 4x4-mappable test architecture, not the 120B machine).
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<SequenceRequest> = (0..24)
        .map(|i| {
            let prompt_len = rng.gen_range(4..16);
            let prompt = (0..prompt_len)
                .map(|_| rng.gen_range(0..card.config.vocab_size as u32))
                .collect();
            SequenceRequest::greedy(i * 500, prompt, rng.gen_range(8..24))
        })
        .collect();
    let scheduler = BatchScheduler::new(cfg.clone(), 2048);
    let (report, timing) = engine
        .run_with_scheduler(&requests, &scheduler)
        .expect("scheduler-produced plan executes");

    println!(
        "model: {}  |  sequences: {}  |  slots used at peak: {}",
        card.name,
        requests.len(),
        report.peak_resident
    );
    println!(
        "rounds: {}  |  prefill tokens: {}  |  decode tokens: {}",
        report.rounds, report.prefill_tokens, report.decoded_tokens
    );
    println!(
        "peak pooled KV: {} bytes fp16  |  collectives: {} ARs, {} reduces, {} AGs",
        report.peak_kv_bytes_fp16,
        report.comm.all_reduces,
        report.comm.reduces,
        report.comm.all_gathers
    );
    println!(
        "measured (functional, this host): {:>10.0} decode tokens/s  ({:.0} incl. prefill)",
        report.measured_decode_tokens_per_s(),
        report.measured_tokens_per_s()
    );
    println!(
        "analytical (120B HNLPU timing):   {:>10.0} decode tokens/s for the same schedule",
        timing.throughput_tokens_per_s
    );
    println!(
        "\nBoth numbers come from the SAME per-round slot assignments: the\n\
         scheduler's RoundPlans drive the functional engine token-for-token\n\
         (differentially tested against per-sequence execution), while the\n\
         timing model prices those rounds for the full-size machine."
    );
}

fn main() {
    let cfg = SimConfig::paper_default();
    println!("HNLPU continuous-batching serving simulation\n");
    analytical_sweep(&cfg);
    measured_batched_run(&cfg);
}
