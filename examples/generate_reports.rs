//! Regenerate the paper-vs-measured tables that EXPERIMENTS.md embeds.
//!
//! Run with: `cargo run --release -p hnlpu --example generate_reports`

use hnlpu::experiments;

fn main() {
    for report in experiments::all() {
        println!("{}", report.render_markdown());
        println!("*max deviation: {:.1}%*\n", report.max_deviation_pct());
    }
}
