//! The "prompting as ISA" loop (Figure 1 / §2.1): the HNLPU receives token
//! ids and emits token ids with no software stack in between. This demo
//! closes the text loop on the 16-chip dataflow executor with a byte-level
//! tokenizer, then uses the same machine for three different "programs" —
//! generation, sequence scoring, and text embedding — without changing a
//! single weight.
//!
//! (Weights are seeded synthetic, so the prose is noise; the point is the
//! token-in/token-out execution model and task generality.)
//!
//! Run with: `cargo run --release -p hnlpu --example prompt_interface`

use hnlpu::llm::{AsciiTokenizer, DataflowExecutor, Sampler};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};

fn main() {
    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(2026));
    let machine = DataflowExecutor::new(weights);
    let tk = AsciiTokenizer::new();

    // --- Program 1: generation (the Figure 1 "Ask Me Anything" loop) ---
    let prompt = "Life, Science, and Art. Ask me anything: ";
    let tokens = tk.encode(prompt);
    let mut sampler = Sampler::top_p(0.9, 0.8, 42);
    let (out, comm) = machine.generate_with_report(&tokens, 48, &mut sampler);
    println!("prompt> {prompt}");
    println!("hnlpu > {}", tk.decode(&out));
    println!(
        "        ({} tokens in, {} out; {} collectives on the 4x4 fabric)\n",
        tokens.len(),
        out.len(),
        comm.all_reduces + comm.all_chip_all_reduces + comm.reduces + comm.all_gathers
    );

    // --- Program 2: sequence scoring (no new hardware, new "program") ---
    let a = tk.encode("the cat sat on the mat");
    let b = tk.encode("zqx jvw kpf blrg nnnn!!");
    let score_a = machine.score_sequence(&a);
    let score_b = machine.score_sequence(&b);
    println!("sequence scoring (log-prob):");
    println!("  \"the cat sat on the mat\"  -> {score_a:.2}");
    println!("  \"zqx jvw kpf blrg nnnn!!\" -> {score_b:.2}");
    println!("  (the machine ranks candidate continuations with zero reconfiguration)\n");

    // --- Program 3: text embedding ---
    let e1 = machine.text_embedding(&tk.encode("alpha beta gamma"));
    let e2 = machine.text_embedding(&tk.encode("alpha beta delta"));
    let e3 = machine.text_embedding(&tk.encode("01234 56789 ^^^^"));
    let cos = |x: &[f32], y: &[f32]| {
        let dot: f32 = x.iter().zip(y).map(|(a, b)| a * b).sum();
        let nx: f32 = x.iter().map(|a| a * a).sum::<f32>().sqrt();
        let ny: f32 = y.iter().map(|a| a * a).sum::<f32>().sqrt();
        dot / (nx * ny)
    };
    println!("text embedding (cosine similarity):");
    println!(
        "  sim(\"alpha beta gamma\", \"alpha beta delta\") = {:.4}",
        cos(&e1, &e2)
    );
    println!(
        "  sim(\"alpha beta gamma\", \"01234 56789 ^^^^\") = {:.4}",
        cos(&e1, &e3)
    );
    assert!(
        cos(&e1, &e2) > cos(&e1, &e3),
        "related text should embed closer"
    );
    println!(
        "\nOne hardwired machine, three tasks: the general-purpose cognitive substrate thesis."
    );
}
