//! Dataflow verification: run the same prompts through the single-device
//! reference transformer and the 16-chip HNLPU dataflow executor, confirm
//! the tokens match, and show the collective-communication schedule the
//! executor actually performed (which the cycle-level simulator prices).
//!
//! Run with: `cargo run --release -p hnlpu --example dataflow_verifier`

use hnlpu::llm::{DataflowExecutor, Sampler, Transformer};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};

fn main() {
    let card = zoo::dataflow_test_model();
    println!(
        "model: {} (hidden {}, {} layers, {} experts top-{}, {} q / {} kv heads)",
        card.name,
        card.config.hidden_size,
        card.config.num_layers,
        card.config.moe.num_experts,
        card.config.moe.experts_per_token,
        card.config.attention.num_query_heads,
        card.config.attention.num_kv_heads,
    );
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(2026));
    let reference = Transformer::new(weights.clone());
    let hnlpu = DataflowExecutor::new(weights);

    println!("\n--- greedy decoding, reference vs 16-chip dataflow ---");
    let mut all_match = true;
    for prompt in [vec![1u32, 5, 9], vec![100, 2, 64, 33], vec![7]] {
        let a = reference.generate_greedy(&prompt, 16);
        let (b, comm) = hnlpu.generate_with_report(&prompt, 16, &mut Sampler::Greedy);
        let ok = a == b;
        all_match &= ok;
        println!("prompt {prompt:?}");
        println!("  reference: {a:?}");
        println!(
            "  hnlpu:     {b:?}   [{}]",
            if ok { "MATCH" } else { "MISMATCH" }
        );
        println!(
            "  collectives: {} group all-reduces, {} all-chip all-reduces, {} reduces, {} all-gathers, {:.1} KB",
            comm.all_reduces,
            comm.all_chip_all_reduces,
            comm.reduces,
            comm.all_gathers,
            comm.bytes as f64 / 1024.0
        );
    }

    println!("\n--- seeded multinomial sampling (temperature 0.7) ---");
    let mut s1 = Sampler::multinomial(0.7, 42);
    let mut s2 = Sampler::multinomial(0.7, 42);
    let a = reference.generate(&[3, 1, 4], 12, &mut s1);
    let (b, _) = hnlpu.generate_with_report(&[3, 1, 4], 12, &mut s2);
    let ok = a == b;
    all_match &= ok;
    println!("reference: {a:?}");
    println!(
        "hnlpu:     {b:?}   [{}]",
        if ok { "MATCH" } else { "MISMATCH" }
    );

    println!(
        "\nresult: {}",
        if all_match {
            "16-chip dataflow is functionally equivalent to the reference ✔"
        } else {
            "DIVERGENCE DETECTED ✘"
        }
    );
    assert!(all_match, "dataflow diverged from the reference");
}
