//! Gate-level RTL flow (§6.1): build a Hardwired-Neuron out of logic gates,
//! verify it bit-exactly against the behavioral model, report gate counts
//! and logic depth, and emit structural Verilog.
//!
//! Run with: `cargo run --release -p hnlpu --example rtl_export`

use hnlpu::arith::neuron::{reference_dot, HardwiredNeuron};
use hnlpu::arith::GateHn;
use hnlpu::model::{Fp4, WeightGenerator, WeightKind, WeightMatrix};

fn main() {
    // A 48-input neuron (one column of a small matrix).
    let gen = WeightGenerator::new(7);
    let m = WeightMatrix::new(WeightKind::Key, 48, 1);
    let weights: Vec<Fp4> = gen.matrix(0, &m);
    let bits = 8u32;

    let gate = GateHn::build(&weights, bits);
    let behavioral = HardwiredNeuron::build_with_bits(&weights, 1.25, bits);

    let (and, or, xor, not, dff) = gate.circuit().gate_counts();
    println!("gate-level Hardwired-Neuron, fan-in {}", gate.fan_in());
    println!("  gates: {and} AND, {or} OR, {xor} XOR, {not} NOT, {dff} DFF");
    println!("  combinational depth: {} gates", gate.circuit().depth());

    println!("\nbit-exactness against the behavioral model and naive MAC:");
    let mut all_ok = true;
    for seed in 0..5 {
        let acts: Vec<i32> = (0i32..48)
            .map(|i| (((seed * 48 + i) * 2_654_435) % 127) - 63)
            .collect();
        let g = gate.eval(&acts);
        let b = behavioral.eval(&acts).value_half_units;
        let r = reference_dot(&weights, &acts);
        let ok = g == b && b == r;
        all_ok &= ok;
        println!(
            "  case {seed}: gate={g:>7} behavioral={b:>7} reference={r:>7}  [{}]",
            if ok { "MATCH" } else { "MISMATCH" }
        );
    }
    assert!(all_ok, "gate-level neuron diverged");

    let verilog = gate.circuit().to_verilog("hardwired_neuron");
    let lines = verilog.lines().count();
    println!("\nstructural Verilog: {lines} lines; first 12:");
    for l in verilog.lines().take(12) {
        println!("  {l}");
    }
    println!("  ...");

    // A self-checking testbench with two stimulus vectors.
    let cases = vec![
        (0..48).map(|i| (i % 17) - 8).collect::<Vec<i32>>(),
        vec![0; 48],
    ];
    let tb = gate.to_verilog_testbench("hardwired_neuron", &cases);
    println!("\nself-checking testbench tail:");
    let tail: Vec<&str> = tb.lines().rev().take(6).collect();
    for l in tail.iter().rev() {
        println!("  {l}");
    }
}
