//! The Metal-Embedding compiler flow (§3.2): take a weight matrix, allocate
//! prefab accumulator slices, place one embedding wire per weight on the
//! M8–M11 layers, verify routing density, and emit the ECO script excerpt
//! that would be handed back to the P&R tool.
//!
//! Run with: `cargo run --release -p hnlpu --example metal_embedding_compiler`

use hnlpu::embed::array::MeNeuronParams;
use hnlpu::embed::MeCompiler;
use hnlpu::model::{WeightGenerator, WeightKind, WeightMatrix};

fn main() {
    let compiler = MeCompiler::new(MeNeuronParams::array_default());
    let gen = WeightGenerator::new(7);

    // A gpt-oss attention key projection slice: 2880 x 128.
    let matrix = WeightMatrix::new(WeightKind::Key, 2880, 128);
    println!(
        "compiling {}x{} FP4 matrix into the Sea-of-Neurons prefab...",
        matrix.rows, matrix.cols
    );
    let weights = gen.matrix(0, &matrix);
    let compiled = compiler
        .compile_weights(&matrix, &weights)
        .expect("realistic weights fit the prefab provisioning");

    println!("\n--- compilation report ---");
    println!("embedding wires placed:   {}", compiled.wires);
    println!("grounded (slack) ports:   {}", compiled.grounded_ports);
    println!(
        "array footprint:          {:.4} mm²",
        compiled.footprint_mm2
    );
    println!(
        "avg embedding net length: {:.2} µm",
        compiled.avg_net_length_um
    );
    println!("\nper-layer routing utilization (congestion limit 70%):");
    for (layer, util) in &compiled.route.utilization {
        println!("  {layer:>5}: {:5.1}%", util * 100.0);
    }
    println!(
        "congestion-free: {} (peak {:.1}%)",
        compiled.route.congestion_free,
        compiled.route.peak_utilization * 100.0
    );

    let alloc = &compiled.allocations[0];
    println!("\nneuron 0 slice allocation (16 FP4-value regions):");
    println!("  slices per region: {:?}", alloc.slices_per_region);
    println!(
        "  spare slices: {} of {} ({}-input slices)",
        alloc.spare_slices(),
        alloc.pool.slices,
        alloc.pool.slice_inputs
    );

    println!(
        "\n--- ECO script excerpt (first 8 of {} nets) ---",
        compiled.wires
    );
    print!("{}", compiled.tcl_script(&weights, 8));

    // And the failure path: a weight matrix no prefab can absorb.
    println!("\n--- pathological input (all weights identical) ---");
    let bad = vec![hnlpu::model::Fp4::from_f32(6.0); matrix.rows];
    let single = WeightMatrix::new(WeightKind::Key, matrix.rows, 1);
    match compiler.compile_weights(&single, &bad) {
        Ok(_) => println!("unexpectedly compiled"),
        Err(e) => println!("rejected as expected: {e}"),
    }
}
