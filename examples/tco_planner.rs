//! TCO planning: regenerate Table 3 and find the deployment volume where
//! HNLPU breaks even against an H100 cluster.
//!
//! Run with: `cargo run --release -p hnlpu --example tco_planner`

use hnlpu::litho::nre::{NreScenario, NreSummary};
use hnlpu::tco::sensitivity::{sweep, Knob};
use hnlpu::tco::{Assumptions, DeploymentScale, Table3, UpdatePolicy};

fn print_table3(scale: DeploymentScale, label: &str) {
    let t = Table3::paper(scale);
    println!("--- {label} ---");
    println!("{:<34} {:>26} {:>18}", "", "HNLPU", "H100");
    println!(
        "{:<34} {:>26} {:>18}",
        "datacenter power (MW)",
        format!("{:.3}", t.hnlpu.facility_power_w / 1e6),
        format!("{:.2}", t.h100.facility_power_w / 1e6),
    );
    println!(
        "{:<34} {:>26} {:>18}",
        "node price",
        t.hnlpu.node_price.to_string(),
        t.h100.node_price.to_string()
    );
    println!(
        "{:<34} {:>26} {:>18}",
        "datacenter infrastructure",
        t.hnlpu.infrastructure.to_string(),
        t.h100.infrastructure.to_string()
    );
    println!(
        "{:<34} {:>26} {:>18}",
        "total initial CapEx",
        t.hnlpu.initial_capex().to_string(),
        t.h100.initial_capex().to_string()
    );
    println!(
        "{:<34} {:>26} {:>18}",
        "update re-spin cost (2x)",
        t.hnlpu.respin_cost.to_string(),
        t.h100.respin_cost.to_string()
    );
    println!(
        "{:<34} {:>26} {:>18}",
        "electricity (3 yr)",
        t.hnlpu.electricity.to_string(),
        t.h100.electricity.to_string()
    );
    println!(
        "{:<34} {:>26} {:>18}",
        "maintenance & support (3 yr)",
        t.hnlpu.maintenance.to_string(),
        t.h100.maintenance.to_string()
    );
    for (policy, name) in [
        (UpdatePolicy::Static, "TCO (static model)"),
        (UpdatePolicy::AnnualUpdates, "TCO (annual updates)"),
    ] {
        println!(
            "{:<34} {:>26} {:>18}",
            name,
            t.hnlpu.tco(policy).to_string(),
            t.h100.tco(policy).to_string()
        );
    }
    println!(
        "{:<34} {:>26} {:>18}",
        "emissions static/dynamic (tCO2e)",
        format!("{:.0} / {:.0}", t.hnlpu.tco2e_static, t.hnlpu.tco2e_dynamic),
        format!("{:.0}", t.h100.tco2e_static)
    );
    let (lo, hi) = t.tco_advantage(UpdatePolicy::AnnualUpdates);
    println!("TCO advantage (annual updates): {lo:.1}x – {hi:.1}x");
    println!(
        "carbon advantage: {:.0}x\n",
        t.carbon_advantage(UpdatePolicy::AnnualUpdates)
    );
}

fn main() {
    println!("=== Table 3: 3-year TCO, HNLPU vs equivalently-provisioned H100 ===\n");
    print_table3(
        DeploymentScale::Low,
        "Low volume: 1 HNLPU node = 2,000 H100s",
    );
    print_table3(
        DeploymentScale::High,
        "High volume: 50 HNLPU nodes = 100,000 H100s (OpenAI-scale)",
    );

    println!("=== NRE amortization vs build volume ===");
    println!(
        "{:>8} {:>26} {:>22}",
        "systems", "total initial build", "per-system midpoint"
    );
    let a = Assumptions::paper();
    let _ = a;
    for systems in [1u32, 2, 5, 10, 50, 200] {
        let nre = NreSummary::price(NreScenario::gpt_oss(systems));
        let total = nre.initial_build();
        println!(
            "{:>8} {:>26} {:>20.1}M",
            systems,
            total.to_string(),
            total.mid() / systems as f64 / 1e6
        );
    }
    println!(
        "\nThe one-time masks and design dominate at low volume; by ~50 systems\n\
         the per-system cost approaches the recurring chip cost — the paper's\n\
         amortization argument in §8 (Inference Volume).\n"
    );

    println!("=== Sensitivity: high-volume TCO advantage vs assumption swings ===");
    println!("{:>20} {:>8} {:>20}", "knob", "x", "advantage (lo-hi)");
    for knob in [Knob::ElectricityPrice, Knob::Pue, Knob::MaintenanceRate] {
        for p in sweep(knob, &[0.5, 1.0, 1.5]) {
            println!(
                "{:>20} {:>8.2} {:>13.1}x-{:.1}x",
                p.parameter, p.multiplier, p.advantage.0, p.advantage.1
            );
        }
    }
    println!("(No single Appendix-B knob overturns the orders-of-magnitude conclusion.)");
}
