//! Quickstart: design the paper's HNLPU for gpt-oss 120 B and print its
//! headline characteristics next to the baselines.
//!
//! Run with: `cargo run --release -p hnlpu --example quickstart`

use hnlpu::model::zoo;
use hnlpu::sim::Breakdown;
use hnlpu::tco::{DeploymentScale, UpdatePolicy};
use hnlpu::HnlpuSystem;

fn main() {
    let system = HnlpuSystem::design(zoo::gpt_oss_120b());

    println!("=== HNLPU for {} ===", system.model().name);
    println!("chips:            {}", system.num_chips());
    println!(
        "chip area:        {:.2} mm²  (paper: 827.08)",
        system.chip_report().total_area_mm2()
    );
    println!(
        "chip power:       {:.2} W    (paper: 308.39)",
        system.chip_report().total_power_w()
    );
    println!(
        "total silicon:    {:.0} mm²  (paper: 13,232)",
        system.silicon_mm2()
    );
    println!();

    println!("--- Table 2: system comparison at 2K context ---");
    println!(
        "{:<8} {:>16} {:>14} {:>12} {:>16}",
        "system", "tokens/s", "silicon mm²", "power kW", "tokens/kJ"
    );
    for row in system.table2(2048) {
        println!(
            "{:<8} {:>16.0} {:>14.0} {:>12.2} {:>16.1}",
            row.name,
            row.throughput_tokens_per_s,
            row.silicon_mm2,
            row.power_w / 1000.0,
            row.tokens_per_kj()
        );
    }
    println!();

    println!("--- Figure 14: execution-time breakdown vs context ---");
    print!("{}", Breakdown::render_ascii(&system.figure14()));
    println!();

    println!("--- Economics ---");
    let nre = system.nre(1);
    println!("initial build (1 system):  {}", nre.initial_build());
    println!("weight-update re-spin:     {}", nre.respin());
    let t3 = system.table3(DeploymentScale::High);
    let (lo, hi) = t3.tco_advantage(UpdatePolicy::AnnualUpdates);
    println!("3-year TCO advantage vs H100 cluster (annual updates): {lo:.1}x – {hi:.1}x");
    println!(
        "carbon advantage: {:.0}x",
        system
            .table3(DeploymentScale::Low)
            .carbon_advantage(UpdatePolicy::AnnualUpdates)
    );
}
