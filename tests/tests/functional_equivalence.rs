//! Cross-crate functional equivalence: the arithmetic substrate, the tile
//! designs, and the 16-chip dataflow must all compute the same functions.

use hnlpu::arith::neuron::{reference_dot, HardwiredNeuron};
use hnlpu::embed::{TileDesign, TileMethod};
use hnlpu::llm::{DataflowExecutor, Sampler, Transformer};
use hnlpu::model::{zoo, Fp4, ModelWeights, WeightGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ME tile and a plain reference GEMV agree bit-for-bit for any
    /// FP4 weights and 12-bit activations.
    #[test]
    fn me_tile_is_bit_exact(seed in 0u64..10_000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (rows, cols) = (48usize, 6usize);
        let weights: Vec<Fp4> = (0..rows * cols)
            .map(|_| Fp4::from_code(rng.gen_range(0..16)))
            .collect();
        let x: Vec<i32> = (0..rows).map(|_| rng.gen_range(-2000..2000)).collect();
        let mut tile = TileDesign::paper(TileMethod::MetalEmbedding);
        tile.rows = rows;
        tile.cols = cols;
        let got = tile.execute(&weights, &x);
        for c in 0..cols {
            let col: Vec<Fp4> = (0..rows).map(|r| weights[r * cols + c]).collect();
            prop_assert_eq!(got[c], reference_dot(&col, &x));
        }
    }

    /// The single Hardwired-Neuron is exact at gpt-oss fan-in.
    #[test]
    fn hn_exact_at_gpt_oss_fan_in(seed in 0u64..500) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<Fp4> = (0..2880).map(|_| Fp4::from_code(rng.gen_range(0..16))).collect();
        let x: Vec<i32> = (0..2880).map(|_| rng.gen_range(-2048..2047)).collect();
        let hn = HardwiredNeuron::build(&weights, 1.25);
        prop_assert_eq!(hn.eval(&x).value_half_units, reference_dot(&weights, &x));
    }

    /// Reference transformer and 16-chip dataflow produce identical greedy
    /// token streams for arbitrary prompts and weight seeds.
    #[test]
    fn dataflow_matches_reference_across_seeds(
        seed in 0u64..50,
        prompt in prop::collection::vec(0u32..128, 1..5),
    ) {
        let card = zoo::dataflow_test_model();
        let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(seed));
        let reference = Transformer::new(w.clone());
        let hnlpu = DataflowExecutor::new(w);
        prop_assert_eq!(
            reference.generate_greedy(&prompt, 6),
            hnlpu.generate_greedy(&prompt, 6)
        );
    }
}

#[test]
fn all_three_tile_methods_agree_on_gpt_oss_shapes() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let (rows, cols) = (128usize, 16usize);
    let weights: Vec<Fp4> = (0..rows * cols)
        .map(|_| Fp4::from_code(rng.gen_range(0..16)))
        .collect();
    let x: Vec<i32> = (0..rows).map(|_| rng.gen_range(-128..128)).collect();
    let mut results = Vec::new();
    for m in [
        TileMethod::MacArray,
        TileMethod::CellEmbedding,
        TileMethod::MetalEmbedding,
    ] {
        let mut tile = TileDesign::paper(m);
        tile.rows = rows;
        tile.cols = cols;
        results.push(tile.execute(&weights, &x));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn sampled_generation_matches_between_machines() {
    let card = zoo::dataflow_test_model();
    let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
    let reference = Transformer::new(w.clone());
    let hnlpu = DataflowExecutor::new(w);
    for temp in [0.5f32, 1.0, 2.0] {
        let mut s1 = Sampler::multinomial(temp, 31337);
        let mut s2 = Sampler::multinomial(temp, 31337);
        let a = reference.generate(&[2, 4, 8], 8, &mut s1);
        let (b, _) = hnlpu.generate_with_report(&[2, 4, 8], 8, &mut s2);
        assert_eq!(a, b, "temperature {temp}");
    }
}
