//! Online/offline differential harness — the headline artifact of the
//! serving frontend.
//!
//! For arbitrary sorted arrival traces the online [`OnlineServer`] event
//! loop must reproduce the offline path (`BatchScheduler::plan()` +
//! `BatchedDataflowExecutor::execute_plan()`) *bit for bit*: identical
//! token streams per sequence, identical per-round slot assignments
//! ([`RoundPlan`] log), and identical virtual completion times. Tokens
//! agree by construction (sequences share no arithmetic); the plan and
//! timing comparisons are the strong property — they prove the online
//! incremental scheduler makes exactly the decisions the offline planner
//! makes with the whole trace in hand.
//!
//! Also here: admission-queue properties (backpressure never drops an
//! admitted sequence; queue-full rejection is typed, not a panic) and
//! cancellation properties (KV slots freed exactly once; cancelling one
//! sequence never perturbs another's stream).
//!
//! Run under both feature sets:
//! `cargo test -p hnlpu-integration --test online_differential` and the
//! same with `--no-default-features` — bit-exact either way.

use hnlpu::llm::serve::{OnlineServer, SeqState, ServeError};
use hnlpu::llm::{BatchedDataflowExecutor, DataflowExecutor, SequenceRequest};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use hnlpu::sim::{BatchScheduler, SimConfig, WorkloadKind, WorkloadSpec};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One weight materialization serves every case; each server gets its own
/// executor around a clone (KV state is per-slot, weights are shared-read).
fn weights() -> &'static ModelWeights {
    static WEIGHTS: OnceLock<ModelWeights> = OnceLock::new();
    WEIGHTS.get_or_init(|| {
        let card = zoo::dataflow_test_model();
        ModelWeights::materialize(&card.config, &WeightGenerator::new(2026))
    })
}

fn engine() -> BatchedDataflowExecutor {
    BatchedDataflowExecutor::new(DataflowExecutor::new(weights().clone()), 216)
}

fn scheduler() -> BatchScheduler {
    BatchScheduler::new(SimConfig::paper_default(), 2048)
}

/// Sorted-by-arrival greedy requests from proptest specs.
fn requests_from(specs: &[(Vec<u32>, u32, u64)]) -> Vec<SequenceRequest> {
    let mut sorted = specs.to_vec();
    sorted.sort_by_key(|&(_, _, arrival)| arrival);
    sorted
        .into_iter()
        .map(|(prompt, decode, arrival)| SequenceRequest::greedy(arrival, prompt, decode))
        .collect()
}

/// Run the offline path: plan the whole trace, replay it.
fn offline(
    requests: &[SequenceRequest],
) -> (
    Vec<Vec<u32>>,
    Vec<hnlpu::sim::RoundPlan>,
    Vec<f64>, // finish times, sorted
) {
    let sched = scheduler();
    let sim_reqs: Vec<_> = requests
        .iter()
        .map(SequenceRequest::to_sim_request)
        .collect();
    let (timing, plans) = sched.plan(&sim_reqs);
    let run = engine()
        .execute_plan(requests, &plans)
        .expect("offline plan executes");
    let mut finish: Vec<f64> = timing.completions.iter().map(|c| c.finish_s).collect();
    finish.sort_by(f64::total_cmp);
    (run.outputs, plans, finish)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE differential property: online incremental scheduling produces
    /// bit-identical token streams, round plans, and completion times to
    /// offline whole-trace planning.
    #[test]
    fn online_run_is_bit_identical_to_offline_replay(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..6), 0u32..8, 0u64..5_000_000),
            1..6,
        ),
    ) {
        let requests = requests_from(&specs);
        let (offline_outputs, offline_plans, offline_finish) = offline(&requests);

        let mut server = OnlineServer::new(engine(), &scheduler(), requests.len())
            .expect("slots fit");
        let outcome = server.run_trace(&requests, &[]);
        prop_assert!(outcome.submissions.iter().all(Result::is_ok));

        prop_assert_eq!(&outcome.report.plans, &offline_plans);
        prop_assert_eq!(outcome.report.outcomes.len(), offline_outputs.len());
        for (out, offline_out) in outcome.report.outcomes.iter().zip(&offline_outputs) {
            prop_assert_eq!(&out.tokens, offline_out);
            prop_assert_eq!(out.state, SeqState::Finished);
        }
        let mut online_finish: Vec<f64> = outcome
            .report
            .outcomes
            .iter()
            .filter_map(|o| o.finish_s)
            .collect();
        online_finish.sort_by(f64::total_cmp);
        prop_assert_eq!(online_finish, offline_finish);
    }

    /// Backpressure property: whatever the queue capacity, every ACCEPTED
    /// submission runs to completion — backpressure may reject at the
    /// door, but it never drops a sequence it admitted. Rejections are
    /// typed `QueueFull`, never a panic, and are counted exactly.
    #[test]
    fn backpressure_never_drops_an_admitted_sequence(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..4), 1u32..5, 0u64..2_000_000),
            1..8,
        ),
        capacity in 0usize..4,
    ) {
        let requests = requests_from(&specs);
        let mut server =
            OnlineServer::new(engine(), &scheduler(), capacity).expect("slots fit");
        let outcome = server.run_trace(&requests, &[]);

        let mut rejected = 0usize;
        for sub in &outcome.submissions {
            match sub {
                Ok(id) => {
                    let out = &outcome.report.outcomes[id.0];
                    prop_assert_eq!(out.state, SeqState::Finished);
                    prop_assert_eq!(out.slot_frees, 1);
                    prop_assert!(out.ttft_s.is_some() || out.tokens.is_empty());
                }
                Err(ServeError::QueueFull { capacity: c }) => {
                    prop_assert_eq!(*c, capacity);
                    rejected += 1;
                }
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
        prop_assert_eq!(outcome.report.slo.rejected, rejected);
        prop_assert_eq!(
            outcome.report.slo.completed + rejected,
            requests.len()
        );
    }

    /// Cancellation properties: a cancelled sequence frees its KV slot
    /// exactly once (zero times if still queued) and never perturbs the
    /// token streams of the surviving sequences.
    #[test]
    fn cancellation_frees_slots_once_and_never_perturbs_survivors(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..5), 1u32..6, 0u64..4_000_000),
            2..6,
        ),
        cancels in prop::collection::vec((0u64..6_000_000, 0usize..6), 0..4),
    ) {
        let requests = requests_from(&specs);
        let cancels: Vec<(u64, usize)> = cancels
            .into_iter()
            .filter(|&(_, i)| i < requests.len())
            .collect();

        // Baseline run without cancellation.
        let mut baseline =
            OnlineServer::new(engine(), &scheduler(), requests.len()).expect("fits");
        let base = baseline.run_trace(&requests, &[]);

        let mut server =
            OnlineServer::new(engine(), &scheduler(), requests.len()).expect("fits");
        let outcome = server.run_trace(&requests, &cancels);

        for (out, base_out) in outcome.report.outcomes.iter().zip(&base.report.outcomes) {
            match out.state {
                SeqState::Finished => {
                    // Survivors stream exactly the baseline tokens.
                    prop_assert_eq!(&out.tokens, &base_out.tokens);
                    prop_assert_eq!(out.slot_frees, 1);
                }
                SeqState::Cancelled => {
                    // Freed exactly once if it ever held a slot.
                    let expected = u32::from(out.admitted_s.is_some());
                    prop_assert_eq!(out.slot_frees, expected);
                    // Whatever it streamed before cancellation is a
                    // prefix of the baseline stream.
                    prop_assert!(out.tokens.len() <= base_out.tokens.len());
                    prop_assert_eq!(
                        &out.tokens[..],
                        &base_out.tokens[..out.tokens.len()]
                    );
                }
                other => prop_assert!(false, "non-terminal final state {other:?}"),
            }
        }
        prop_assert_eq!(
            outcome.report.slo.completed + outcome.report.slo.cancelled,
            requests.len()
        );
    }
}

/// A real arrival process end to end: a seeded `sim::workload` trace
/// (diurnal Poisson arrivals) drives the online server and must replay
/// the offline plan bit for bit. Prompts/decodes are shrunk to the test
/// model's scale; the *arrival process* is the workload's own.
#[test]
fn workload_trace_online_matches_offline() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::DiurnalChat,
        requests: 48,
        arrivals_per_s: 200.0,
        seed: 7,
    };
    let requests: Vec<SequenceRequest> = spec
        .generate_with_seed(7)
        .iter()
        .map(|r| {
            let len = 1 + (r.prompt_tokens as usize % 4);
            let prompt: Vec<u32> = (0..len)
                .map(|i| (r.prompt_tokens + i as u32) % 128)
                .collect();
            SequenceRequest::greedy(r.arrival_s_micros, prompt, 1 + r.decode_tokens % 5)
        })
        .collect();
    let (offline_outputs, offline_plans, offline_finish) = offline(&requests);

    let mut server = OnlineServer::new(engine(), &scheduler(), requests.len()).expect("fits");
    let outcome = server.run_trace(&requests, &[]);
    assert!(outcome.submissions.iter().all(Result::is_ok));
    assert_eq!(outcome.report.plans, offline_plans);
    for (out, offline_out) in outcome.report.outcomes.iter().zip(&offline_outputs) {
        assert_eq!(&out.tokens, offline_out);
    }
    let mut online_finish: Vec<f64> = outcome
        .report
        .outcomes
        .iter()
        .filter_map(|o| o.finish_s)
        .collect();
    online_finish.sort_by(f64::total_cmp);
    assert_eq!(online_finish, offline_finish);
    // The trace replays: a second identical server agrees with itself.
    let mut replay = OnlineServer::new(engine(), &scheduler(), requests.len()).expect("fits");
    let again = replay.run_trace(&requests, &[]);
    assert_eq!(again.report.plans, outcome.report.plans);
    assert_eq!(again.report.slo, outcome.report.slo);
}

/// Queue-full rejection is a typed error even under a zero-capacity
/// queue — the degenerate configuration must not panic.
#[test]
fn zero_capacity_queue_rejects_everything_typed() {
    let mut server = OnlineServer::new(engine(), &scheduler(), 0).expect("fits");
    let outcome = server.run_trace(
        &[
            SequenceRequest::greedy(0, vec![1], 2),
            SequenceRequest::greedy(10, vec![2], 2),
        ],
        &[],
    );
    assert!(outcome
        .submissions
        .iter()
        .all(|s| matches!(s, Err(ServeError::QueueFull { capacity: 0 }))));
    assert_eq!(outcome.report.slo.rejected, 2);
    assert_eq!(outcome.report.slo.rounds, 0);
}
