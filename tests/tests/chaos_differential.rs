//! Chaos differential harness — the headline artifact of the fault layer.
//!
//! For arbitrary request traces under arbitrary seeded [`FaultPlan`]s the
//! online server must degrade *gracefully and deterministically*: every
//! sequence that finishes streams tokens bit-identical to the fault-free
//! baseline (remapping a dead chip's row-partitions changes hosting, never
//! arithmetic; re-prefilling an evicted sequence resumes token-exact),
//! every partially-served sequence's stream is a prefix of the baseline's,
//! every KV slot is freed exactly once per admission, every retirement is
//! a typed error, and replaying the same seed reproduces the run byte for
//! byte.
//!
//! Also here (satellite): cancellation mid-prefill against the panel path
//! (`prefill_chunked`). A victim whose prompt exceeds the 216-token round
//! budget is cancelled with its panel context half-built; the harness pins
//! that the slot is freed exactly once, survivors' streams are untouched,
//! and the slot is reusable bit-exactly.
//!
//! Run under both feature sets:
//! `cargo test -p hnlpu-integration --test chaos_differential` and the
//! same with `--no-default-features` — bit-exact either way.

use hnlpu::llm::fault::{ChaosSpec, FaultPlan};
use hnlpu::llm::serve::{OnlineServer, SeqState, ServeError};
use hnlpu::llm::{BatchedDataflowExecutor, DataflowExecutor, SequenceRequest};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use hnlpu::sim::{BatchScheduler, SimConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One weight materialization serves every case; each server gets its own
/// executor around a clone (KV state is per-slot, weights are shared-read).
fn weights() -> &'static ModelWeights {
    static WEIGHTS: OnceLock<ModelWeights> = OnceLock::new();
    WEIGHTS.get_or_init(|| {
        let card = zoo::dataflow_test_model();
        ModelWeights::materialize(&card.config, &WeightGenerator::new(2026))
    })
}

fn engine() -> BatchedDataflowExecutor {
    BatchedDataflowExecutor::new(DataflowExecutor::new(weights().clone()), 216)
}

fn scheduler() -> BatchScheduler {
    BatchScheduler::new(SimConfig::paper_default(), 2048)
}

/// Sorted-by-arrival greedy requests from proptest specs.
fn requests_from(specs: &[(Vec<u32>, u32, u64)]) -> Vec<SequenceRequest> {
    let mut sorted = specs.to_vec();
    sorted.sort_by_key(|&(_, _, arrival)| arrival);
    sorted
        .into_iter()
        .map(|(prompt, decode, arrival)| SequenceRequest::greedy(arrival, prompt, decode))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE chaos differential: under a seeded plan of chip kills,
    /// stragglers, link faults, and deadlines, survivors stream the
    /// fault-free tokens bit for bit, every stream is a baseline prefix,
    /// slots are freed exactly once per admission, retirements are typed,
    /// the SLO ledger reconciles, and the run replays exactly.
    #[test]
    fn chaos_runs_degrade_gracefully_and_replay_exactly(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..6), 1u32..8, 0u64..2_000_000),
            2..6,
        ),
        seed in 0u64..1_000_000,
        kills in 0usize..3,
        stragglers in 0usize..3,
        links in 0usize..2,
        deadlines in 0usize..3,
    ) {
        let requests = requests_from(&specs);
        let plan = FaultPlan::seeded(seed, &ChaosSpec {
            horizon_micros: 3_000_000,
            submissions: requests.len(),
            chip_failures: kills,
            stragglers,
            link_faults: links,
            deadlines,
            min_deadline_micros: 2_000,
        });
        plan.validate().expect("seeded plans validate");

        // Fault-free baseline: queue holds the whole trace, so both runs
        // accept every submission and SeqIds line up by index.
        let mut baseline =
            OnlineServer::new(engine(), &scheduler(), requests.len()).expect("fits");
        let base = baseline.run_trace(&requests, &[]);
        prop_assert!(base.submissions.iter().all(Result::is_ok));

        let mut chaos = OnlineServer::with_faults(
            engine(), &scheduler(), requests.len(), plan.clone(),
        ).expect("seeded plan is valid");
        let outcome = chaos.run_trace(&requests, &[]);
        prop_assert!(outcome.submissions.iter().all(Result::is_ok));

        for (out, base_out) in outcome.report.outcomes.iter().zip(&base.report.outcomes) {
            // Slot hygiene: freed exactly once per admission, always.
            prop_assert_eq!(out.slot_frees, out.admissions);
            // Graceful degradation never invents tokens: every stream is
            // a prefix of the fault-free stream.
            prop_assert!(out.tokens.len() <= base_out.tokens.len());
            prop_assert_eq!(&out.tokens[..], &base_out.tokens[..out.tokens.len()]);
            match out.state {
                SeqState::Finished => {
                    // Survivors — including evicted-and-recovered ones —
                    // resume token-exact.
                    prop_assert_eq!(&out.tokens, &base_out.tokens);
                    prop_assert!(out.error.is_none());
                }
                SeqState::DeadlineMissed => prop_assert!(
                    matches!(out.error, Some(ServeError::Deadline { .. })),
                    "deadline retirement must carry a typed error"
                ),
                SeqState::Shed => prop_assert!(
                    matches!(out.error, Some(ServeError::Shed { .. })),
                    "load shedding must carry a typed error"
                ),
                SeqState::ChipLost => prop_assert!(
                    matches!(out.error, Some(ServeError::ChipLost { .. })),
                    "recovery exhaustion must carry a typed error"
                ),
                other => prop_assert!(false, "non-terminal final state {other:?}"),
            }
        }

        // The SLO ledger reconciles: every accepted submission retires in
        // exactly one bucket, and the buckets match the outcome states.
        let slo = &outcome.report.slo;
        prop_assert_eq!(slo.submitted, requests.len());
        prop_assert_eq!(slo.rejected, 0);
        prop_assert_eq!(
            slo.completed + slo.cancelled + slo.shed + slo.deadline_missed + slo.chip_lost,
            slo.submitted
        );
        let count =
            |s: SeqState| outcome.report.outcomes.iter().filter(|o| o.state == s).count();
        prop_assert_eq!(count(SeqState::Finished), slo.completed);
        prop_assert_eq!(count(SeqState::DeadlineMissed), slo.deadline_missed);
        prop_assert_eq!(count(SeqState::Shed), slo.shed);
        prop_assert_eq!(count(SeqState::ChipLost), slo.chip_lost);
        // Every eviction is accounted: resumed or abandoned (an evicted
        // sequence retired by its deadline closes neither bucket).
        prop_assert!(slo.recovery.resumed + slo.recovery.failed <= slo.recovery.evictions);
        prop_assert!(slo.chip_failures <= kills);

        // Determinism: the same seed replays byte for byte.
        let mut replay = OnlineServer::with_faults(
            engine(), &scheduler(), requests.len(), plan,
        ).expect("valid");
        let again = replay.run_trace(&requests, &[]);
        prop_assert_eq!(&again.report.slo, slo);
        prop_assert_eq!(&again.report.plans, &outcome.report.plans);
        for (a, b) in again.report.outcomes.iter().zip(&outcome.report.outcomes) {
            prop_assert_eq!(&a.tokens, &b.tokens);
            prop_assert_eq!(a.state, b.state);
            prop_assert_eq!(a.finish_s, b.finish_s);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cancellation mid-prefill against the panel path: the victim's
    /// prompt exceeds the 216-token round budget, so after one round its
    /// panel context is half-built (`prefill_chunked` has consumed one
    /// panel, not the prompt). Cancelling there must free the KV slot
    /// exactly once, leave every survivor's stream bit-identical to the
    /// no-cancel baseline, and leave the slot reusable bit-exactly.
    #[test]
    fn cancel_mid_prefill_frees_the_slot_once_and_never_perturbs_survivor_panels(
        victim_len in 220usize..300,
        survivors in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..5), 1u32..6),
            1..4,
        ),
        decode in 1u32..4,
    ) {
        let victim_prompt: Vec<u32> =
            (0..victim_len).map(|i| (i as u32 * 7 + 3) % 128).collect();
        let mut requests = vec![SequenceRequest::greedy(0, victim_prompt.clone(), decode)];
        for (prompt, d) in &survivors {
            requests.push(SequenceRequest::greedy(0, prompt.clone(), *d));
        }
        let sched = scheduler();
        // Lands after exactly one pipeline round: the victim (admitted
        // first, FCFS) has prefilled one 216-token panel of its longer
        // prompt and is still `Prefilling`.
        let cancel_at = (0.5 * sched.round_s() * 1e6) as u64;

        let mut baseline =
            OnlineServer::new(engine(), &scheduler(), requests.len()).expect("fits");
        let base = baseline.run_trace(&requests, &[]);

        let mut server =
            OnlineServer::new(engine(), &scheduler(), requests.len()).expect("fits");
        let outcome = server.run_trace(&requests, &[(cancel_at, 0)]);
        prop_assert!(outcome.submissions.iter().all(Result::is_ok));

        let victim = &outcome.report.outcomes[0];
        prop_assert_eq!(victim.state, SeqState::Cancelled);
        prop_assert!(victim.admitted_s.is_some(), "victim was resident when cancelled");
        prop_assert!(victim.tokens.is_empty(), "cancelled before prefill completed");
        prop_assert_eq!(victim.slot_frees, 1);
        prop_assert_eq!(victim.admissions, 1);

        for (out, base_out) in
            outcome.report.outcomes.iter().zip(&base.report.outcomes).skip(1)
        {
            prop_assert_eq!(out.state, SeqState::Finished);
            prop_assert_eq!(&out.tokens, &base_out.tokens);
            prop_assert_eq!(out.slot_frees, 1);
        }
        prop_assert_eq!(
            outcome.report.slo.completed + outcome.report.slo.cancelled,
            requests.len()
        );

        // The freed slot is reusable bit-exactly: resubmitting the
        // victim's request reproduces the baseline stream from a slot
        // whose previous occupant died mid-panel.
        let retry = SequenceRequest::greedy(60_000_000, victim_prompt, decode);
        let rid = server.submit(retry).expect("slot is reusable after cancel");
        server.run_until_idle();
        prop_assert_eq!(server.state_of(rid), Some(SeqState::Finished));
        prop_assert_eq!(
            server.tokens_of(rid).expect("resubmitted sequence streams"),
            &base.report.outcomes[0].tokens[..]
        );
    }
}

/// An empty plan is not merely equivalent — the whole run is bit-identical
/// to a server built without the fault machinery in the loop: same round
/// plans, same SLO report, same token streams, same timestamps.
#[test]
fn empty_plan_run_is_bit_identical_to_plain_server() {
    let requests = vec![
        SequenceRequest::greedy(0, vec![5, 9, 2], 4),
        SequenceRequest::greedy(1_000, vec![7], 3),
        SequenceRequest::greedy(400_000, vec![1, 2, 3, 4], 2),
    ];
    let mut plain = OnlineServer::new(engine(), &scheduler(), requests.len()).expect("fits");
    let a = plain.run_trace(&requests, &[]);
    let mut gated =
        OnlineServer::with_faults(engine(), &scheduler(), requests.len(), FaultPlan::none())
            .expect("empty plan is valid");
    let b = gated.run_trace(&requests, &[]);
    assert_eq!(a.report.plans, b.report.plans);
    assert_eq!(a.report.slo, b.report.slo);
    for (x, y) in a.report.outcomes.iter().zip(&b.report.outcomes) {
        assert_eq!(x.tokens, y.tokens);
        assert_eq!(x.state, y.state);
        assert_eq!(x.finish_s, y.finish_s);
        assert_eq!(x.ttft_s, y.ttft_s);
    }
}

/// A concrete heavy chaos run (kills + stragglers + link faults +
/// deadlines all active) replays byte for byte and reconciles — the
/// anchor the CI smoke step mirrors inside `serving_simulator`.
#[test]
fn seeded_heavy_chaos_trace_replays_byte_for_byte() {
    let requests: Vec<SequenceRequest> = (0..12)
        .map(|i| {
            let prompt: Vec<u32> = (0..=(i % 4) as u32)
                .map(|t| (i as u32 * 13 + t) % 128)
                .collect();
            SequenceRequest::greedy(i as u64 * 150_000, prompt, 2 + i as u32 % 6)
        })
        .collect();
    let plan = FaultPlan::seeded(
        42,
        &ChaosSpec {
            horizon_micros: 2_000_000,
            submissions: requests.len(),
            chip_failures: 2,
            stragglers: 2,
            link_faults: 1,
            deadlines: 3,
            min_deadline_micros: 5_000,
        },
    );
    let run = |plan: FaultPlan| {
        let mut server =
            OnlineServer::with_faults(engine(), &scheduler(), requests.len(), plan).expect("valid");
        server.run_trace(&requests, &[])
    };
    let first = run(plan.clone());
    let second = run(plan);
    assert_eq!(first.report.slo, second.report.slo);
    assert_eq!(first.report.plans, second.report.plans);
    let slo = &first.report.slo;
    assert_eq!(
        slo.completed + slo.cancelled + slo.shed + slo.deadline_missed + slo.chip_lost,
        slo.submitted
    );
    assert_eq!(slo.chip_failures, 2);
    assert!(
        slo.degraded_rounds > 0,
        "two kills inside the trace degrade rounds"
    );
}
