//! Smoke-run every example binary end to end.
//!
//! Ignored by default (each run spawns a `cargo run --release`, which is
//! slow under `cargo test`); CI runs it explicitly:
//!
//! ```sh
//! cargo test -p hnlpu-integration --test examples_smoke -- --ignored
//! ```

use std::path::Path;
use std::process::{Command, Stdio};

/// Every `[[example]]` registered in crates/core/Cargo.toml.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "serving_simulator",
    "design_space_explorer",
    "tco_planner",
    "dataflow_verifier",
    "metal_embedding_compiler",
    "generate_reports",
    "rtl_export",
    "prompt_interface",
];

#[test]
#[ignore = "spawns one cargo run per example; exercised explicitly in CI"]
fn every_example_runs_cleanly() {
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ sits inside the workspace");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for name in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(workspace_root)
            .args([
                "run",
                "--release",
                "--offline",
                "-p",
                "hnlpu",
                "--example",
                name,
            ])
            .stdin(Stdio::null())
            .output()
            .unwrap_or_else(|e| panic!("spawning cargo for example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(!output.stdout.is_empty(), "example {name} printed nothing");
    }
}
