//! Smoke-run every example binary end to end.
//!
//! Ignored by default (each run spawns a `cargo run --release`, which is
//! slow under `cargo test`); CI runs it explicitly:
//!
//! ```sh
//! cargo test -p hnlpu-integration --test examples_smoke -- --ignored
//! ```

use std::path::Path;
use std::process::{Command, Stdio};

/// Every `[[example]]` registered in crates/core/Cargo.toml.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "serving_simulator",
    "design_space_explorer",
    "tco_planner",
    "dataflow_verifier",
    "metal_embedding_compiler",
    "generate_reports",
    "rtl_export",
    "prompt_interface",
];

#[test]
#[ignore = "spawns one cargo run per example; exercised explicitly in CI"]
fn every_example_runs_cleanly() {
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ sits inside the workspace");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for name in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(workspace_root)
            // Keep the serving simulator's online sweep in its quick
            // configuration; the other examples ignore the variable.
            .env("HNLPU_SERVE_QUICK", "1")
            .args([
                "run",
                "--release",
                "--offline",
                "-p",
                "hnlpu",
                "--example",
                name,
            ])
            .stdin(Stdio::null())
            .output()
            .unwrap_or_else(|e| panic!("spawning cargo for example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(!output.stdout.is_empty(), "example {name} printed nothing");
    }
}

/// The serving simulator's online mode (quick config) runs the
/// event-driven `OnlineServer` sweep end to end and writes the SLO
/// artifact CI uploads.
#[test]
#[ignore = "spawns a cargo run; exercised explicitly in CI"]
fn serving_simulator_online_quick_mode_emits_slo_report() {
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ sits inside the workspace");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(&cargo)
        .current_dir(workspace_root)
        .env("HNLPU_SERVE_QUICK", "1")
        .args([
            "run",
            "--release",
            "--offline",
            "-p",
            "hnlpu",
            "--example",
            "serving_simulator",
        ])
        .stdin(Stdio::null())
        .output()
        .expect("spawning cargo for serving_simulator");
    assert!(
        output.status.success(),
        "serving_simulator exited with {:?}\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("online: event-driven serving"),
        "online section missing from output:\n{stdout}"
    );
    assert!(
        stdout.contains("TTFT p99 s"),
        "SLO table header missing from output:\n{stdout}"
    );
    let report_path = workspace_root.join("serve-slo-report.json");
    let text = std::fs::read_to_string(&report_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", report_path.display()));
    // Well-formed JSON with the fields the SLO gate cares about.
    for field in [
        "\"cells\"",
        "\"ttft_p99_s\"",
        "\"tpot_p99_s\"",
        "\"completed\"",
        "\"rejected\"",
    ] {
        assert!(text.contains(field), "{field} missing from SLO report");
    }
}
