//! Zero-allocation decode sentinel: the dynamic twin of the static
//! `hot-path-alloc` rule in `hnlpu-analyze`.
//!
//! The static analyzer proves no *allocation call* is reachable from the
//! decode hot path; this test proves the *allocator* agrees. A counting
//! `#[global_allocator]` wraps the system allocator, and after a warmup
//! generation the steady-state `step_with` loop must perform exactly
//! zero heap allocations — under both the rayon and serial builds
//! (`--features count-alloc` / `--no-default-features --features
//! count-alloc,…`).
//!
//! Run with: `cargo test -p hnlpu-integration --features count-alloc`

#![cfg(feature = "count-alloc")]

use hnlpu::llm::{DataflowExecutor, PrefixCache, PrefixCacheConfig};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a relaxed allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_decode_performs_zero_allocations() {
    const PROMPT: &[u32] = &[2, 4, 8, 16];
    const WARMUP_STEPS: usize = 4;
    const MEASURED_STEPS: usize = 16;

    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(42));
    let engine = DataflowExecutor::new(weights);
    let mut state = engine.new_state();
    let mut scratch = engine.new_scratch();

    // Size the context-dependent buffers for the whole run up front —
    // the serving layer does the same per admitted sequence.
    let horizon = PROMPT.len() + WARMUP_STEPS + MEASURED_STEPS;
    state.reserve_context(horizon);
    scratch.reserve_context(horizon);

    // Prefill plus warmup decode: first touches of lazily-sized buffers
    // (rope table growth, lora scratch, kernel dispatch init) land here.
    let mut token = *PROMPT.last().expect("non-empty prompt");
    for &t in PROMPT {
        engine.step_with(t, &mut state, &mut scratch);
    }
    for _ in 0..WARMUP_STEPS {
        engine.step_with(token, &mut state, &mut scratch);
        token = argmax(scratch.logits());
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(
        before > 0,
        "counter miswired: model construction must have allocated"
    );
    for _ in 0..MEASURED_STEPS {
        engine.step_with(token, &mut state, &mut scratch);
        token = argmax(scratch.logits());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state decode allocated {} times over {MEASURED_STEPS} steps",
        after - before
    );
}

/// The paged twin of the sentinel above: a sequence that *hit* the
/// prefix cache decodes through shared, refcounted pages (indirect page
/// lookup in `key`/`value`) — and the steady-state loop still performs
/// exactly zero heap allocations. Attach-time work (boundary-block
/// copy-on-write, page table growth) happens before the measured window,
/// exactly as it does at admission in the serving layer.
#[test]
fn prefix_hit_decode_through_shared_pages_performs_zero_allocations() {
    const WARMUP_STEPS: usize = 4;
    const MEASURED_STEPS: usize = 16;

    // Three full 16-token blocks; the cache caps the match at 47 so the
    // final token is prefilled by the reader itself.
    let prompt: Vec<u32> = (0..48u32).map(|i| (i * 11 + 5) % 96).collect();

    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(42));
    let engine = DataflowExecutor::new(weights);

    // Donor sequence: prefill the whole prompt, then commit its full
    // blocks into a prefix cache (freezing them into shared pages).
    let mut cache = PrefixCache::new(PrefixCacheConfig::default());
    let mut donor_grant = Vec::new();
    {
        let mut donor = engine.new_state();
        let mut scratch = engine.new_scratch();
        donor.reserve_context(prompt.len());
        scratch.reserve_context(prompt.len());
        for &t in &prompt {
            engine.step_with(t, &mut donor, &mut scratch);
        }
        cache.commit(&prompt, |b| donor.share_block(b), &mut donor_grant);
    }

    // Reader sequence: attach the cached prefix and decode through it.
    let m = cache.match_prompt(&prompt);
    assert_eq!(m.matched, prompt.len() - 1, "full-block prefix hit");
    let mut grant = Vec::new();
    cache.retain_match(&m, &mut grant);

    let mut state = engine.new_state();
    let mut scratch = engine.new_scratch();
    state.attach_prefix(m.matched, &m.blocks, cache.pool());
    let horizon = prompt.len() + WARMUP_STEPS + MEASURED_STEPS;
    state.reserve_context(horizon);
    scratch.reserve_context(horizon);

    // Prefill the unmatched final token, then warm up the decode loop.
    let mut token = *prompt.last().expect("non-empty prompt");
    engine.step_with(token, &mut state, &mut scratch);
    for _ in 0..WARMUP_STEPS {
        engine.step_with(token, &mut state, &mut scratch);
        token = argmax(scratch.logits());
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..MEASURED_STEPS {
        engine.step_with(token, &mut state, &mut scratch);
        token = argmax(scratch.logits());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "shared-page decode allocated {} times over {MEASURED_STEPS} steps",
        after - before
    );

    // The grant ledger still balances after the measured run.
    cache.release_grant(&mut grant);
    cache.release_grant(&mut donor_grant);
    cache.flush();
    assert!(cache.ledger_balanced(), "every page freed exactly once");
}

/// Greedy next token without allocating.
fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}
