//! Zero-allocation decode sentinel: the dynamic twin of the static
//! `hot-path-alloc` rule in `hnlpu-analyze`.
//!
//! The static analyzer proves no *allocation call* is reachable from the
//! decode hot path; this test proves the *allocator* agrees. A counting
//! `#[global_allocator]` wraps the system allocator, and after a warmup
//! generation the steady-state `step_with` loop must perform exactly
//! zero heap allocations — under both the rayon and serial builds
//! (`--features count-alloc` / `--no-default-features --features
//! count-alloc,…`).
//!
//! Run with: `cargo test -p hnlpu-integration --features count-alloc`

#![cfg(feature = "count-alloc")]

use hnlpu::llm::DataflowExecutor;
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a relaxed allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_decode_performs_zero_allocations() {
    const PROMPT: &[u32] = &[2, 4, 8, 16];
    const WARMUP_STEPS: usize = 4;
    const MEASURED_STEPS: usize = 16;

    let card = zoo::dataflow_test_model();
    let weights = ModelWeights::materialize(&card.config, &WeightGenerator::new(42));
    let engine = DataflowExecutor::new(weights);
    let mut state = engine.new_state();
    let mut scratch = engine.new_scratch();

    // Size the context-dependent buffers for the whole run up front —
    // the serving layer does the same per admitted sequence.
    let horizon = PROMPT.len() + WARMUP_STEPS + MEASURED_STEPS;
    state.reserve_context(horizon);
    scratch.reserve_context(horizon);

    // Prefill plus warmup decode: first touches of lazily-sized buffers
    // (rope table growth, lora scratch, kernel dispatch init) land here.
    let mut token = *PROMPT.last().expect("non-empty prompt");
    for &t in PROMPT {
        engine.step_with(t, &mut state, &mut scratch);
    }
    for _ in 0..WARMUP_STEPS {
        engine.step_with(token, &mut state, &mut scratch);
        token = argmax(scratch.logits());
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(
        before > 0,
        "counter miswired: model construction must have allocated"
    );
    for _ in 0..MEASURED_STEPS {
        engine.step_with(token, &mut state, &mut scratch);
        token = argmax(scratch.logits());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state decode allocated {} times over {MEASURED_STEPS} steps",
        after - before
    );
}

/// Greedy next token without allocating.
fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}
