//! The full verification chain at the arithmetic level: naive MAC
//! reference ≡ behavioral Hardwired-Neuron ≡ gate-level RTL neuron ≡ the
//! ME tile executor — four independent implementations of the same dot
//! product, pinned equal on random stimuli.

use hnlpu::arith::neuron::{reference_dot, CellEmbeddingNeuron, HardwiredNeuron};
use hnlpu::arith::GateHn;
use hnlpu::embed::{TileDesign, TileMethod};
use hnlpu::model::Fp4;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn four_way_equivalence(
        codes in prop::collection::vec(0u8..16, 4..40),
        seed in 0u64..500,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let weights: Vec<Fp4> = codes.iter().map(|&c| Fp4::from_code(c)).collect();
        let n = weights.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let acts: Vec<i32> = (0..n).map(|_| rng.gen_range(-32..32)).collect();

        let reference = reference_dot(&weights, &acts);
        let behavioral = HardwiredNeuron::build_with_bits(&weights, 1.25, 7)
            .eval(&acts)
            .value_half_units;
        let ce = CellEmbeddingNeuron::build(&weights, 12)
            .eval(&acts)
            .value_half_units;
        let rtl = GateHn::build(&weights, 7).eval(&acts);

        prop_assert_eq!(reference, behavioral);
        prop_assert_eq!(reference, ce);
        prop_assert_eq!(reference, rtl);
    }
}

#[test]
fn tile_executor_joins_the_chain() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(9);
    let (rows, cols) = (24usize, 3usize);
    let weights: Vec<Fp4> = (0..rows * cols)
        .map(|_| Fp4::from_code(rng.gen_range(0..16)))
        .collect();
    let acts: Vec<i32> = (0..rows).map(|_| rng.gen_range(-64..64)).collect();
    let mut tile = TileDesign::paper(TileMethod::MetalEmbedding);
    tile.rows = rows;
    tile.cols = cols;
    let tile_out = tile.execute(&weights, &acts);
    for c in 0..cols {
        let col: Vec<Fp4> = (0..rows).map(|r| weights[r * cols + c]).collect();
        let rtl = GateHn::build(&col, 8).eval(&acts);
        assert_eq!(tile_out[c], rtl, "column {c}");
    }
}

#[test]
fn emitted_testbench_is_consistent_with_the_model() {
    // The Verilog TB embeds expected values computed by the functional
    // model; spot-check they equal the independent reference.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4);
    let weights: Vec<Fp4> = (0..12)
        .map(|_| Fp4::from_code(rng.gen_range(0..16)))
        .collect();
    let hn = GateHn::build(&weights, 6);
    let cases: Vec<Vec<i32>> = (0..3)
        .map(|_| (0..12).map(|_| rng.gen_range(-16..16)).collect())
        .collect();
    let tb = hn.to_verilog_testbench("hn12", &cases);
    for case in &cases {
        let expect = reference_dot(&weights, case);
        assert!(
            tb.contains(&format!("!== {expect}")),
            "TB missing expectation {expect}"
        );
    }
}
