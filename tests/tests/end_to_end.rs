//! End-to-end integration: design the paper's machine through the public
//! API and check the cross-crate plumbing agrees with itself.

use hnlpu::experiments;
use hnlpu::model::zoo;
use hnlpu::tco::{DeploymentScale, UpdatePolicy};
use hnlpu::HnlpuSystem;

#[test]
fn design_and_evaluate_the_paper_machine() {
    let system = HnlpuSystem::design(zoo::gpt_oss_120b());
    assert_eq!(system.num_chips(), 16);

    // Physical plan consistent between chip report and array plan.
    let hn_area = system.chip_report().block("HN Array").unwrap().area_mm2;
    let plan_area = system.array_plan().area_mm2(system.tech());
    assert!((hn_area - plan_area).abs() < 1e-9);

    // Simulator consistent with the plan's projection timing.
    assert_eq!(
        system.engine().config.projection_cycles,
        system.array_plan().projection_cycles()
    );

    // Economics flow end to end.
    let t3 = system.table3(DeploymentScale::High);
    let (lo, hi) = t3.tco_advantage(UpdatePolicy::AnnualUpdates);
    assert!(lo < hi);
    assert!(lo > 10.0, "TCO advantage should be an order of magnitude");
}

#[test]
fn every_experiment_regenerates() {
    let reports = experiments::all();
    assert_eq!(reports.len(), 13);
    for r in &reports {
        assert!(!r.metrics.is_empty(), "{} has no rows", r.id);
        let md = r.render_markdown();
        assert!(md.contains(r.id));
        for m in &r.metrics {
            assert!(m.measured.is_finite(), "{}: {} is not finite", r.id, m.name);
        }
    }
}

#[test]
fn experiment_reports_serialize_to_json() {
    let report = experiments::tab2();
    let json = serde_json::to_string(&report).expect("serializes");
    assert!(json.contains("\"paper\""));
    let rows: serde_json::Value = serde_json::from_str(&json).expect("parses");
    assert_eq!(rows["id"], "TAB2");
}

#[test]
fn derived_systems_scale_sensibly() {
    let small = HnlpuSystem::design(zoo::llama3_8b());
    let big = HnlpuSystem::design(zoo::kimi_k2());
    assert!(big.num_chips() > small.num_chips());
    assert!(big.silicon_mm2() > small.silicon_mm2());
    assert!(
        big.nre(1).initial_build().mid() > small.nre(1).initial_build().mid(),
        "NRE must grow with model size"
    );
}
