//! Paged-vs-dense differential harness for radix prefix reuse.
//!
//! The paged KV engine — shared pages, copy-on-write boundaries, and a
//! scheduler that charges only unmatched prompt suffixes — must be a pure
//! optimization: for arbitrary traces of prefix-sharing requests it
//! produces **bit-identical token streams** to the dense engine, the
//! online server reproduces the offline prefixed planner's RoundPlans and
//! finish times exactly, and under seeded chip-death chaos every shared
//! page reference is dropped exactly once (the pool drains to
//! tree-only references).
//!
//! Run under both feature sets:
//! `cargo test -p hnlpu-integration --test paged_prefix_differential` and
//! the same with `--no-default-features` — bit-exact either way.

use hnlpu::llm::fault::{ChaosSpec, ChipFailure, FaultPlan};
use hnlpu::llm::serve::{OnlineServer, SeqState};
use hnlpu::llm::{
    BatchedDataflowExecutor, DataflowExecutor, PageBuf, PrefixCache, PrefixCacheConfig,
    SequenceRequest,
};
use hnlpu::sim::scheduler::{PrefixOracle, Request};
use hnlpu::sim::{BatchScheduler, RoundPlan, SimConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn weights() -> &'static hnlpu::model::ModelWeights {
    static WEIGHTS: OnceLock<hnlpu::model::ModelWeights> = OnceLock::new();
    WEIGHTS.get_or_init(|| {
        let card = hnlpu::model::zoo::dataflow_test_model();
        hnlpu::model::ModelWeights::materialize(
            &card.config,
            &hnlpu::model::WeightGenerator::new(2026),
        )
    })
}

fn dense_engine() -> BatchedDataflowExecutor {
    BatchedDataflowExecutor::new(DataflowExecutor::new(weights().clone()), 216)
}

fn paged_engine() -> BatchedDataflowExecutor {
    dense_engine().with_prefix_cache(PrefixCacheConfig::default())
}

fn scheduler() -> BatchScheduler {
    BatchScheduler::new(SimConfig::paper_default(), 2048)
}

/// One of a few deterministic "system prompts", long enough to span
/// full 16-token blocks plus a copy-on-write boundary.
fn system_prompt(k: usize) -> Vec<u32> {
    let len = 24 + 5 * (k % 4);
    (0..len as u32)
        .map(|i| (i * 13 + k as u32 * 31 + 2) % 120)
        .collect()
}

/// Requests drawn from a mixture of shared system prompts and private
/// user suffixes, sorted by arrival.
fn shared_prefix_requests(specs: &[(usize, Vec<u32>, u32, u64)]) -> Vec<SequenceRequest> {
    let mut sorted = specs.to_vec();
    sorted.sort_by_key(|&(_, _, _, arrival)| arrival);
    sorted
        .into_iter()
        .map(|(k, suffix, decode, arrival)| {
            let mut prompt = system_prompt(k);
            prompt.extend_from_slice(&suffix);
            SequenceRequest::greedy(arrival, prompt, decode)
        })
        .collect()
}

/// The harness's own planning oracle: mirrors the engine's match/commit
/// schedule on a tree of placeholder pages through the *public* cache
/// API, so the offline RoundPlan log can be reconstructed independently
/// of the engine's internal planner.
struct HarnessOracle<'a> {
    requests: &'a [SequenceRequest],
    cache: PrefixCache,
}

impl PrefixOracle for HarnessOracle<'_> {
    fn matched_on_admit(&mut self, seq: usize, _req: &Request) -> u32 {
        match self.requests.get(seq) {
            Some(r) => self.cache.match_prompt(&r.prompt).matched as u32,
            None => 0,
        }
    }

    fn on_prefill_complete(&mut self, seq: usize, _req: &Request) {
        let Some(r) = self.requests.get(seq) else {
            return;
        };
        let per_block = self.cache.config().pages_per_block;
        let mut grant = Vec::new();
        self.cache.commit(
            &r.prompt,
            |_| vec![PageBuf::placeholder(); per_block],
            &mut grant,
        );
        self.cache.release_grant(&mut grant);
    }
}

/// The offline prefixed RoundPlan log, reconstructed via the public API.
fn offline_prefixed_plans(requests: &[SequenceRequest]) -> Vec<RoundPlan> {
    let sim_reqs: Vec<Request> = requests
        .iter()
        .map(SequenceRequest::to_sim_request)
        .collect();
    let mut oracle = HarnessOracle {
        requests,
        cache: PrefixCache::new(PrefixCacheConfig::default()),
    };
    let (_, plans) = scheduler().plan_with_prefixes(&sim_reqs, &mut oracle);
    plans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// THE paged-vs-dense differential: for arbitrary shared-prefix
    /// traces, the paged engine streams bit-identical tokens to the
    /// dense engine while prefilling no more (and, whenever any prompt
    /// matched, strictly fewer) tokens. The timing plan and the
    /// functional engine agree on the suffix accounting.
    #[test]
    fn paged_engine_is_token_exact_vs_dense(
        specs in prop::collection::vec(
            (0usize..3, prop::collection::vec(0u32..128, 1..6), 0u32..8, 0u64..5_000_000),
            1..7,
        ),
    ) {
        let requests = shared_prefix_requests(&specs);
        let (dense, dense_timing) = dense_engine()
            .run_with_scheduler(&requests, &scheduler())
            .expect("dense plan executes");
        let (paged, paged_timing) = paged_engine()
            .run_with_scheduler(&requests, &scheduler())
            .expect("paged plan executes");

        prop_assert_eq!(&dense.outputs, &paged.outputs);
        prop_assert_eq!(dense.decoded_tokens, paged.decoded_tokens);
        prop_assert!(paged.prefill_tokens <= dense.prefill_tokens);
        prop_assert_eq!(
            dense.prefill_tokens - paged.prefill_tokens,
            paged.prefix.reused_positions
        );
        if paged.prefix.hits > 0 {
            prop_assert!(paged.prefill_tokens < dense.prefill_tokens);
        }
        // The timing model charged exactly what the engine prefilled.
        prop_assert_eq!(paged_timing.prefill_tokens, paged.prefill_tokens);
        prop_assert_eq!(dense_timing.decoded_tokens, paged_timing.decoded_tokens);
    }

    /// Online/offline differential with sharing on: the event-driven
    /// server reproduces the offline prefixed planner's RoundPlan log,
    /// token streams, and finish times bit for bit, and drains its page
    /// pool to tree-only references.
    #[test]
    fn online_paged_run_is_bit_identical_to_offline_prefixed_replay(
        specs in prop::collection::vec(
            (0usize..3, prop::collection::vec(0u32..128, 1..6), 0u32..8, 0u64..5_000_000),
            1..6,
        ),
    ) {
        let requests = shared_prefix_requests(&specs);
        let (offline_run, offline_timing) = paged_engine()
            .run_with_scheduler(&requests, &scheduler())
            .expect("offline paged plan executes");
        let offline_plans = offline_prefixed_plans(&requests);

        let mut server = OnlineServer::new(paged_engine(), &scheduler(), requests.len())
            .expect("slots fit");
        let outcome = server.run_trace(&requests, &[]);
        prop_assert!(outcome.submissions.iter().all(Result::is_ok));

        prop_assert_eq!(&outcome.report.plans, &offline_plans);
        for (out, offline_out) in outcome.report.outcomes.iter().zip(&offline_run.outputs) {
            prop_assert_eq!(&out.tokens, offline_out);
            prop_assert_eq!(out.state, SeqState::Finished);
        }
        let mut online_finish: Vec<f64> = outcome
            .report
            .outcomes
            .iter()
            .filter_map(|o| o.finish_s)
            .collect();
        online_finish.sort_by(f64::total_cmp);
        let mut offline_finish: Vec<f64> =
            offline_timing.completions.iter().map(|c| c.finish_s).collect();
        offline_finish.sort_by(f64::total_cmp);
        prop_assert_eq!(online_finish, offline_finish);
        prop_assert_eq!(outcome.report.slo.prefill_tokens, offline_run.prefill_tokens);

        // Quiescence: every sequence grant was released; only the tree
        // still references pages.
        let cache = server.prefix_cache().expect("prefix engine serves a cache");
        prop_assert!(cache.pool().max_ref_count() <= 1);
        let stats = cache.pool().stats();
        prop_assert_eq!(stats.registered - stats.freed, cache.pool().live() as u64);
    }

    /// Chip-death chaos with sharing on: a died chip's shared pages drop
    /// their references exactly once (evicted grants + one tree flush),
    /// survivors stream the fault-free dense tokens bit for bit, and the
    /// pool drains to tree-only references.
    #[test]
    fn chip_death_drops_shared_page_refs_exactly_once(
        specs in prop::collection::vec(
            (0usize..2, prop::collection::vec(0u32..128, 1..5), 1u32..8, 0u64..2_000_000),
            2..6,
        ),
        seed in 0u64..1_000_000,
        kills in 1usize..3,
    ) {
        let requests = shared_prefix_requests(&specs);
        let plan = FaultPlan::seeded(seed, &ChaosSpec {
            horizon_micros: 3_000_000,
            submissions: requests.len(),
            chip_failures: kills,
            stragglers: 0,
            link_faults: 0,
            deadlines: 0,
            min_deadline_micros: 2_000,
        });
        plan.validate().expect("seeded plans validate");

        let mut baseline =
            OnlineServer::new(dense_engine(), &scheduler(), requests.len()).expect("fits");
        let base = baseline.run_trace(&requests, &[]);
        prop_assert!(base.submissions.iter().all(Result::is_ok));

        let mut chaos = OnlineServer::with_faults(
            paged_engine(), &scheduler(), requests.len(), plan.clone(),
        ).expect("seeded plan is valid");
        let outcome = chaos.run_trace(&requests, &[]);
        prop_assert!(outcome.submissions.iter().all(Result::is_ok));

        for (out, base_out) in outcome.report.outcomes.iter().zip(&base.report.outcomes) {
            prop_assert_eq!(out.slot_frees, out.admissions);
            prop_assert!(out.tokens.len() <= base_out.tokens.len());
            prop_assert_eq!(&out.tokens[..], &base_out.tokens[..out.tokens.len()]);
            if out.state == SeqState::Finished {
                prop_assert_eq!(&out.tokens, &base_out.tokens);
            }
        }

        // Ledger: every page freed at most once, grants all released, and
        // the run replays byte for byte under the same seed.
        let cache = chaos.prefix_cache().expect("prefix engine serves a cache");
        prop_assert!(cache.pool().max_ref_count() <= 1);
        let stats = cache.pool().stats();
        prop_assert!(stats.freed <= stats.registered);
        prop_assert_eq!(stats.registered - stats.freed, cache.pool().live() as u64);

        let mut replay = OnlineServer::with_faults(
            paged_engine(), &scheduler(), requests.len(), plan,
        ).expect("valid");
        let again = replay.run_trace(&requests, &[]);
        prop_assert_eq!(&again.report.slo, &outcome.report.slo);
        prop_assert_eq!(&again.report.plans, &outcome.report.plans);
    }
}

/// Deterministic fixture: two admission waves over one system prompt; a
/// chip dies between them. The flush frees every pre-fault page, the
/// post-fault wave rebuilds and re-shares the prefix, and all streams
/// stay token-exact against the dense fault-free reference.
#[test]
fn deterministic_chip_death_flushes_and_rebuilds_the_tree() {
    let mut requests = Vec::new();
    for i in 0..4u64 {
        let mut prompt = system_prompt(0);
        prompt.extend_from_slice(&[7 + i as u32]);
        requests.push(SequenceRequest::greedy(i * 1_000, prompt, 4));
    }
    for i in 0..4u64 {
        let mut prompt = system_prompt(0);
        prompt.extend_from_slice(&[90 + i as u32]);
        requests.push(SequenceRequest::greedy(2_000_000 + i * 1_000, prompt, 4));
    }
    let plan = FaultPlan {
        chip_failures: vec![ChipFailure {
            at_micros: 1_000_000,
            chip: 5,
        }],
        ..FaultPlan::default()
    };
    plan.validate().expect("hand-built plan validates");

    let mut baseline =
        OnlineServer::new(dense_engine(), &scheduler(), requests.len()).expect("fits");
    let base = baseline.run_trace(&requests, &[]);

    let mut server = OnlineServer::with_faults(paged_engine(), &scheduler(), requests.len(), plan)
        .expect("valid plan");
    let outcome = server.run_trace(&requests, &[]);
    assert!(outcome.submissions.iter().all(Result::is_ok));

    for (out, base_out) in outcome.report.outcomes.iter().zip(&base.report.outcomes) {
        assert_eq!(out.state, SeqState::Finished, "all sequences recover");
        assert_eq!(&out.tokens, &base_out.tokens, "recovered streams are exact");
        assert_eq!(out.slot_frees, out.admissions);
    }
    let slo = &outcome.report.slo;
    assert_eq!(slo.chip_failures, 1);
    let cache = server.prefix_cache().expect("cache");
    // The fault flushed every pre-fault page; wave 2 (and recoveries)
    // committed fresh ones, still held only by the tree.
    assert!(cache.stats().flushed_pages > 0, "flush released tree refs");
    assert!(
        cache.stats().hits > 0,
        "wave 2 re-shared the rebuilt prefix"
    );
    assert!(cache.pool().max_ref_count() <= 1);
    let stats = cache.pool().stats();
    assert_eq!(stats.registered - stats.freed, cache.pool().live() as u64);
}
