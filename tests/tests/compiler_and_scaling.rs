//! Metal-Embedding compiler coverage over every gpt-oss matrix kind, and
//! scaling-law properties across the model zoo and simulator.

use hnlpu::embed::array::MeNeuronParams;
use hnlpu::embed::MeCompiler;
use hnlpu::litho::nre::{chips_for_model, model_nre_price};
use hnlpu::model::{zoo, WeightGenerator, WeightKind, WeightMatrix};
use hnlpu::sim::{pipeline, SimConfig};
use proptest::prelude::*;

#[test]
fn every_gpt_oss_matrix_kind_compiles() {
    let cfg = zoo::gpt_oss_120b().config;
    let compiler = MeCompiler::new(MeNeuronParams::array_default());
    let gen = WeightGenerator::new(11);
    // One representative (column-sliced) matrix per kind; expert matrices
    // are sampled rather than exhaustive.
    let h = cfg.hidden_size;
    let cases = vec![
        WeightMatrix::new(WeightKind::Query, h, cfg.attention.q_width() / 16),
        WeightMatrix::new(WeightKind::Key, h, cfg.attention.kv_width() / 4),
        WeightMatrix::new(WeightKind::Value, h, cfg.attention.kv_width() / 4),
        WeightMatrix::new(WeightKind::Output, cfg.attention.q_width() / 4, h / 16),
        WeightMatrix::new(WeightKind::Router, h, cfg.moe.num_experts),
        WeightMatrix::expert(
            WeightKind::ExpertUp { expert: 0 },
            h,
            cfg.moe.intermediate_size / 8,
        ),
        WeightMatrix::expert(
            WeightKind::ExpertGate { expert: 7 },
            h,
            cfg.moe.intermediate_size / 8,
        ),
        WeightMatrix::expert(
            WeightKind::ExpertDown { expert: 99 },
            cfg.moe.intermediate_size,
            h / 8,
        ),
    ];
    for m in cases {
        let compiled = compiler
            .compile(&gen, 0, &m)
            .unwrap_or_else(|e| panic!("{:?} failed: {e}", m.kind));
        assert_eq!(compiled.wires, m.len() as u64, "{:?}", m.kind);
        assert!(compiled.route.congestion_free, "{:?} congested", m.kind);
        assert!(
            compiled.route.peak_utilization < 0.70,
            "{:?} exceeds the paper's 70% density bound",
            m.kind
        );
        // Allocation covers the histogram exactly: capacity >= counts.
        let hist = gen.code_histogram(0, &m);
        for alloc in compiled.allocations.iter().take(4) {
            for code in 0..16u8 {
                // Per-neuron histograms differ from the matrix histogram;
                // just assert the invariant that granted capacity is a
                // multiple of the slice size and non-negative.
                assert_eq!(alloc.region_capacity(code) % alloc.pool.slice_inputs, 0);
            }
        }
        let _ = hist;
    }
}

#[test]
fn nre_is_monotone_in_model_size() {
    let mut priced: Vec<(u64, f64)> = zoo::all_models()
        .into_iter()
        .map(|card| {
            (
                card.weight_bits(),
                model_nre_price(&card).initial_build().mid(),
            )
        })
        .collect();
    priced.sort_by_key(|(bits, _)| *bits);
    for pair in priced.windows(2) {
        assert!(pair[1].1 >= pair[0].1, "NRE not monotone: {pair:?}");
    }
}

#[test]
fn chips_are_monotone_in_weight_bits() {
    assert!(chips_for_model(&zoo::kimi_k2()) > chips_for_model(&zoo::deepseek_v3()));
    assert!(chips_for_model(&zoo::deepseek_v3()) > chips_for_model(&zoo::gpt_oss_120b()));
    assert!(chips_for_model(&zoo::gpt_oss_120b()) > chips_for_model(&zoo::llama3_8b()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Decode throughput is non-increasing in context length.
    #[test]
    fn throughput_monotone_in_context(a in 1024u64..500_000, b in 1024u64..500_000) {
        let cfg = SimConfig::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            pipeline::decode_throughput(&cfg, lo) >= pipeline::decode_throughput(&cfg, hi) - 1e-6
        );
    }

    /// Per-token breakdown shares always sum to 100%.
    #[test]
    fn breakdown_shares_sum(ctx in 512u64..1_000_000) {
        let cfg = SimConfig::paper_default();
        let b = hnlpu::sim::Breakdown::at(&cfg, ctx);
        let sum: f64 = b.shares.iter().sum();
        prop_assert!((sum - 100.0).abs() < 1e-6);
    }

    /// Layer timing components are individually non-negative and total
    /// matches their sum.
    #[test]
    fn layer_timing_consistency(ctx in 512u64..1_000_000) {
        let cfg = SimConfig::paper_default();
        let t = hnlpu::sim::LayerTiming::compute(&cfg, ctx);
        for v in [t.comm, t.projection, t.nonlinear, t.attention, t.stall] {
            prop_assert!(v >= 0.0);
        }
        prop_assert!(
            (t.total() - (t.comm + t.projection + t.nonlinear + t.attention + t.stall)).abs()
                < 1e-9
        );
    }
}
