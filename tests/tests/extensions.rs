//! Integration coverage of the §8 future-work features across crates:
//! LoRA side-channel (functional + physical), sequence scoring / text
//! embedding, re-spin planning, blue-green updates, the packet-level
//! fabric, and the workload-driven energy accounting.

use hnlpu::embed::SideChannelPlan;
use hnlpu::litho::{classify_update, update_cost, UpdateKind};
use hnlpu::llm::{DataflowExecutor, LoraAdapter, Sampler, Transformer};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use hnlpu::sim::{
    pipeline, BatchScheduler, PacketSim, SimConfig, SystemPowerModel, WorkloadKind, WorkloadSpec,
};
use hnlpu::tco::{Assumptions, BlueGreenPlan};

#[test]
fn lora_functional_and_physical_sides_agree_on_budget() {
    // The functional adapter's parameter count must match what the
    // side-channel plan provisions SRAM for.
    let cfg = zoo::gpt_oss_120b().config;
    let rank = 16;
    let adapter = LoraAdapter::zeros(cfg.hidden_size, cfg.attention.q_width(), rank, 1.0);
    let plan = SideChannelPlan::plan(&cfg, 16, rank);
    let functional_total = adapter.params() * cfg.num_layers;
    assert_eq!(
        plan.adapter_params_per_chip * 16,
        functional_total as u64,
        "physical plan must store exactly the functional adapter weights"
    );
}

#[test]
fn lora_update_steers_both_machines_identically() {
    let card = zoo::dataflow_test_model();
    let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(404));
    let c = card.config;
    let adapter = LoraAdapter::seeded(c.hidden_size, c.attention.q_width(), 2, 4.0, 1);
    let mut reference = Transformer::new(w.clone());
    let mut hnlpu = DataflowExecutor::new(w);
    reference.set_q_adapter(1, adapter.clone());
    hnlpu.set_q_adapter(1, adapter);
    assert_eq!(
        reference.generate_greedy(&[9, 4], 8),
        hnlpu.generate_greedy(&[9, 4], 8)
    );
}

#[test]
fn scoring_and_embedding_tasks_work_on_the_16_chip_machine() {
    let card = zoo::dataflow_test_model();
    let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(77));
    let hnlpu = DataflowExecutor::new(w.clone());
    let reference = Transformer::new(w);
    // Scoring: the machine's own greedy continuation scores best.
    let prompt = [3u32, 7];
    let cont = hnlpu.generate_greedy(&prompt, 4);
    let mut seq: Vec<u32> = prompt.to_vec();
    seq.extend_from_slice(&cont);
    let own = hnlpu.score_sequence(&seq);
    let reference_score = reference.score_sequence(&seq);
    assert!((own - reference_score).abs() < 1e-3);
    // Embedding: similar prefixes embed closer than dissimilar ones.
    let e1 = hnlpu.text_embedding(&[1, 2, 3, 4]);
    let e2 = hnlpu.text_embedding(&[1, 2, 3, 5]);
    let e3 = hnlpu.text_embedding(&[90, 80, 70, 60]);
    let dist = |a: &[f32], b: &[f32]| -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>()
    };
    assert!(dist(&e1, &e2) < dist(&e1, &e3));
}

#[test]
fn respin_planning_flows_into_blue_green_costing() {
    let old = zoo::gpt_oss_120b().config;
    let mut new = old;
    new.moe.num_experts = 112; // shrinks into the prefab
    let kind = classify_update(&old, &new);
    assert_eq!(kind, UpdateKind::HyperParameter);
    let cost = update_cost(kind, 50);
    let plan = BlueGreenPlan::plan(50, 14.0, 10_000.0, &Assumptions::paper());
    // The blue-green respin cost is the same metal-mask respin.
    assert_eq!(cost, plan.respin_cost);
}

#[test]
fn packet_sim_and_analytical_agree_through_the_facade_config() {
    let system = hnlpu::HnlpuSystem::design(zoo::gpt_oss_120b());
    let cfg = system.engine().config.clone();
    let des = PacketSim::new(cfg.clone(), 2048).steady_state_throughput(400);
    let analytical = pipeline::decode_throughput(&cfg, 2048);
    let ratio = des / analytical;
    assert!((0.8..1.3).contains(&ratio), "ratio = {ratio:.3}");
}

#[test]
fn workload_energy_end_to_end() {
    let cfg = SimConfig::paper_default();
    let spec = WorkloadSpec {
        kind: WorkloadKind::Chat,
        requests: 800,
        arrivals_per_s: 1500.0,
        seed: 3,
    };
    let report = BatchScheduler::new(cfg, spec.nominal_context()).run(&spec.generate());
    let energy = SystemPowerModel::paper_default().workload_energy(&report);
    // Near saturation, tokens cost close to the Table 2 1/36 J each.
    assert!(
        energy.joules_per_token > 0.01 && energy.joules_per_token < 0.1,
        "J/token = {}",
        energy.joules_per_token
    );
}

#[test]
fn conditional_decoding_policies_run_on_both_machines() {
    let card = zoo::dataflow_test_model();
    let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(11));
    let reference = Transformer::new(w.clone());
    let hnlpu = DataflowExecutor::new(w);
    for mk in [
        || Sampler::top_k(4, 0.9, 1234),
        || Sampler::top_p(0.9, 0.9, 1234),
    ] {
        let mut s1 = mk();
        let mut s2 = mk();
        let a = reference.generate(&[5, 6, 7], 10, &mut s1);
        let (b, _) = hnlpu.generate_with_report(&[5, 6, 7], 10, &mut s2);
        assert_eq!(a, b);
    }
}

#[test]
fn imported_config_designs_a_machine() {
    let json = r#"{
        "hidden_size": 4096, "num_hidden_layers": 32,
        "num_attention_heads": 32, "num_key_value_heads": 8,
        "intermediate_size": 14336, "vocab_size": 128256,
        "torch_dtype": "bfloat16"
    }"#;
    let card = hnlpu::model::from_hf_config_json(json, "imported-llama").unwrap();
    let system = hnlpu::HnlpuSystem::design(card);
    assert!(system.decode_throughput(2048) > 10_000.0);
    assert!(system.nre(1).initial_build().mid() > 10.0e6);
}
