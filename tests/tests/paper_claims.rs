//! The paper's headline claims, asserted end-to-end with explicit
//! tolerances. These are the abstract's numbers.

use hnlpu::experiments;
use hnlpu::model::zoo;
use hnlpu::tco::{DeploymentScale, UpdatePolicy};
use hnlpu::HnlpuSystem;

fn within(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() / expected.abs() <= tol,
        "{what}: expected {expected}, got {actual} (tolerance {:.0}%)",
        tol * 100.0
    );
}

#[test]
fn abstract_claim_throughput_249960_tokens_per_s() {
    let s = HnlpuSystem::design(zoo::gpt_oss_120b());
    within(s.decode_throughput(2048), 249_960.0, 0.06, "throughput");
}

#[test]
fn abstract_claim_5555x_gpu_85x_wse() {
    let s = HnlpuSystem::design(zoo::gpt_oss_120b());
    let rows = s.table2(2048);
    within(
        rows[0].throughput_tokens_per_s / rows[1].throughput_tokens_per_s,
        5_555.0,
        0.07,
        "throughput vs H100",
    );
    within(
        rows[0].throughput_tokens_per_s / rows[2].throughput_tokens_per_s,
        85.0,
        0.07,
        "throughput vs WSE-3",
    );
}

#[test]
fn abstract_claim_36_tokens_per_joule() {
    let s = HnlpuSystem::design(zoo::gpt_oss_120b());
    let tpj = s.decode_throughput(2048) / s.system_power_w();
    within(tpj, 36.0, 0.08, "tokens/J");
}

#[test]
fn abstract_claim_13232_mm2_die_area() {
    let s = HnlpuSystem::design(zoo::gpt_oss_120b());
    within(s.silicon_mm2(), 13_232.0, 0.05, "total silicon");
}

#[test]
fn abstract_claim_nre_59m_to_123m() {
    let s = HnlpuSystem::design(zoo::gpt_oss_120b());
    let nre = s.nre(1).initial_build();
    within(nre.low, 59.46e6 - 0.21e6, 0.02, "NRE low");
    within(nre.high, 123.5e6 - 0.21e6, 0.02, "NRE high");
}

#[test]
fn abstract_claim_15x_density_and_112x_masks() {
    let claims = experiments::claims();
    let get = |name: &str| {
        claims
            .metrics
            .iter()
            .find(|m| m.name.contains(name))
            .unwrap_or_else(|| panic!("missing {name}"))
            .measured
    };
    within(get("density increase"), 15.0, 0.15, "density");
    within(get("area saving"), 93.4, 0.02, "area saving");
    within(
        get("photomask cost reduction"),
        112.0,
        0.25,
        "mask reduction",
    );
    within(get("initial tapeout saving"), 86.5, 0.02, "initial saving");
    within(get("re-spin saving"), 92.3, 0.01, "re-spin saving");
}

#[test]
fn abstract_claim_41_7x_to_80_4x_tco() {
    let s = HnlpuSystem::design(zoo::gpt_oss_120b());
    let (lo, hi) = s
        .table3(DeploymentScale::High)
        .tco_advantage(UpdatePolicy::AnnualUpdates);
    within(lo, 41.7, 0.06, "TCO advantage low bound");
    within(hi, 80.4, 0.06, "TCO advantage high bound");
}

#[test]
fn abstract_claim_357x_carbon() {
    let s = HnlpuSystem::design(zoo::gpt_oss_120b());
    let f = s
        .table3(DeploymentScale::Low)
        .carbon_advantage(UpdatePolicy::AnnualUpdates);
    within(f, 357.0, 0.06, "carbon advantage");
}

#[test]
fn figure14_full_curve_reproduces() {
    for m in experiments::fig14().metrics {
        assert!(
            (m.measured - m.paper).abs() < 3.0,
            "{}: paper {} vs measured {:.1} (±3 points)",
            m.name,
            m.paper,
            m.measured
        );
    }
}

#[test]
fn section_7_1_signoff_is_clean() {
    let report = experiments::signoff_report();
    for m in &report.metrics {
        if m.name.contains("(1=yes)") {
            assert_eq!(m.measured, 1.0, "{} failed", m.name);
        }
    }
}
