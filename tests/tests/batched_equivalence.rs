//! Differential harness for the batched inference engine.
//!
//! The batched engine executes the exact per-round slot schedule that
//! `hnlpu-sim`'s continuous-batching scheduler prices, so every property
//! here is a three-way agreement check: for arbitrary mixes of prompts,
//! decode budgets, and arrival times, the batched token streams must be
//! identical to running [`DataflowExecutor`] per sequence and to the
//! single-device [`Transformer`], and the batch communication counters
//! must equal the sum of the per-sequence counters.
//!
//! Run with rayon on (default) and off:
//! `cargo test -p hnlpu-integration --test batched_equivalence` and the
//! same with `--no-default-features` — the streams are bit-exact either
//! way because sequences share no arithmetic.

use hnlpu::llm::{
    BatchedDataflowExecutor, CommCounters, DataflowExecutor, Sampler, SequenceRequest, Transformer,
};
use hnlpu::model::{zoo, ModelWeights, WeightGenerator};
use hnlpu::sim::{BatchScheduler, SimConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One materialization serves every case (weights are deterministic).
fn machines() -> &'static (BatchedDataflowExecutor, Transformer) {
    static MACHINES: OnceLock<(BatchedDataflowExecutor, Transformer)> = OnceLock::new();
    MACHINES.get_or_init(|| {
        let card = zoo::dataflow_test_model();
        let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(2026));
        (
            BatchedDataflowExecutor::new(DataflowExecutor::new(w.clone()), 216),
            Transformer::new(w),
        )
    })
}

fn scheduler() -> BatchScheduler {
    BatchScheduler::new(SimConfig::paper_default(), 2048)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched greedy streams equal per-sequence `DataflowExecutor` runs
    /// and the single-device reference, token for token.
    #[test]
    fn batched_greedy_matches_per_sequence_engines(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..6), 0u32..8),
            1..5,
        ),
    ) {
        let (engine, reference) = machines();
        let requests: Vec<SequenceRequest> = specs
            .iter()
            .map(|(prompt, decode)| SequenceRequest::greedy(0, prompt.clone(), *decode))
            .collect();
        let (report, _) = engine
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        prop_assert_eq!(report.outputs.len(), requests.len());
        for (r, out) in requests.iter().zip(&report.outputs) {
            let n = r.decode_tokens as usize;
            prop_assert_eq!(&engine.executor().generate_greedy(&r.prompt, n), out);
            prop_assert_eq!(&reference.generate_greedy(&r.prompt, n), out);
        }
    }

    /// Batch `CommCounters` are exactly the sum of per-sequence counters,
    /// and each per-sequence counter matches a solo run.
    #[test]
    fn batch_comm_counters_are_additive(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..6), 0u32..8),
            1..5,
        ),
    ) {
        let (engine, _) = machines();
        let requests: Vec<SequenceRequest> = specs
            .iter()
            .map(|(prompt, decode)| SequenceRequest::greedy(0, prompt.clone(), *decode))
            .collect();
        let (report, _) = engine
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        let mut total = CommCounters::default();
        for (r, &per) in requests.iter().zip(&report.per_sequence_comm) {
            let (_, solo) = engine.executor().generate_with_report(
                &r.prompt,
                r.decode_tokens as usize,
                &mut Sampler::Greedy,
            );
            prop_assert_eq!(solo, per);
            total += per;
        }
        prop_assert_eq!(report.comm, total);
    }

    /// Staggered arrivals change the schedule (admission rounds, slot
    /// reuse) but never the token streams.
    #[test]
    fn arrival_times_do_not_change_tokens(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..5), 1u32..6, 0u64..5_000_000),
            1..4,
        ),
    ) {
        let (engine, _) = machines();
        let requests: Vec<SequenceRequest> = specs
            .iter()
            .map(|(prompt, decode, arrival)| {
                SequenceRequest::greedy(*arrival, prompt.clone(), *decode)
            })
            .collect();
        let (report, timing) = engine
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        prop_assert_eq!(timing.completions.len(), requests.len());
        for (r, out) in requests.iter().zip(&report.outputs) {
            let n = r.decode_tokens as usize;
            prop_assert_eq!(&engine.executor().generate_greedy(&r.prompt, n), out);
        }
    }

    /// Seeded multinomial sampling agrees between batched and solo runs:
    /// the schedule may interleave sequences arbitrarily, but each
    /// sequence's sampler consumes the same logits in the same order.
    #[test]
    fn batched_sampled_streams_match_solo_runs(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..5), 1u32..6, 0u64..10_000),
            1..4,
        ),
    ) {
        let (engine, _) = machines();
        let requests: Vec<SequenceRequest> = specs
            .iter()
            .map(|(prompt, decode, seed)| SequenceRequest {
                arrival_s_micros: 0,
                prompt: prompt.clone(),
                decode_tokens: *decode,
                sampler: Sampler::multinomial(0.8, *seed),
            })
            .collect();
        let (report, _) = engine
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        for (r, out) in requests.iter().zip(&report.outputs) {
            let (solo, _) = engine.executor().generate_with_report(
                &r.prompt,
                r.decode_tokens as usize,
                &mut r.sampler.clone(),
            );
            prop_assert_eq!(&solo, out);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `BatchRunReport` accounting under mixed prefill/decode rounds:
    /// token totals are exactly conserved (every prompt prefilled once,
    /// every requested decode token produced once), the round count
    /// equals the plan length, and the per-round plan tallies reconcile
    /// with the aggregate counters. Holds identically under rayon and
    /// the `--no-default-features` serial build (CI runs both).
    #[test]
    fn run_report_accounting_is_conserved(
        specs in prop::collection::vec(
            (prop::collection::vec(0u32..128, 1..6), 0u32..8, 0u64..4_000_000),
            1..6,
        ),
    ) {
        let (engine, _) = machines();
        let requests: Vec<SequenceRequest> = specs
            .iter()
            .map(|(prompt, decode, arrival)| {
                SequenceRequest::greedy(*arrival, prompt.clone(), *decode)
            })
            .collect();
        let sim_reqs: Vec<_> = requests
            .iter()
            .map(SequenceRequest::to_sim_request)
            .collect();
        let (_, plans) = scheduler().plan(&sim_reqs);
        let report = engine.execute_plan(&requests, &plans).expect("plan executes");

        // Rounds executed == rounds planned.
        prop_assert_eq!(report.rounds, plans.len() as u64);
        // Output streams conserve the decode budget exactly.
        let want_decode: u64 = requests.iter().map(|r| r.decode_tokens as u64).sum();
        let got_decode: u64 = report.outputs.iter().map(|o| o.len() as u64).sum();
        prop_assert_eq!(got_decode, want_decode);
        prop_assert_eq!(report.decoded_tokens, want_decode);
        // Every prompt token is prefilled exactly once.
        let want_prefill: u64 = requests.iter().map(|r| r.prompt.len() as u64).sum();
        prop_assert_eq!(report.prefill_tokens, want_prefill);
        // The plan's own per-round tallies reconcile with the aggregates.
        let plan_prefill: u64 = plans
            .iter()
            .flat_map(|p| p.prefill.iter().map(|&(_, n)| n as u64))
            .sum();
        let plan_decode: u64 = plans.iter().map(|p| p.decode.len() as u64).sum();
        prop_assert_eq!(plan_prefill, want_prefill);
        prop_assert_eq!(plan_decode, want_decode);
        // Residency stays within the machine.
        prop_assert!(report.peak_resident <= scheduler().slots());
        prop_assert!(report.peak_resident <= requests.len());
    }
}

/// Accounting specifically across rounds that mix prefill and decode:
/// a late arrival prefills while an early sequence is mid-decode, and
/// the aggregate counters still reconcile with the per-round plans.
#[test]
fn accounting_reconciles_across_mixed_rounds() {
    let (engine, _) = machines();
    // First request decodes for many rounds; the second arrives early
    // enough to prefill during them.
    let requests = vec![
        SequenceRequest::greedy(0, vec![3, 1, 4], 24),
        SequenceRequest::greedy(1_000, vec![1, 5, 9, 2, 6], 8),
    ];
    let sim_reqs: Vec<_> = requests
        .iter()
        .map(SequenceRequest::to_sim_request)
        .collect();
    let (_, plans) = scheduler().plan(&sim_reqs);
    // The schedule really does mix: some round both prefills and decodes.
    assert!(
        plans
            .iter()
            .any(|p| !p.prefill.is_empty() && !p.decode.is_empty()),
        "expected at least one mixed prefill/decode round"
    );
    let report = engine
        .execute_plan(&requests, &plans)
        .expect("plan executes");
    assert_eq!(report.rounds, plans.len() as u64);
    assert_eq!(report.decoded_tokens, 24 + 8);
    assert_eq!(report.prefill_tokens, 3 + 5);
    assert_eq!(report.outputs[0].len(), 24);
    assert_eq!(report.outputs[1].len(), 8);
    assert_eq!(report.peak_resident, 2);
    // Streams are unchanged by the interleaving.
    for (r, out) in requests.iter().zip(&report.outputs) {
        assert_eq!(
            &engine
                .executor()
                .generate_greedy(&r.prompt, r.decode_tokens as usize),
            out
        );
    }
}

/// The functional engine's accounting agrees with the timing model's for
/// the shared schedule: same decode/prefill token totals, and residency
/// bounded by the machine's slot count.
#[test]
fn functional_and_timing_accounting_agree() {
    let (engine, _) = machines();
    let requests: Vec<SequenceRequest> = (0..6)
        .map(|i| SequenceRequest::greedy(i as u64 * 1_000, vec![1 + i as u32, 2, 3], 4))
        .collect();
    let (report, timing) = engine
        .run_with_scheduler(&requests, &scheduler())
        .expect("plan executes");
    assert_eq!(report.decoded_tokens, timing.decoded_tokens);
    assert_eq!(report.prefill_tokens, timing.prefill_tokens);
    assert!(report.peak_resident <= scheduler().slots());
    assert!(report.wall_s > 0.0);
    assert!(report.measured_decode_tokens_per_s() > 0.0);
}
