//! FIG12 — embedding-methodology area comparison (CE 14.3x / SRAM 1x /
//! ME 0.95x), regenerated and benchmarked per methodology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnlpu::circuit::TechNode;
use hnlpu::embed::{TileDesign, TileMethod};
use hnlpu::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig12().render_markdown());
    let tech = TechNode::n5();
    let mut g = c.benchmark_group("fig12/tile_area");
    for method in [
        TileMethod::MacArray,
        TileMethod::CellEmbedding,
        TileMethod::MetalEmbedding,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &m| b.iter(|| TileDesign::paper(m).area_mm2(std::hint::black_box(&tech))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
