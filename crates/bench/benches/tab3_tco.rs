//! TAB3 — 3-year TCO and carbon analysis, regenerated and benchmarked at
//! both deployment scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnlpu::experiments;
use hnlpu::tco::{DeploymentScale, Table3};

fn bench(c: &mut Criterion) {
    println!("{}", experiments::tab3().render_markdown());
    let mut g = c.benchmark_group("tab3/tco");
    for (scale, name) in [
        (DeploymentScale::Low, "low"),
        (DeploymentScale::High, "high"),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scale, |b, &s| {
            b.iter(|| Table3::paper(std::hint::black_box(s)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
