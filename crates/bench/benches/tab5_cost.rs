//! TAB5 — the HNLPU cost breakdown (masks, wafers, design, build/re-spin
//! scenarios), regenerated and benchmarked, plus the headline §3 claims.

use criterion::{criterion_group, criterion_main, Criterion};
use hnlpu::experiments;
use hnlpu::litho::nre::{NreScenario, NreSummary};

fn bench(c: &mut Criterion) {
    println!("{}", experiments::tab5().render_markdown());
    println!("{}", experiments::claims().render_markdown());
    println!("{}", experiments::signoff_report().render_markdown());
    c.bench_function("tab5/nre_scenario", |b| {
        b.iter(|| NreSummary::price(std::hint::black_box(NreScenario::gpt_oss(50))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
