//! Ablation benches for the design choices DESIGN.md calls out:
//! the ME scan factor (area-vs-latency), the CXL link parameters
//! (the §8 interconnect-bottleneck discussion), the provisioning slack,
//! and batch scaling through the continuous-batching scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnlpu::circuit::TechNode;
use hnlpu::embed::array::{me_neuron_budget, HnArrayPlan, MeNeuronParams};
use hnlpu::model::zoo;
use hnlpu::sim::{pipeline, BatchScheduler, PacketSim, SimConfig, WorkloadKind, WorkloadSpec};

fn scan_factor_ablation(c: &mut Criterion) {
    let cfg = zoo::gpt_oss_120b().config;
    let tech = TechNode::n5();
    println!("\n=== ablation: ME scan factor (area vs projection latency) ===");
    println!("{:>6} {:>14} {:>10}", "scan", "HN array mm²", "proj cyc");
    let mut g = c.benchmark_group("ablation/scan_factor");
    g.sample_size(10);
    for scan in [1u32, 4, 10, 16] {
        let mut p = MeNeuronParams::array_default();
        p.scan_factor = scan;
        let plan = HnArrayPlan::plan(&cfg, 16, p);
        println!(
            "{:>6} {:>14.1} {:>10}",
            scan,
            plan.area_mm2(&tech),
            plan.projection_cycles()
        );
        g.bench_with_input(BenchmarkId::from_parameter(scan), &p, |b, &p| {
            b.iter(|| HnArrayPlan::plan(std::hint::black_box(&cfg), 16, p))
        });
    }
    g.finish();
}

fn slack_ablation(c: &mut Criterion) {
    println!("\n=== ablation: POPCNT provisioning slack (per-neuron transistors) ===");
    println!("{:>6} {:>14}", "slack", "Tr per weight");
    let mut g = c.benchmark_group("ablation/slack");
    for slack in [1.0f64, 1.25, 1.5, 2.0] {
        let mut p = MeNeuronParams::array_default();
        p.slack = slack;
        let b0 = me_neuron_budget(2880, &p);
        println!(
            "{:>6.2} {:>14.2}",
            slack,
            b0.transistor_count() as f64 / 2880.0
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{slack:.2}")),
            &p,
            |b, p| b.iter(|| me_neuron_budget(std::hint::black_box(2880), p)),
        );
    }
    g.finish();
}

fn interconnect_ablation(c: &mut Criterion) {
    println!("\n=== ablation: interconnect (the §8 wafer-scale discussion) ===");
    println!("{:>22} {:>16}", "link", "decode tokens/s");
    let mut g = c.benchmark_group("ablation/interconnect");
    let variants: [(&str, f64, f64, f64); 4] = [
        ("CXL 3.0 (paper)", 100.0, 190.0, 128e9),
        ("NVLink-class", 50.0, 60.0, 450e9),
        ("wafer-scale", 10.0, 10.0, 2e12),
        ("ethernet-ish", 1000.0, 2000.0, 50e9),
    ];
    for (name, lat, proto, bw) in variants {
        let mut cfg = SimConfig::paper_default();
        cfg.cxl.latency_ns = lat;
        cfg.cxl.protocol_ns = proto;
        cfg.cxl.bandwidth_bytes_per_s = bw;
        println!(
            "{:>22} {:>16.0}",
            name,
            pipeline::decode_throughput(&cfg, 2048)
        );
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| pipeline::decode_throughput(std::hint::black_box(cfg), 2048))
        });
    }
    g.finish();
}

fn scheduler_scaling(c: &mut Criterion) {
    println!("\n=== ablation: workload mixes through continuous batching ===");
    let mut g = c.benchmark_group("ablation/scheduler");
    g.sample_size(10);
    for kind in [
        WorkloadKind::Chat,
        WorkloadKind::RagLongContext,
        WorkloadKind::OfflineBatch,
    ] {
        let spec = WorkloadSpec {
            kind,
            requests: 500,
            arrivals_per_s: 800.0,
            seed: 9,
        };
        let reqs = spec.generate();
        let sched = BatchScheduler::new(SimConfig::paper_default(), spec.nominal_context());
        let rep = sched.run(&reqs);
        println!(
            "{:>16?}: {:>12.0} tokens/s at occupancy {:.2}",
            kind, rep.throughput_tokens_per_s, rep.mean_occupancy
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &reqs,
            |b, reqs| b.iter(|| sched.run(std::hint::black_box(reqs))),
        );
    }
    g.finish();
}

fn precision_ablation(c: &mut Criterion) {
    use hnlpu::embed::precision_sweep;
    println!("\n=== ablation: weight precision (ME regions = 2^bits) ===");
    println!("{:>6} {:>9} {:>16}", "bits", "regions", "Tr per weight");
    let p = MeNeuronParams::array_default();
    for pt in precision_sweep(&p) {
        println!(
            "{:>6} {:>9} {:>16.1}",
            pt.weight_bits, pt.regions, pt.transistors_per_weight
        );
    }
    c.bench_function("ablation/precision_sweep", |b| {
        b.iter(|| precision_sweep(std::hint::black_box(&p)))
    });
}

fn kv_precision_ablation(c: &mut Criterion) {
    use hnlpu::sim::Breakdown;
    println!("\n=== ablation: KV precision (stall onset vs bytes/token) ===");
    for (label, bytes) in [("fp8 KV (paper)", 256u64), ("fp16 KV", 512)] {
        let mut cfg = SimConfig::paper_default();
        cfg.kv_bytes_per_token_layer_chip = bytes;
        let b256 = Breakdown::at(&cfg, 262_144);
        let b512 = Breakdown::at(&cfg, 524_288);
        println!(
            "{label}: stall share 256K = {:.1}%, 512K = {:.1}%",
            b256.shares[4], b512.shares[4]
        );
    }
    let cfg = SimConfig::paper_default();
    c.bench_function("ablation/kv_breakdown", |b| {
        b.iter(|| Breakdown::at(std::hint::black_box(&cfg), 524_288))
    });
}

fn packet_vs_analytical(c: &mut Criterion) {
    println!("\n=== packet-level DES vs analytical model ===");
    let cfg = SimConfig::paper_default();
    for ctx in [2048u64, 65_536, 262_144] {
        let analytical = pipeline::decode_throughput(&cfg, ctx);
        let des = PacketSim::new(cfg.clone(), ctx).steady_state_throughput(200);
        println!(
            "ctx {:>7}: analytical {:>10.0}  DES {:>10.0}  ratio {:.3}",
            ctx,
            analytical,
            des,
            des / analytical
        );
    }
    let mut g = c.benchmark_group("ablation/packet_sim");
    g.sample_size(10);
    g.bench_function("des_200_tokens_2k", |b| {
        let sim = PacketSim::new(SimConfig::paper_default(), 2048);
        b.iter(|| sim.run(std::hint::black_box(200)))
    });
    g.finish();
}

criterion_group!(
    benches,
    scan_factor_ablation,
    slack_ablation,
    precision_ablation,
    kv_precision_ablation,
    interconnect_ablation,
    scheduler_scaling,
    packet_vs_analytical
);
criterion_main!(benches);
