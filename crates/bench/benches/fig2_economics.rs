//! FIG2 — the economics of hardwiring: regenerates the Figure 2 comparison
//! (GPU mask amortization vs the $6 B straightforward hardwired LLM) and
//! benchmarks the Sea-of-Neurons cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use hnlpu::experiments;
use hnlpu::litho::SeaOfNeurons;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig2().render_markdown());
    c.bench_function("fig2/sea_of_neurons_plan", |b| {
        let son = SeaOfNeurons::n5();
        b.iter(|| son.plan(std::hint::black_box(16)).initial())
    });
    c.bench_function("fig2/full_report", |b| b.iter(experiments::fig2));
}

criterion_group!(benches, bench);
criterion_main!(benches);
