//! Inference hot-path benchmarks: packed region-accumulation engines vs
//! the dense-`f32` naive baseline. The suite itself lives in
//! `hnlpu_bench::inference` so the `bench_baseline` example can emit the
//! same measurements as a committed JSON baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use hnlpu_bench::inference::inference_suite;

fn bench(c: &mut Criterion) {
    inference_suite(c);
}

criterion_group!(benches, bench);
criterion_main!(benches);
