//! TAB4 — chip NRE prices across the model zoo, regenerated and benchmarked
//! per model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnlpu::experiments;
use hnlpu::litho::nre::model_nre_price;
use hnlpu::model::zoo;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::tab4().render_markdown());
    let mut g = c.benchmark_group("tab4/model_nre");
    for card in zoo::all_models() {
        g.bench_with_input(BenchmarkId::from_parameter(card.name), &card, |b, card| {
            b.iter(|| model_nre_price(std::hint::black_box(card)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
