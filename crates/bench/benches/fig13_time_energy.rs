//! FIG13 — embedding-methodology execution cycles and energy, regenerated
//! and benchmarked, including the bit-exact functional execution path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnlpu::circuit::TechNode;
use hnlpu::embed::{TileDesign, TileMethod};
use hnlpu::experiments;
use hnlpu::model::Fp4;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig13().render_markdown());
    let tech = TechNode::n5();
    let mut g = c.benchmark_group("fig13/tile_energy");
    for method in [
        TileMethod::MacArray,
        TileMethod::CellEmbedding,
        TileMethod::MetalEmbedding,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &m| b.iter(|| TileDesign::paper(m).energy_j(std::hint::black_box(&tech))),
        );
    }
    g.finish();

    // Functional GEMV through each methodology (a smaller tile so the
    // bit-exact path stays fast).
    let mut g = c.benchmark_group("fig13/functional_gemv_64x8");
    g.sample_size(20);
    let weights: Vec<Fp4> = (0..64 * 8)
        .map(|i| Fp4::from_code((i % 16) as u8))
        .collect();
    let x: Vec<i32> = (0i32..64).map(|i| (i % 255) - 127).collect();
    for method in [
        TileMethod::MacArray,
        TileMethod::CellEmbedding,
        TileMethod::MetalEmbedding,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &m| {
                let mut d = TileDesign::paper(m);
                d.rows = 64;
                d.cols = 8;
                b.iter(|| d.execute(std::hint::black_box(&weights), std::hint::black_box(&x)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
