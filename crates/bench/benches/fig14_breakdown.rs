//! FIG14 — execution-time breakdown across context lengths, regenerated and
//! benchmarked per context point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnlpu::experiments;
use hnlpu::sim::{Breakdown, SimConfig};

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig14().render_markdown());
    let cfg = SimConfig::paper_default();
    let mut g = c.benchmark_group("fig14/breakdown");
    for ctx in [2048u64, 8192, 65_536, 131_072, 262_144, 524_288] {
        g.bench_with_input(BenchmarkId::from_parameter(ctx), &ctx, |b, &ctx| {
            b.iter(|| Breakdown::at(std::hint::black_box(&cfg), ctx))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
