//! TAB1 — single-chip area/power breakdown, regenerated and benchmarked
//! (the full HN-array planning pass over all 36 layers).

use criterion::{criterion_group, criterion_main, Criterion};
use hnlpu::circuit::TechNode;
use hnlpu::embed::array::{HnArrayPlan, MeNeuronParams};
use hnlpu::embed::ChipReport;
use hnlpu::experiments;
use hnlpu::model::zoo;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::tab1().render_markdown());
    let cfg = zoo::gpt_oss_120b().config;
    let tech = TechNode::n5();
    c.bench_function("tab1/hn_array_plan", |b| {
        b.iter(|| {
            HnArrayPlan::plan(
                std::hint::black_box(&cfg),
                16,
                MeNeuronParams::array_default(),
            )
        })
    });
    c.bench_function("tab1/chip_report", |b| {
        b.iter(|| ChipReport::paper(std::hint::black_box(&cfg), &tech))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
