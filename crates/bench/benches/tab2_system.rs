//! TAB2 — system-level performance comparison, regenerated and benchmarked
//! (full system design + the cycle-level throughput model).

use criterion::{criterion_group, criterion_main, Criterion};
use hnlpu::experiments;
use hnlpu::model::zoo;
use hnlpu::HnlpuSystem;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::tab2().render_markdown());
    c.bench_function("tab2/design_full_system", |b| {
        b.iter(|| HnlpuSystem::design(std::hint::black_box(zoo::gpt_oss_120b())))
    });
    let system = HnlpuSystem::design(zoo::gpt_oss_120b());
    c.bench_function("tab2/decode_throughput", |b| {
        b.iter(|| system.decode_throughput(std::hint::black_box(2048)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
