//! End-to-end inference benchmarks: the packed region-accumulation hot
//! path against the dense-`f32` naive baseline, on
//! `zoo::dataflow_test_model`.
//!
//! The suite is shared between the `inference` `[[bench]]` target (human
//! runs) and the `bench_baseline` example (which renders the recorded
//! results into the committed `BENCH_inference.json`). Set the
//! [`QUICK_ENV`] environment variable to any value for a fast smoke-test
//! configuration (CI uses this).

use criterion::{black_box, Criterion};
use hnlpu::llm::{
    kernels, tensor, BatchedDataflowExecutor, DataflowExecutor, NaiveTransformer, PageBuf,
    PrefixCache, PrefixCacheConfig, Sampler, SequenceRequest, Transformer,
};
use hnlpu::model::{zoo, Fp4, ModelWeights, PackedFp4Matrix, WeightGenerator};
use hnlpu::sim::{BatchScheduler, SimConfig};

/// Environment variable switching the suite to a fast smoke-test run.
pub const QUICK_ENV: &str = "HNLPU_BENCH_QUICK";

/// Tokens processed per iteration of the prefill benchmarks.
pub const PREFILL_TOKENS: usize = 32;

/// Tokens decoded per iteration of the decode benchmarks.
pub const DECODE_TOKENS: usize = 32;

/// Prompt length of the prefill-throughput sweep (one full
/// `MAX_PREFILL_PANEL` at the widest setting).
pub const PREFILL_MATMUL_TOKENS: usize = 64;

/// Panel widths the prefill-throughput sweep runs (`prefill_chunked`'s
/// knob); `per_token` is the seed-style `step_with` loop baseline.
pub const PREFILL_PANEL_SWEEP: &[usize] = &[1, 4, 16, 64];

/// Tokens processed per iteration of each labelled benchmark, used to
/// convert mean ns/iter into tokens/s. Benchmarks not listed here (the
/// kernel micro-benchmarks) time one matvec per iteration and have no
/// token interpretation.
pub const TOKENS_PER_ITER: &[(&str, usize)] = &[
    ("inference/prefill/packed", PREFILL_TOKENS),
    ("inference/prefill/naive", PREFILL_TOKENS),
    ("inference/decode/packed", DECODE_TOKENS),
    ("inference/decode/naive", DECODE_TOKENS),
    ("inference/prefill_matmul/per_token", PREFILL_MATMUL_TOKENS),
    ("inference/prefill_matmul/t1", PREFILL_MATMUL_TOKENS),
    ("inference/prefill_matmul/t4", PREFILL_MATMUL_TOKENS),
    ("inference/prefill_matmul/t16", PREFILL_MATMUL_TOKENS),
    ("inference/prefill_matmul/t64", PREFILL_MATMUL_TOKENS),
    // Every sharing level submits the same 512 prompt tokens, so
    // tokens/s here reads as *effective* prefill throughput: the paged
    // radix cache serves matched positions without recomputing them.
    (
        "inference/prefix_prefill/share0",
        PREFIX_PREFILL_SEQS * PREFIX_PREFILL_PROMPT,
    ),
    (
        "inference/prefix_prefill/share50",
        PREFIX_PREFILL_SEQS * PREFIX_PREFILL_PROMPT,
    ),
    (
        "inference/prefix_prefill/share90",
        PREFIX_PREFILL_SEQS * PREFIX_PREFILL_PROMPT,
    ),
];

/// Sequences in the shared-prefix prefill benchmark.
pub const PREFIX_PREFILL_SEQS: usize = 8;

/// Prompt length per sequence in the shared-prefix prefill benchmark.
pub const PREFIX_PREFILL_PROMPT: usize = 64;

/// The sweep's `(label, shared prefix tokens)` points: 0%, 50%, and 90%
/// of the prompt shared across all sequences. Block granularity (16
/// positions) means the 58-token point reuses 48 positions per follower.
pub const PREFIX_PREFILL_SHARES: &[(&str, usize)] =
    &[("share0", 0), ("share50", 32), ("share90", 58)];

const PREFIX: [u32; 4] = [1, 5, 9, 17];

fn quick() -> bool {
    std::env::var_os(QUICK_ENV).is_some()
}

/// The model every benchmark runs: `zoo::dataflow_test_model` materialized
/// from the same seed the differential tests use.
pub fn bench_weights() -> ModelWeights {
    let card = zoo::dataflow_test_model();
    ModelWeights::materialize(&card.config, &WeightGenerator::new(2026))
}

/// The larger model the prefill-throughput sweep runs: same 4×4-mappable
/// family as [`bench_weights`], scaled until projections and experts
/// dominate the step (hidden 256, 2048-entry vocabulary, 16 experts of
/// intermediate 512) so the sweep measures the matmul kernels rather than
/// per-token bookkeeping.
pub fn prefill_bench_weights() -> ModelWeights {
    let mut c = zoo::dataflow_test_model().config;
    c.hidden_size = 256;
    c.vocab_size = 2048;
    c.num_layers = 2;
    c.attention.head_dim = 32;
    c.attention.num_query_heads = 8;
    c.attention.num_kv_heads = 4;
    c.moe.num_experts = 16;
    c.moe.experts_per_token = 4;
    c.moe.intermediate_size = 512;
    ModelWeights::materialize(&c, &WeightGenerator::new(2026))
}

/// Requests of the shared-prefix prefill benchmark: [`PREFIX_PREFILL_SEQS`]
/// prompts of [`PREFIX_PREFILL_PROMPT`] tokens whose first `shared` tokens
/// are identical across sequences. Arrivals are staggered by two virtual
/// seconds so each prompt commits to the radix tree before the next one is
/// matched (virtual idle time costs the engine nothing), and each sequence
/// decodes a single token so prefill dominates the measured work.
pub fn prefix_prefill_requests(vocab: u32, shared: usize) -> Vec<SequenceRequest> {
    (0..PREFIX_PREFILL_SEQS)
        .map(|s| {
            let prompt: Vec<u32> = (0..PREFIX_PREFILL_PROMPT as u32)
                .map(|i| {
                    if (i as usize) < shared {
                        (i * 7 + 1) % vocab
                    } else {
                        (s as u32 * 131 + i * 3 + 17) % vocab
                    }
                })
                .collect();
            SequenceRequest::greedy(s as u64 * 2_000_000, prompt, 1)
        })
        .collect()
}

/// Cache-effectiveness numbers for the committed trajectory point:
/// `(hit_rate, pages_evicted)`. The hit rate comes from the share90
/// workload above; eviction is exercised separately under a deliberately
/// tight page budget (deterministic cold-prefix LRU), since the offline
/// engine itself plans with an unbounded budget.
pub fn prefix_cache_effectiveness() -> (f64, u64) {
    let w = bench_weights();
    let vocab = w.config.vocab_size as u32;
    let engine = BatchedDataflowExecutor::new(DataflowExecutor::new(w), 216)
        .with_prefix_cache(PrefixCacheConfig::default());
    let sched = BatchScheduler::new(SimConfig::paper_default(), 2048);
    let (_, shared) = PREFIX_PREFILL_SHARES[PREFIX_PREFILL_SHARES.len() - 1];
    let run = match engine.run_with_scheduler(&prefix_prefill_requests(vocab, shared), &sched) {
        Ok((run, _)) => run,
        Err(e) => unreachable!("share90 workload executes: {e:?}"),
    };
    let hit_rate = run.prefix.hits as f64 / run.prefix.lookups.max(1) as f64;

    let mut cache = PrefixCache::new(PrefixCacheConfig {
        page_budget: 64,
        ..PrefixCacheConfig::default()
    });
    for s in 0..PREFIX_PREFILL_SEQS {
        let prompt: Vec<u32> = (0..PREFIX_PREFILL_PROMPT as u32)
            .map(|i| (s as u32 * 131 + i * 3 + 17) % vocab)
            .collect();
        let per_block = cache.config().pages_per_block;
        let mut grant = Vec::new();
        cache.commit(
            &prompt,
            |_| vec![PageBuf::placeholder(); per_block],
            &mut grant,
        );
        cache.release_grant(&mut grant);
    }
    (hit_rate, cache.stats().evicted_pages)
}

/// Register the full suite on `c`: prefill and decode for both engines,
/// plus a packed-vs-dense matvec micro-benchmark on a real weight matrix.
pub fn inference_suite(c: &mut Criterion) {
    let samples = if quick() { 2 } else { 20 };
    let w = bench_weights();
    let naive = NaiveTransformer::new(&w);
    let packed = Transformer::new(w.clone());
    let vocab = w.config.vocab_size as u32;
    let prompt: Vec<u32> = (0..PREFILL_TOKENS as u32)
        .map(|i| (i * 7 + 1) % vocab)
        .collect();

    // Prefill: fresh cache, run the whole prompt through.
    let mut g = c.benchmark_group("inference/prefill");
    g.sample_size(samples);
    let mut scratch = packed.new_scratch();
    g.bench_function("packed", |b| {
        b.iter(|| {
            let mut cache = packed.new_cache();
            for &tok in &prompt {
                packed.step_with(black_box(tok), &mut cache, &mut scratch);
            }
            scratch.logits()[0]
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut cache = naive.new_cache();
            let mut logits = Vec::new();
            for &tok in &prompt {
                logits = naive.step(black_box(tok), &mut cache);
            }
            logits[0]
        })
    });
    g.finish();

    // Decode: greedy continuation from a cloned prefix cache, so every
    // iteration decodes the same token positions.
    let mut base = packed.new_cache();
    let mut scratch = packed.new_scratch();
    for &tok in &PREFIX {
        packed.step_with(tok, &mut base, &mut scratch);
    }
    let seed_tok = Sampler::Greedy.sample(scratch.logits());
    let mut naive_base = naive.new_cache();
    let mut naive_logits = Vec::new();
    for &tok in &PREFIX {
        naive_logits = naive.step(tok, &mut naive_base);
    }
    let naive_seed_tok = Sampler::Greedy.sample(&naive_logits);

    let mut g = c.benchmark_group("inference/decode");
    g.sample_size(samples);
    g.bench_function("packed", |b| {
        b.iter(|| {
            let mut cache = base.clone();
            let mut tok = seed_tok;
            for _ in 0..DECODE_TOKENS {
                packed.step_with(black_box(tok), &mut cache, &mut scratch);
                tok = Sampler::Greedy.sample(scratch.logits());
            }
            tok
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut cache = naive_base.clone();
            let mut tok = naive_seed_tok;
            for _ in 0..DECODE_TOKENS {
                let logits = naive.step(black_box(tok), &mut cache);
                tok = Sampler::Greedy.sample(&logits);
            }
            tok
        })
    });
    g.finish();

    // Prefill-throughput sweep on the larger model: one full prompt per
    // iteration, either stepped token by token (the seed loop, which also
    // unembeds every prompt token) or panelled through the matmul
    // kernels at width T. All five produce bit-identical KV and logits.
    let big = prefill_bench_weights();
    let big_model = Transformer::new(big);
    let big_vocab = big_model.config().vocab_size as u32;
    let sweep_prompt: Vec<u32> = (0..PREFILL_MATMUL_TOKENS as u32)
        .map(|i| (i * 7 + 1) % big_vocab)
        .collect();
    let mut scratch = big_model.new_scratch();
    let mut g = c.benchmark_group("inference/prefill_matmul");
    g.sample_size(samples);
    g.bench_function("per_token", |b| {
        b.iter(|| {
            let mut cache = big_model.new_cache();
            for &tok in &sweep_prompt {
                big_model.step_with(black_box(tok), &mut cache, &mut scratch);
            }
            scratch.logits()[0]
        })
    });
    for &panel in PREFILL_PANEL_SWEEP {
        g.bench_function(format!("t{panel}"), |b| {
            b.iter(|| {
                let mut cache = big_model.new_cache();
                big_model.prefill_chunked(
                    black_box(&sweep_prompt),
                    &mut cache,
                    &mut scratch,
                    panel,
                    true,
                );
                scratch.logits()[0]
            })
        });
    }
    g.finish();

    // Shared-prefix prefill sweep: the paged engine with the radix
    // prefix cache runs the same 512 submitted prompt tokens at three
    // sharing levels. At share90 followers reuse 48 of 64 positions, so
    // the engine prefills 176 tokens instead of 512 — the wall-clock
    // ratio against share0 is the trajectory's prefix-reuse headline.
    let paged = BatchedDataflowExecutor::new(DataflowExecutor::new(w.clone()), 216)
        .with_prefix_cache(PrefixCacheConfig::default());
    let sched = BatchScheduler::new(SimConfig::paper_default(), 2048);
    let mut g = c.benchmark_group("inference/prefix_prefill");
    g.sample_size(samples);
    for &(label, shared) in PREFIX_PREFILL_SHARES {
        let requests = prefix_prefill_requests(vocab, shared);
        g.bench_function(label, |b| {
            b.iter(
                || match paged.run_with_scheduler(black_box(&requests), &sched) {
                    Ok((run, _)) => run.prefill_tokens,
                    Err(e) => unreachable!("prefix sweep workload executes: {e:?}"),
                },
            )
        });
    }
    g.finish();

    // Kernel micro-benchmark: one q-projection matvec, packed region
    // accumulation vs dense f32, on the real layer-0 weight matrix.
    let wq = &w.layers[0].wq;
    let dense = wq.to_f32();
    let cols = wq.cols();
    let x: Vec<f32> = (0..wq.rows())
        .map(|i| ((i % 17) as f32 - 8.0) * 0.25)
        .collect();
    let mut out = vec![0.0f32; cols];
    let mut g = c.benchmark_group("inference/matvec_wq");
    g.sample_size(if quick() { 2 } else { 200 });
    g.bench_function("packed", |b| {
        b.iter(|| {
            kernels::matvec_into(black_box(&x), wq, &mut out);
            out[0]
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| tensor::vec_mat(black_box(&x), &dense, cols)[0])
    });
    g.finish();

    // Paper-scale matvec: at gpt-oss-like shapes the dense matrix (33 MB)
    // spills the last-level cache while the packed one (4 MB) does not, so
    // this is where the 8x residency advantage turns into throughput.
    let (rows, cols) = (2880usize, 2880usize);
    let codes: Vec<Fp4> = (0..rows * cols)
        .map(|i| Fp4::from_code((i * 7 + i / cols) as u8 % 16))
        .collect();
    let norm = 1.0 / (rows as f32).sqrt();
    let big = PackedFp4Matrix::from_codes(&codes, rows, cols, norm);
    let big_dense = big.to_f32();
    let x: Vec<f32> = (0..rows)
        .map(|i| ((i % 31) as f32 - 15.0) * 0.125)
        .collect();
    let mut out = vec![0.0f32; cols];
    let mut g = c.benchmark_group("inference/matvec_2880x2880");
    g.sample_size(if quick() { 2 } else { 50 });
    g.bench_function("packed", |b| {
        b.iter(|| {
            kernels::matvec_into(black_box(&x), &big, &mut out);
            out[0]
        })
    });
    // Row-partitioned decode matvec: 2880×2880 (8.3M cells) clears
    // `ROWS_PARALLEL_MIN_WORK`, so with the `parallel` feature and a
    // multi-core host the four fixed splits run on worker threads (on a
    // single core they run inline); the deterministic reduction keeps the
    // output bit-identical either way, so this ratio reads as split
    // overhead on 1-core runners and as speedup on multi-core ones.
    let mut partials = vec![0.0f32; kernels::ROW_SPLITS * cols];
    g.bench_function("rows_parallel", |b| {
        b.iter(|| {
            kernels::matvec_rows_parallel_into(black_box(&x), &big, &mut out, &mut partials);
            out[0]
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| tensor::vec_mat(black_box(&x), &big_dense, cols)[0])
    });
    g.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_records_every_expected_label() {
        std::env::set_var(QUICK_ENV, "1");
        let mut c = Criterion::default();
        inference_suite(&mut c);
        let labels: Vec<&str> = c.results().iter().map(|(l, _)| l.as_str()).collect();
        for (expected, _) in TOKENS_PER_ITER {
            assert!(labels.contains(expected), "missing bench {expected}");
        }
        assert!(labels.contains(&"inference/matvec_wq/packed"));
        assert!(labels.contains(&"inference/matvec_wq/naive"));
        assert!(labels.contains(&"inference/matvec_2880x2880/rows_parallel"));
        assert!(c.results().iter().all(|&(_, ns)| ns > 0.0));
    }

    #[test]
    fn prefix_sweep_is_token_exact_and_saves_2x_prefill_work() {
        // The sweep's acceptance numbers, pinned deterministically: the
        // paged engine streams the dense engine's tokens bit for bit at
        // every sharing level, and at 90% sharing the radix cache cuts
        // prefill matvec work by at least 2x (176 of 512 tokens).
        let w = bench_weights();
        let vocab = w.config.vocab_size as u32;
        let dense = BatchedDataflowExecutor::new(DataflowExecutor::new(w.clone()), 216);
        let paged = BatchedDataflowExecutor::new(DataflowExecutor::new(w), 216)
            .with_prefix_cache(PrefixCacheConfig::default());
        let sched = BatchScheduler::new(SimConfig::paper_default(), 2048);
        let mut work = Vec::new();
        for &(label, shared) in PREFIX_PREFILL_SHARES {
            let reqs = prefix_prefill_requests(vocab, shared);
            let (d, _) = dense.run_with_scheduler(&reqs, &sched).expect("dense");
            let (p, _) = paged.run_with_scheduler(&reqs, &sched).expect("paged");
            assert_eq!(d.outputs, p.outputs, "{label}: token streams diverge");
            assert!(p.prefill_tokens <= d.prefill_tokens, "{label}");
            work.push(p.prefill_tokens);
        }
        assert_eq!(
            work[0],
            (PREFIX_PREFILL_SEQS * PREFIX_PREFILL_PROMPT) as u64
        );
        assert!(
            work[0] >= 2 * work[2],
            "share90 must save >= 2x prefill work: {} vs {}",
            work[0],
            work[2]
        );

        let (hit_rate, evicted) = prefix_cache_effectiveness();
        assert!(
            hit_rate >= (PREFIX_PREFILL_SEQS - 1) as f64 / PREFIX_PREFILL_SEQS as f64,
            "all followers hit the cache, got {hit_rate}"
        );
        assert!(evicted > 0, "tight budget must evict cold prefixes");
    }

    #[test]
    fn prefill_sweep_paths_agree_bitwise() {
        // Every point of the sweep is the same computation: the panelled
        // prefill must reproduce the per-token loop's logits exactly.
        let m = Transformer::new(prefill_bench_weights());
        let vocab = m.config().vocab_size as u32;
        let prompt: Vec<u32> = (0..PREFILL_MATMUL_TOKENS as u32)
            .map(|i| (i * 7 + 1) % vocab)
            .collect();
        let mut scratch = m.new_scratch();
        let mut cache = m.new_cache();
        for &tok in &prompt {
            m.step_with(tok, &mut cache, &mut scratch);
        }
        let want = scratch.logits().to_vec();
        for &panel in PREFILL_PANEL_SWEEP {
            let mut cache = m.new_cache();
            m.prefill_chunked(&prompt, &mut cache, &mut scratch, panel, true);
            assert_eq!(want.as_slice(), scratch.logits(), "panel {panel}");
        }
    }
}
