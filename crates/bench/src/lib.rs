//! Benchmark host crate. Paper-table benches live in `benches/`; the
//! [`inference`] module holds the engine-level suite shared between the
//! `inference` bench target and the `bench_baseline` example.

pub mod inference;
