//! Benchmark host crate. All benches live in `benches/`.
