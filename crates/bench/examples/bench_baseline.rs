//! Emit (or gate on) the committed inference benchmark trajectory.
//!
//! `BENCH_inference.json` holds an append-only **trajectory**: one point
//! per landed performance PR, each with per-benchmark ns/op, tokens/s
//! where the benchmark has a token interpretation, the realized kernel
//! path, and the headline speedup ratios. Default mode runs the full
//! `hnlpu_bench::inference` suite and appends a new point tagged with
//! `--id <tag>` (default `local`); earlier points are never rewritten —
//! only a trailing point with the *same* id is refreshed, so iterating
//! on one PR does not duplicate its point.
//!
//! `--check` is the CI regression gate: it validates the committed
//! trajectory's shape, re-runs the suite (honoring `HNLPU_BENCH_QUICK`),
//! and fails (exit 1) when a measured headline ratio falls below the
//! latest committed point's by more than the tolerance band
//! (`HNLPU_BENCH_TOLERANCE`, default `0.5` — measured must stay above
//! half the committed ratio). Ratios are machine-relative, so the gate
//! holds across runner generations where raw ns/op would not.
//!
//! ```text
//! cargo run --release -p hnlpu-bench --example bench_baseline -- --id pr7
//! cargo run --release -p hnlpu-bench --example bench_baseline -- --check
//! ```

use criterion::Criterion;
use hnlpu::llm::kernels;
use hnlpu_bench::inference::{inference_suite, prefix_cache_effectiveness, TOKENS_PER_ITER};
use serde_json::Value;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
const SCHEMA: &str = "hnlpu-bench/inference/v2";
/// Environment variable overriding the `--check` tolerance band.
const TOLERANCE_ENV: &str = "HNLPU_BENCH_TOLERANCE";
const DEFAULT_TOLERANCE: f64 = 0.5;

/// The headline ratios the trajectory records and `--check` gates on:
/// `(json key, numerator label, denominator label)` — each ratio is
/// `ns(numerator) / ns(denominator)`, i.e. the denominator's speedup.
const RATIOS: &[(&str, &str, &str)] = &[
    (
        "decode_speedup_packed_over_naive",
        "inference/decode/naive",
        "inference/decode/packed",
    ),
    (
        "prefill_matmul_speedup_t16",
        "inference/prefill_matmul/per_token",
        "inference/prefill_matmul/t16",
    ),
    (
        "prefill_matmul_speedup_t64",
        "inference/prefill_matmul/per_token",
        "inference/prefill_matmul/t64",
    ),
    (
        "rows_parallel_speedup_2880",
        "inference/matvec_2880x2880/packed",
        "inference/matvec_2880x2880/rows_parallel",
    ),
    (
        "prefix_prefill_speedup_share90",
        "inference/prefix_prefill/share0",
        "inference/prefix_prefill/share90",
    ),
];

fn tokens_per_iter(label: &str) -> Option<f64> {
    TOKENS_PER_ITER
        .iter()
        .find(|(l, _)| *l == label)
        .map(|&(_, t)| t as f64)
}

fn ns_of(results: &[(String, f64)], label: &str) -> f64 {
    results
        .iter()
        .find(|(l, _)| l == label)
        .map(|&(_, ns)| ns)
        .unwrap_or(f64::NAN)
}

fn measured_ratio(results: &[(String, f64)], key: &str) -> Option<f64> {
    RATIOS
        .iter()
        .find(|(k, _, _)| *k == key)
        .map(|&(_, num, den)| ns_of(results, num) / ns_of(results, den))
}

/// One trajectory point rendered from a suite run.
fn render_point(c: &Criterion, id: &str) -> Value {
    let results = c.results();
    let mut fields: Vec<(String, Value)> = vec![
        ("id".into(), Value::String(id.into())),
        (
            "kernel_path".into(),
            Value::String(kernels::kernel_path().into()),
        ),
    ];
    for &(key, num, den) in RATIOS {
        let ratio = ns_of(results, num) / ns_of(results, den);
        fields.push((key.into(), Value::Number((ratio * 1e3).round() / 1e3)));
    }
    // Cache-effectiveness companions to the prefix-reuse ratio: both are
    // deterministic functions of the workload, not timing measurements.
    let (hit_rate, evicted) = prefix_cache_effectiveness();
    fields.push((
        "prefix_hit_rate".into(),
        Value::Number((hit_rate * 1e3).round() / 1e3),
    ));
    fields.push(("prefix_pages_evicted".into(), Value::Number(evicted as f64)));
    fields.push((
        "raw_ns_per_iter".into(),
        Value::Object(
            results
                .iter()
                .map(|(l, ns)| (l.clone(), Value::Number((ns * 10.0).round() / 10.0)))
                .collect(),
        ),
    ));
    let benches: Vec<(String, Value)> = results
        .iter()
        .map(|(label, ns)| {
            let mut entry: Vec<(String, Value)> = Vec::new();
            match tokens_per_iter(label) {
                Some(toks) => {
                    entry.push((
                        "ns_per_op".into(),
                        Value::Number((ns / toks * 10.0).round() / 10.0),
                    ));
                    entry.push((
                        "tokens_per_s".into(),
                        Value::Number((toks / (ns * 1e-9) * 10.0).round() / 10.0),
                    ));
                }
                None => entry.push((
                    "ns_per_op".into(),
                    Value::Number((ns * 10.0).round() / 10.0),
                )),
            }
            (label.clone(), Value::Object(entry))
        })
        .collect();
    fields.push(("benches".into(), Value::Object(benches)));
    Value::Object(fields)
}

/// Parse the committed file into its trajectory, validating shape.
fn load_trajectory() -> Vec<Value> {
    let text = std::fs::read_to_string(BASELINE_PATH)
        .unwrap_or_else(|e| panic!("cannot read {BASELINE_PATH}: {e}"));
    let v: Value = serde_json::from_str(&text).expect("BENCH_inference.json is not valid JSON");
    assert_eq!(v["schema"], Value::String(SCHEMA.into()), "schema tag");
    let traj = v["trajectory"]
        .as_array()
        .expect("trajectory must be an array");
    assert!(!traj.is_empty(), "trajectory must not be empty");
    for point in traj {
        let id = point["id"].as_str().expect("every point needs an id");
        assert!(
            point["kernel_path"].as_str().is_some(),
            "point {id}: kernel_path must be a string"
        );
        assert!(
            point["decode_speedup_packed_over_naive"].as_f64().is_some(),
            "point {id}: decode speedup must be a number"
        );
        let Some(Value::Object(benches)) = point.get("benches") else {
            panic!("point {id}: benches must be an object");
        };
        assert!(!benches.is_empty(), "point {id}: benches must not be empty");
        for (label, entry) in benches {
            assert!(
                entry["ns_per_op"].as_f64().is_some_and(|ns| ns > 0.0),
                "point {id}: bench {label} needs a positive ns_per_op"
            );
        }
    }
    traj.clone()
}

fn write_trajectory(traj: &[Value]) {
    let doc = Value::Object(vec![
        ("schema".into(), Value::String(SCHEMA.into())),
        ("trajectory".into(), Value::Array(traj.to_vec())),
    ]);
    let mut text = doc.render_pretty();
    text.push('\n');
    std::fs::write(BASELINE_PATH, text)
        .unwrap_or_else(|e| panic!("cannot write {BASELINE_PATH}: {e}"));
}

fn tolerance() -> f64 {
    std::env::var(TOLERANCE_ENV)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// CI gate: structural validation, then measure and compare the headline
/// ratios against the latest committed point.
fn check() {
    let traj = load_trajectory();
    let Some(last) = traj.last() else {
        panic!("trajectory must not be empty");
    };
    let last_id = last["id"].as_str().unwrap_or("?");
    println!(
        "BENCH_inference.json ok: {} trajectory point(s), latest '{last_id}'",
        traj.len()
    );

    let mut c = Criterion::default();
    inference_suite(&mut c);
    let tol = tolerance();
    let mut regressed = false;
    for &(key, _, _) in RATIOS {
        // Older points may predate a ratio; gate only on what the latest
        // committed point actually recorded.
        let Some(committed) = last[key].as_f64() else {
            continue;
        };
        let Some(measured) = measured_ratio(c.results(), key) else {
            continue;
        };
        let floor = committed * tol;
        let verdict = if measured.is_nan() || measured < floor {
            regressed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {key}: measured {measured:.2}x vs committed {committed:.2}x (floor {floor:.2}x) {verdict}"
        );
    }
    if regressed {
        eprintln!(
            "bench regression beyond tolerance {tol} against trajectory point '{last_id}' \
             (override band with {TOLERANCE_ENV})"
        );
        std::process::exit(1);
    }
    println!("bench check passed (tolerance {tol})");
}

fn emit(id: &str) {
    let mut c = Criterion::default();
    inference_suite(&mut c);
    let point = render_point(&c, id);
    // Append-only: existing points are never rewritten, except a trailing
    // point with the same id, which this run refreshes.
    let mut traj = if std::path::Path::new(BASELINE_PATH).exists() {
        load_trajectory()
    } else {
        Vec::new()
    };
    if traj.last().is_some_and(|p| p["id"].as_str() == Some(id)) {
        traj.pop();
    }
    traj.push(point);
    write_trajectory(&traj);
    let decode =
        measured_ratio(c.results(), "decode_speedup_packed_over_naive").unwrap_or(f64::NAN);
    let prefill = measured_ratio(c.results(), "prefill_matmul_speedup_t16").unwrap_or(f64::NAN);
    println!(
        "wrote {BASELINE_PATH}: point '{id}' ({} total), kernel_path={}, \
         decode {decode:.2}x, prefill t16 {prefill:.2}x",
        traj.len(),
        kernels::kernel_path(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--check") {
        check();
        return;
    }
    let id = args
        .iter()
        .position(|a| a == "--id")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("local");
    emit(id);
}
