//! Emit (or verify) the committed inference benchmark baseline.
//!
//! Default mode runs the full `hnlpu_bench::inference` suite and writes
//! `BENCH_inference.json` at the repository root: per-benchmark ns/op,
//! tokens/s where the benchmark has a token interpretation, the realized
//! kernel path, and the headline packed-over-naive decode speedup.
//!
//! `--check` instead parses the committed file and validates its shape —
//! the cheap CI guard that the baseline stays machine-readable.
//!
//! ```text
//! cargo run --release -p hnlpu-bench --example bench_baseline
//! cargo run --release -p hnlpu-bench --example bench_baseline -- --check
//! ```

use criterion::Criterion;
use hnlpu::llm::kernels;
use hnlpu_bench::inference::{inference_suite, TOKENS_PER_ITER};
use serde_json::Value;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
const SCHEMA: &str = "hnlpu-bench/inference/v1";

fn tokens_per_iter(label: &str) -> Option<f64> {
    TOKENS_PER_ITER
        .iter()
        .find(|(l, _)| *l == label)
        .map(|&(_, t)| t as f64)
}

fn render(c: &Criterion) -> String {
    let results = c.results();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"kernel_path\": \"{}\",\n",
        kernels::kernel_path()
    ));
    let speedup = decode_speedup(results);
    out.push_str(&format!(
        "  \"decode_speedup_packed_over_naive\": {speedup:.3},\n"
    ));
    // The shim's own rendering of the raw measurements, label -> ns/iter.
    out.push_str(&format!("  \"raw_ns_per_iter\": {},\n", c.summary_json()));
    out.push_str("  \"benches\": {\n");
    for (i, (label, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        match tokens_per_iter(label) {
            Some(toks) => {
                let ns_per_op = ns / toks;
                let tokens_per_s = toks / (ns * 1e-9);
                out.push_str(&format!(
                    "    \"{label}\": {{ \"ns_per_op\": {ns_per_op:.1}, \"tokens_per_s\": {tokens_per_s:.1} }}{comma}\n"
                ));
            }
            None => {
                out.push_str(&format!(
                    "    \"{label}\": {{ \"ns_per_op\": {ns:.1} }}{comma}\n"
                ));
            }
        }
    }
    out.push_str("  }\n}\n");
    out
}

fn decode_speedup(results: &[(String, f64)]) -> f64 {
    let ns_of = |label: &str| {
        results
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, ns)| ns)
            .unwrap_or(f64::NAN)
    };
    // Same token count on both sides, so the ns ratio is the tokens/s ratio.
    ns_of("inference/decode/naive") / ns_of("inference/decode/packed")
}

fn check() {
    let text = std::fs::read_to_string(BASELINE_PATH)
        .unwrap_or_else(|e| panic!("cannot read {BASELINE_PATH}: {e}"));
    let v: Value = serde_json::from_str(&text).expect("BENCH_inference.json is not valid JSON");
    assert_eq!(v["schema"], SCHEMA, "unexpected schema tag");
    assert!(
        v["kernel_path"].as_str().is_some(),
        "kernel_path must be a string"
    );
    assert!(
        v["decode_speedup_packed_over_naive"].as_f64().is_some(),
        "decode speedup must be a number"
    );
    let Value::Object(raw) = &v["raw_ns_per_iter"] else {
        panic!("raw_ns_per_iter must be an object");
    };
    assert!(!raw.is_empty(), "raw_ns_per_iter must not be empty");
    let Value::Object(benches) = &v["benches"] else {
        panic!("benches must be an object");
    };
    assert!(!benches.is_empty(), "benches must not be empty");
    for (label, entry) in benches {
        assert!(
            entry["ns_per_op"].as_f64().is_some_and(|ns| ns > 0.0),
            "bench {label} needs a positive ns_per_op"
        );
    }
    for (label, _) in TOKENS_PER_ITER {
        assert!(
            v["benches"][*label]["tokens_per_s"]
                .as_f64()
                .is_some_and(|t| t > 0.0),
            "bench {label} needs a positive tokens_per_s"
        );
    }
    println!(
        "BENCH_inference.json ok: {} benches, kernel_path={}, decode speedup {:.2}x",
        benches.len(),
        v["kernel_path"].as_str().unwrap_or("?"),
        v["decode_speedup_packed_over_naive"]
            .as_f64()
            .unwrap_or(f64::NAN)
    );
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
        return;
    }
    let mut c = Criterion::default();
    inference_suite(&mut c);
    let json = render(&c);
    std::fs::write(BASELINE_PATH, &json)
        .unwrap_or_else(|e| panic!("cannot write {BASELINE_PATH}: {e}"));
    println!(
        "wrote {BASELINE_PATH} (kernel_path={}, decode speedup {:.2}x packed over naive)",
        kernels::kernel_path(),
        decode_speedup(c.results())
    );
}
