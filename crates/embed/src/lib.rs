//! Embedding methodologies: MAC-array, Cell-Embedding, and Metal-Embedding.
//!
//! This crate turns the arithmetic substrate into *designs* and reproduces
//! the paper's §3 and §6.3/§7.2 artifacts:
//!
//! * [`region`] — POPCNT accumulator-slice allocation for the prefabricated
//!   Sea-of-Neurons array (slices are weight-independent silicon,
//!   reassigned to weight-value regions through metal).
//! * [`tile`] — the §6.3 benchmark tile (1×1024 · 1024×128 FP4 GEMV) under
//!   the three methodologies: area (Figure 12), cycles and energy
//!   (Figure 13).
//! * [`mod@array`] — the full-chip HN-array plan: per-chip weight placement,
//!   area, power under MoE sparsity, and projection timing for the
//!   cycle-level simulator.
//! * [`compiler`] — the Metal-Embedding compiler: weights → M8–M11 wire
//!   netlist with slice allocation, routing-density verification, and a
//!   TCL-like ECO script (the paper's §3.2 flow).
//! * [`report`] — the single-chip area/power breakdown of Table 1.

#![warn(missing_docs)]
pub mod array;
pub mod compiler;
pub mod field_programmable;
pub mod model_compiler;
pub mod precision;
pub mod region;
pub mod report;
pub mod tile;

pub use array::HnArrayPlan;
pub use compiler::{CompileError, CompiledMatrix, MeCompiler};
pub use field_programmable::SideChannelPlan;
pub use model_compiler::{ModelCompileSummary, ModelCompiler};
pub use precision::{me_neuron_budget_at_precision, precision_sweep, PrecisionPoint};
pub use region::{RegionAllocError, RegionAllocation, SlicePool};
pub use report::{BlockReport, ChipReport};
pub use tile::{TileComparison, TileDesign, TileMethod};
