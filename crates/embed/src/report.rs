//! Single-chip area/power breakdown (Table 1).
//!
//! The two dominant blocks — the HN Array (69% of area) and the Attention
//! Buffer (17%) — are computed bottom-up from the gate/SRAM models. The
//! remaining blocks (VEX, Interconnect Engine, HBM PHY, Control Unit) are
//! standard IP whose internals the paper does not disclose; they are modeled
//! as parameterized IP blocks with the paper's published characteristics as
//! defaults, scaled by link/lane counts when the system geometry changes.

use crate::array::{HnArrayPlan, MeNeuronParams};
use hnlpu_circuit::{attention_buffer, TechNode};
use hnlpu_model::TransformerConfig;

/// One row of the Table 1 breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReport {
    /// Block name as in Table 1.
    pub name: &'static str,
    /// Area, mm².
    pub area_mm2: f64,
    /// Power, watts.
    pub power_w: f64,
}

/// Per-lane / per-link IP characteristics (5 nm, paper-anchored).
mod ip {
    /// VEX area per KV-head processing lane, mm² (32 lanes ≙ 27.87 mm²:
    /// fp16 GEMV slice, nonlinear units, operand collectors).
    pub const VEX_AREA_PER_LANE_MM2: f64 = 27.87 / 32.0;
    /// VEX power per lane at full streaming rate, W.
    pub const VEX_POWER_PER_LANE_W: f64 = 33.09 / 32.0;
    /// Interconnect Engine area per CXL ×16 link, mm² (6 links per chip in
    /// the 4×4 row-column fabric).
    pub const IE_AREA_PER_LINK_MM2: f64 = 37.92 / 6.0;
    /// Interconnect Engine power per link, W.
    pub const IE_POWER_PER_LINK_W: f64 = 49.65 / 6.0;
    /// HBM PHY area per stack, mm² (8 stacks per module).
    pub const HBM_PHY_AREA_PER_STACK_MM2: f64 = 52.0 / 8.0;
    /// HBM PHY power per stack, W.
    pub const HBM_PHY_POWER_PER_STACK_W: f64 = 63.0 / 8.0;
    /// Control unit (scheduling + pipeline sequencing).
    pub const CONTROL_AREA_MM2: f64 = 0.02;
    /// Control unit power.
    pub const CONTROL_POWER_W: f64 = 0.005;
}

/// The full single-chip report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipReport {
    /// Per-block rows, Table 1 order.
    pub blocks: Vec<BlockReport>,
    /// Number of chips in the system this chip belongs to.
    pub num_chips: u32,
}

impl ChipReport {
    /// Plan one HNLPU chip for `cfg` split across `num_chips` chips, with
    /// `kv_lanes` VEX lanes, `links` CXL links, and `hbm_stacks` HBM stacks.
    pub fn plan(
        cfg: &TransformerConfig,
        num_chips: u32,
        tech: &TechNode,
        kv_lanes: u32,
        links: u32,
        hbm_stacks: u32,
    ) -> Self {
        let array = HnArrayPlan::plan(cfg, num_chips, MeNeuronParams::array_default());
        let buffer = attention_buffer();
        // The buffer streams K and V for `kv_lanes` heads per cycle.
        let kv_bytes_per_s = kv_lanes as f64 * 64.0 * 2.0 * tech.clock_hz;
        let blocks = vec![
            BlockReport {
                name: "HN Array",
                area_mm2: array.area_mm2(tech),
                power_w: array.power_w(tech),
            },
            BlockReport {
                name: "VEX",
                area_mm2: ip::VEX_AREA_PER_LANE_MM2 * kv_lanes as f64,
                power_w: ip::VEX_POWER_PER_LANE_W * kv_lanes as f64,
            },
            BlockReport {
                name: "Control Unit",
                area_mm2: ip::CONTROL_AREA_MM2,
                power_w: ip::CONTROL_POWER_W,
            },
            BlockReport {
                name: "Attention Buffer",
                area_mm2: buffer.area_mm2(tech),
                power_w: buffer.power_w(kv_bytes_per_s, tech),
            },
            BlockReport {
                name: "Interconnect Engine",
                area_mm2: ip::IE_AREA_PER_LINK_MM2 * links as f64,
                power_w: ip::IE_POWER_PER_LINK_W * links as f64,
            },
            BlockReport {
                name: "HBM PHY",
                area_mm2: ip::HBM_PHY_AREA_PER_STACK_MM2 * hbm_stacks as f64,
                power_w: ip::HBM_PHY_POWER_PER_STACK_W * hbm_stacks as f64,
            },
        ];
        ChipReport { blocks, num_chips }
    }

    /// The paper's configuration: 16 chips, 32 KV lanes, 6 links, 8 stacks.
    pub fn paper(cfg: &TransformerConfig, tech: &TechNode) -> Self {
        Self::plan(cfg, 16, tech, 32, 6, 8)
    }

    /// The paper configuration plus the §8 LoRA field-programmable
    /// side-channel at `rank`, as an extra block row.
    pub fn paper_with_side_channel(cfg: &TransformerConfig, tech: &TechNode, rank: usize) -> Self {
        let mut report = Self::paper(cfg, tech);
        let sc = crate::field_programmable::SideChannelPlan::plan(cfg, report.num_chips, rank);
        report.blocks.push(BlockReport {
            name: "LoRA Side-Channel",
            area_mm2: sc.area_mm2(tech),
            power_w: sc.power_w(tech),
        });
        report
    }

    /// Total chip area, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.blocks.iter().map(|b| b.area_mm2).sum()
    }

    /// Total chip power, W.
    pub fn total_power_w(&self) -> f64 {
        self.blocks.iter().map(|b| b.power_w).sum()
    }

    /// Total silicon area of the whole multi-chip system, mm².
    pub fn system_area_mm2(&self) -> f64 {
        self.total_area_mm2() * self.num_chips as f64
    }

    /// Total power of all chips, W (chip power only; add HBM devices and
    /// system overheads at the TCO layer).
    pub fn system_chip_power_w(&self) -> f64 {
        self.total_power_w() * self.num_chips as f64
    }

    /// Look up a block by name.
    pub fn block(&self, name: &str) -> Option<&BlockReport> {
        self.blocks.iter().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnlpu_model::zoo;

    fn paper_report() -> ChipReport {
        ChipReport::paper(&zoo::gpt_oss_120b().config, &TechNode::n5())
    }

    #[test]
    fn total_area_matches_table1() {
        // Table 1: 827.08 mm² per chip.
        let a = paper_report().total_area_mm2();
        assert!((a - 827.08).abs() / 827.08 < 0.05, "total area = {a:.2}");
    }

    #[test]
    fn total_power_matches_table1() {
        // Table 1: 308.39 W per chip.
        let p = paper_report().total_power_w();
        assert!((p - 308.39).abs() / 308.39 < 0.05, "total power = {p:.2}");
    }

    #[test]
    fn system_area_matches_table2() {
        // Table 2: 13,232 mm² total silicon over 16 chips.
        let a = paper_report().system_area_mm2();
        assert!(
            (a - 13_232.0).abs() / 13_232.0 < 0.05,
            "system area = {a:.0}"
        );
    }

    #[test]
    fn hn_array_share_is_dominant() {
        // Table 1: HN Array is 69.3% of chip area.
        let r = paper_report();
        let share = r.block("HN Array").unwrap().area_mm2 / r.total_area_mm2();
        assert!((share - 0.693).abs() < 0.04, "share = {share:.3}");
    }

    #[test]
    fn buffer_power_share() {
        // Table 1: Attention Buffer is ~27.8% of chip power.
        let r = paper_report();
        let share = r.block("Attention Buffer").unwrap().power_w / r.total_power_w();
        assert!((share - 0.278).abs() < 0.05, "share = {share:.3}");
    }

    #[test]
    fn block_lookup() {
        let r = paper_report();
        assert!(r.block("VEX").is_some());
        assert!(r.block("GPU").is_none());
    }

    #[test]
    fn side_channel_adds_under_one_percent() {
        let cfg = zoo::gpt_oss_120b().config;
        let t = TechNode::n5();
        let base = ChipReport::paper(&cfg, &t);
        let with = ChipReport::paper_with_side_channel(&cfg, &t, 16);
        let overhead = with.total_area_mm2() / base.total_area_mm2() - 1.0;
        assert!(
            overhead > 0.0 && overhead < 0.01,
            "overhead = {overhead:.4}"
        );
        assert!(with.block("LoRA Side-Channel").is_some());
    }

    #[test]
    fn scaling_lanes_scales_vex() {
        let cfg = zoo::gpt_oss_120b().config;
        let t = TechNode::n5();
        let small = ChipReport::plan(&cfg, 16, &t, 16, 6, 8);
        let big = ChipReport::plan(&cfg, 16, &t, 64, 6, 8);
        let v_small = small.block("VEX").unwrap().area_mm2;
        let v_big = big.block("VEX").unwrap().area_mm2;
        assert!((v_big / v_small - 4.0).abs() < 1e-9);
    }
}
