//! The field-programmable HN side-channel (§8 future work 4).
//!
//! LoRA-style post-deployment updates need ~1% of the array's capacity in
//! *conventional* (SRAM-weighted) MAC lanes: rank-r adapters computing
//! `scale · (x·A)·B` beside the hardwired projections. This module sizes
//! that side-channel — lanes, adapter SRAM, area, and power — so the chip
//! report and the functional `hnlpu_llm::LoraAdapter` stay consistent.

use hnlpu_arith::neuron::MacArray;
use hnlpu_arith::GateBudget;
use hnlpu_circuit::power::{block_power, SwitchingActivity};
use hnlpu_circuit::{logic_area_mm2, sram_macro, TechNode};
use hnlpu_model::TransformerConfig;

/// A planned side-channel for rank-`rank` adapters on every layer's query
/// projection.
#[derive(Debug, Clone, PartialEq)]
pub struct SideChannelPlan {
    /// Adapter rank.
    pub rank: usize,
    /// Adapter parameters stored per chip (fp16 SRAM).
    pub adapter_params_per_chip: u64,
    /// MAC lanes provisioned per chip.
    pub mac_lanes: u32,
    /// Gate budget of the lanes.
    pub budget: GateBudget,
}

impl SideChannelPlan {
    /// Plan a side-channel for `cfg` split over `num_chips` chips.
    ///
    /// Sizing: the adapter matmuls (`x·A`: hidden×rank, then `·B`:
    /// rank×q_width) must finish within one projection interval
    /// (~135 cycles), so lanes ≈ adapter MACs / interval.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or `num_chips == 0`.
    pub fn plan(cfg: &TransformerConfig, num_chips: u32, rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        assert!(num_chips > 0, "need at least one chip");
        let h = cfg.hidden_size as u64;
        let q = cfg.attention.q_width() as u64;
        let params_per_layer = (h + q) * rank as u64;
        let adapter_params_per_chip = params_per_layer * cfg.num_layers as u64 / num_chips as u64;
        // MACs per adapter application, amortized per chip per interval.
        let macs = params_per_layer / num_chips as u64;
        let interval = 135u64;
        let mac_lanes = (macs.div_ceil(interval) as u32).max(8);
        let budget = MacArray::new(mac_lanes as usize, 16).budget();
        SideChannelPlan {
            rank,
            adapter_params_per_chip,
            mac_lanes,
            budget,
        }
    }

    /// Side-channel silicon area per chip (lanes + adapter SRAM), mm².
    pub fn area_mm2(&self, tech: &TechNode) -> f64 {
        let lanes = logic_area_mm2(&self.budget, tech, false);
        let sram = sram_macro(self.adapter_params_per_chip * 2).area_mm2(tech);
        lanes + sram
    }

    /// Side-channel power per chip, watts.
    pub fn power_w(&self, tech: &TechNode) -> f64 {
        block_power(&self.budget, tech, SwitchingActivity::uniform(0.3)).total_w()
    }

    /// Overhead relative to a hardwired-array area (the paper's "~1%"
    /// budget is on capability, i.e. adapter params vs hardwired params).
    pub fn param_overhead_fraction(&self, cfg: &TransformerConfig, num_chips: u32) -> f64 {
        let hardwired_per_chip = (cfg.total_params() - cfg.embedding_params()) / num_chips as u64;
        self.adapter_params_per_chip as f64 / hardwired_per_chip as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnlpu_model::zoo;

    fn plan(rank: usize) -> SideChannelPlan {
        SideChannelPlan::plan(&zoo::gpt_oss_120b().config, 16, rank)
    }

    #[test]
    fn rank_16_is_well_under_one_percent_of_capability() {
        let cfg = zoo::gpt_oss_120b().config;
        let p = plan(16);
        let f = p.param_overhead_fraction(&cfg, 16);
        assert!(f < 0.01, "param overhead = {f}");
    }

    #[test]
    fn area_overhead_is_tiny() {
        // The side-channel must cost well under 1% of the 573 mm² array.
        let p = plan(16);
        let area = p.area_mm2(&TechNode::n5());
        assert!(area < 5.0, "side-channel area = {area:.3} mm²");
    }

    #[test]
    fn power_overhead_is_tiny() {
        let p = plan(16);
        assert!(p.power_w(&TechNode::n5()) < 2.0);
    }

    #[test]
    fn lanes_scale_with_rank() {
        assert!(plan(64).mac_lanes > plan(8).mac_lanes);
        assert!(plan(64).adapter_params_per_chip > plan(8).adapter_params_per_chip);
    }

    #[test]
    fn adapter_params_accounting() {
        // rank 16 on Wq: (2880 + 4096) * 16 * 36 layers / 16 chips.
        let p = plan(16);
        assert_eq!(p.adapter_params_per_chip, (2880 + 4096) * 16 * 36 / 16);
    }
}
