//! Whole-model Metal-Embedding compilation (§8 future work 2: "an
//! automated Hardwired-Neuron Compiler for shortening the delay in the
//! design flow").
//!
//! Small models compile exhaustively; production-scale models (117 B
//! weights would mean ~10¹¹ nets) are *surveyed*: every distinct matrix
//! shape is compiled once per kind and the structural statistics are
//! extrapolated exactly (wire counts and lengths are deterministic
//! functions of shape, and slice allocations depend only on per-neuron
//! histograms whose distribution the survey covers).

use crate::compiler::{CompileError, MeCompiler};
use hnlpu_model::{TransformerConfig, WeightGenerator, WeightMatrix};
use std::collections::BTreeMap;

/// Aggregate compilation statistics for a whole model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCompileSummary {
    /// Matrices actually pushed through the compiler.
    pub matrices_compiled: usize,
    /// Matrices covered by extrapolation from an identically-shaped sample.
    pub matrices_extrapolated: usize,
    /// Total embedding wires across the model (one per hardwired weight).
    pub total_wires: u64,
    /// Total embedding wirelength, µm.
    pub total_wirelength_um: f64,
    /// Worst per-layer routing utilization observed.
    pub worst_peak_utilization: f64,
    /// Total grounded slack ports across compiled matrices (extrapolated).
    pub grounded_ports: u64,
}

/// The model-level compiler driver.
#[derive(Debug, Clone)]
pub struct ModelCompiler {
    /// The per-matrix compiler in use.
    pub compiler: MeCompiler,
}

impl ModelCompiler {
    /// Wrap a matrix compiler.
    pub fn new(compiler: MeCompiler) -> Self {
        ModelCompiler { compiler }
    }

    /// Compile (or survey) every matrix of one layer of `cfg`, then scale
    /// to all layers. Matrices sharing a shape are compiled once per kind
    /// and extrapolated; expert matrices sample `expert_samples` experts.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CompileError`] (a failing shape fails the
    /// whole model — exactly what a real tapeout flow would do).
    pub fn survey(
        &self,
        cfg: &TransformerConfig,
        gen: &WeightGenerator,
        expert_samples: usize,
    ) -> Result<ModelCompileSummary, CompileError> {
        let matrices = cfg.layer_matrices();
        // Group by (kind discriminant excluding expert index, shape).
        let mut groups: BTreeMap<(u8, usize, usize), Vec<WeightMatrix>> = BTreeMap::new();
        for m in matrices {
            let tag = match m.kind {
                hnlpu_model::WeightKind::Query => 0u8,
                hnlpu_model::WeightKind::Key => 1,
                hnlpu_model::WeightKind::Value => 2,
                hnlpu_model::WeightKind::Output => 3,
                hnlpu_model::WeightKind::Router => 4,
                hnlpu_model::WeightKind::ExpertUp { .. } => 5,
                hnlpu_model::WeightKind::ExpertGate { .. } => 6,
                hnlpu_model::WeightKind::ExpertDown { .. } => 7,
            };
            groups.entry((tag, m.rows, m.cols)).or_default().push(m);
        }

        let mut summary = ModelCompileSummary {
            matrices_compiled: 0,
            matrices_extrapolated: 0,
            total_wires: 0,
            total_wirelength_um: 0.0,
            worst_peak_utilization: 0.0,
            grounded_ports: 0,
        };
        for ((tag, _, _), members) in &groups {
            let samples = if *tag >= 5 {
                expert_samples.min(members.len())
            } else {
                1
            };
            let mut sampled_wires = 0u64;
            let mut sampled_len = 0.0f64;
            let mut sampled_grounded = 0u64;
            for m in members.iter().take(samples) {
                let compiled = self.compiler.compile(gen, 0, m)?;
                summary.matrices_compiled += 1;
                sampled_wires += compiled.wires;
                sampled_len += compiled.avg_net_length_um * compiled.wires as f64;
                sampled_grounded += compiled.grounded_ports;
                summary.worst_peak_utilization = summary
                    .worst_peak_utilization
                    .max(compiled.route.peak_utilization);
            }
            // Extrapolate the group's remaining members (identical shape —
            // identical wire count, statistically identical length/slack).
            let scale = members.len() as f64 / samples as f64;
            summary.matrices_extrapolated += members.len() - samples;
            summary.total_wires += (sampled_wires as f64 * scale) as u64;
            summary.total_wirelength_um += sampled_len * scale;
            summary.grounded_ports += (sampled_grounded as f64 * scale) as u64;
        }
        // Scale one layer to all layers.
        let layers = cfg.num_layers as f64;
        summary.total_wires = (summary.total_wires as f64 * layers) as u64;
        summary.total_wirelength_um *= layers;
        summary.grounded_ports = (summary.grounded_ports as f64 * layers) as u64;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::MeNeuronParams;
    use hnlpu_model::zoo;

    fn model_compiler() -> ModelCompiler {
        let mut params = MeNeuronParams::array_default();
        params.slice_inputs = 16; // small test models want fine slices
        ModelCompiler::new(MeCompiler::new(params))
    }

    #[test]
    fn tiny_model_surveys_completely() {
        let cfg = zoo::test_model().config;
        let gen = WeightGenerator::new(3);
        let s = model_compiler().survey(&cfg, &gen, usize::MAX).unwrap();
        // Every weight of the transformer blocks becomes a wire.
        let expect = cfg.attention_params() + cfg.moe_params();
        assert_eq!(s.total_wires, expect);
        assert_eq!(s.matrices_extrapolated, 0);
        assert!(s.worst_peak_utilization < 0.7);
    }

    #[test]
    fn sampling_extrapolates_wire_count_exactly() {
        let cfg = zoo::test_model().config;
        let gen = WeightGenerator::new(3);
        let full = model_compiler().survey(&cfg, &gen, usize::MAX).unwrap();
        let sampled = model_compiler().survey(&cfg, &gen, 1).unwrap();
        // Wire counts are shape-determined: extrapolation is exact.
        assert_eq!(full.total_wires, sampled.total_wires);
        assert!(sampled.matrices_compiled < full.matrices_compiled);
        assert!(sampled.matrices_extrapolated > 0);
    }

    #[test]
    #[ignore = "compiles ~80M weights; run with --ignored (~1 min)"]
    fn gpt_oss_survey_matches_parameter_count() {
        // The production model: survey with 2 expert samples per kind.
        let cfg = zoo::gpt_oss_120b().config;
        let gen = WeightGenerator::new(1);
        let s = ModelCompiler::new(MeCompiler::new(MeNeuronParams::array_default()))
            .survey(&cfg, &gen, 2)
            .unwrap();
        let expect = cfg.attention_params() + cfg.moe_params();
        let ratio = s.total_wires as f64 / expect as f64;
        assert!(
            (ratio - 1.0).abs() < 1e-6,
            "wires {} vs {}",
            s.total_wires,
            expect
        );
        assert!(s.worst_peak_utilization < 0.7, "density bound violated");
        assert!(
            s.total_wirelength_um > 1e9,
            "a 116B-wire model is metres of wire"
        );
    }

    #[test]
    fn slack_overhead_shrinks_with_fan_in() {
        // Tiny fan-ins pay heavy slice-granularity slack (every region
        // still needs whole slices); production fan-ins amortize it down
        // to roughly the 25% provisioning slack.
        let gen = WeightGenerator::new(5);
        let tiny = zoo::test_model().config;
        let s_tiny = model_compiler().survey(&tiny, &gen, usize::MAX).unwrap();
        let frac_tiny = s_tiny.grounded_ports as f64 / s_tiny.total_wires as f64;
        assert!(frac_tiny > 0.5, "tiny models waste slack: {frac_tiny}");

        let big = hnlpu_model::WeightMatrix::new(hnlpu_model::WeightKind::Key, 2880, 8);
        let compiled = MeCompiler::new(MeNeuronParams::array_default())
            .compile(&gen, 0, &big)
            .unwrap();
        let frac_big = compiled.grounded_ports as f64 / compiled.wires as f64;
        assert!(
            frac_big < 0.6,
            "production fan-in slack should amortize: {frac_big}"
        );
        assert!(frac_big < frac_tiny);
    }
}
