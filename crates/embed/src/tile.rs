//! The §6.3 embedding-methodology benchmark tile.
//!
//! One matrix-vector multiplication — a `1×1024` input against a `1024×128`
//! FP4 weight matrix (a typical LLM attention-block dimension) — evaluated
//! under the three methodologies:
//!
//! * `MA` — a 64 KB SRAM holding the weights plus a 1 024-lane MAC array,
//! * `CE` — Cell-Embedding (one constant multiplier per weight),
//! * `ME` — Metal-Embedding Hardwired-Neurons.
//!
//! [`TileComparison::paper_benchmark`] regenerates Figure 12 (area,
//! normalized to the MA's SRAM) and Figure 13 (execution cycles and energy).
//! All three designs are bit-exact against the reference dot product.

use crate::array::{me_neuron_budget, me_neuron_cycles, MeNeuronParams};
use hnlpu_arith::neuron::{CellEmbeddingNeuron, HardwiredNeuron, MacArray};
use hnlpu_arith::GateBudget;
use hnlpu_circuit::power::dynamic_energy_j;
use hnlpu_circuit::{logic_area_mm2, sram_macro, TechNode};
use hnlpu_model::Fp4;

/// Which embedding methodology a tile uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileMethod {
    /// SRAM + time-multiplexed MAC array.
    MacArray,
    /// Cell-Embedding.
    CellEmbedding,
    /// Metal-Embedding.
    MetalEmbedding,
}

impl TileMethod {
    /// Short label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TileMethod::MacArray => "MA",
            TileMethod::CellEmbedding => "CE",
            TileMethod::MetalEmbedding => "ME",
        }
    }
}

/// A planned benchmark tile: `rows` inputs × `cols` output neurons.
#[derive(Debug, Clone, PartialEq)]
pub struct TileDesign {
    /// Methodology.
    pub method: TileMethod,
    /// Fan-in (input vector length).
    pub rows: usize,
    /// Output neuron count.
    pub cols: usize,
    /// Activation bit-width (the paper feeds int8 activations).
    pub activation_bits: u32,
    /// MAC lanes (MA only).
    pub lanes: usize,
    /// ME neuron parameters (ME only).
    pub me_params: MeNeuronParams,
}

impl TileDesign {
    /// The paper's benchmark geometry for `method`: 1×1024 · 1024×128,
    /// int8 activations, 1 024 MAC lanes.
    pub fn paper(method: TileMethod) -> Self {
        TileDesign {
            method,
            rows: 1024,
            cols: 128,
            activation_bits: 8,
            lanes: 1024,
            me_params: MeNeuronParams::tile_default(),
        }
    }

    /// Weight storage of the tile in bytes (FP4).
    pub fn weight_bytes(&self) -> u64 {
        (self.rows * self.cols) as u64 / 2
    }

    /// Aggregate gate budget of the compute fabric (excludes the MA's SRAM,
    /// which is modeled as a macro).
    pub fn budget(&self) -> GateBudget {
        match self.method {
            TileMethod::MacArray => MacArray::new(self.lanes, self.activation_bits).budget(),
            TileMethod::CellEmbedding => {
                // All multipliers have identical structure cost regardless of
                // the constant's value distribution only via CSD stages; use
                // a representative mix over the 16 codes.
                let mix: Vec<Fp4> = (0..self.rows)
                    .map(|i| Fp4::from_code((i % 16) as u8))
                    .collect();
                CellEmbeddingNeuron::build(&mix, self.activation_bits).budget() * self.cols as u64
            }
            TileMethod::MetalEmbedding => {
                let mut p = self.me_params;
                p.activation_bits = self.activation_bits;
                me_neuron_budget(self.rows, &p) * self.cols as u64
            }
        }
    }

    /// Tile area in mm². Per the paper's comparison, the MA tile is its
    /// 64 KB weight SRAM (the compute array is excluded as arbitrary-sized);
    /// CE and ME are their full compute fabrics.
    pub fn area_mm2(&self, tech: &TechNode) -> f64 {
        match self.method {
            TileMethod::MacArray => sram_macro(self.weight_bytes()).area_mm2(tech),
            _ => logic_area_mm2(&self.budget(), tech, true),
        }
    }

    /// Execution cycles for one full GEMV.
    pub fn cycles(&self) -> u64 {
        match self.method {
            TileMethod::MacArray => (self.rows * self.cols) as u64 / self.lanes as u64 + 22,
            TileMethod::CellEmbedding => {
                // Parallel multipliers, one pass through the adder tree.
                let mix: Vec<Fp4> = (0..self.rows)
                    .map(|i| Fp4::from_code((i % 16) as u8))
                    .collect();
                CellEmbeddingNeuron::build(&mix, self.activation_bits)
                    .eval(&vec![0; self.rows])
                    .cycles
            }
            TileMethod::MetalEmbedding => {
                let mut p = self.me_params;
                p.activation_bits = self.activation_bits;
                me_neuron_cycles(&p, self.rows)
            }
        }
    }

    /// Energy of one full GEMV in joules.
    pub fn energy_j(&self, tech: &TechNode) -> f64 {
        match self.method {
            TileMethod::MacArray => {
                // Fetch every weight byte from SRAM once, plus MAC dynamic
                // energy over the execution.
                let sram = sram_macro(self.weight_bytes());
                let fetch = sram.read_energy_j(self.weight_bytes(), tech);
                let mac = dynamic_energy_j(&self.budget(), tech, 0.35) * self.cycles() as f64;
                fetch + mac
            }
            TileMethod::CellEmbedding => {
                // One combinational evaluation: every multiplier and tree
                // node toggles once — plus the dominant cost of broadcasting
                // every activation bit across the huge fabric (each bit
                // drives `cols` multiplier loads over long wires).
                let compute = dynamic_energy_j(&self.budget(), tech, 0.35);
                let broadcast =
                    (self.rows * self.activation_bits as usize * self.cols) as f64 * 2.0e-15;
                compute + broadcast
            }
            TileMethod::MetalEmbedding => {
                // The compact fabric toggles once per bit-plane subcycle;
                // inputs arrive one bit at a time over short scan taps.
                let per_cycle = dynamic_energy_j(&self.budget(), tech, 0.35);
                let active_cycles = (self.activation_bits * self.me_params.scan_factor) as f64;
                let scan_in =
                    (self.rows * self.activation_bits as usize * self.cols) as f64 * 0.1e-15;
                per_cycle * active_cycles + scan_in
            }
        }
    }

    /// Execute the GEMV exactly: `weights` is row-major `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if the input shapes disagree with the tile geometry.
    pub fn execute(&self, weights: &[Fp4], x: &[i32]) -> Vec<i64> {
        assert_eq!(weights.len(), self.rows * self.cols, "weight shape");
        assert_eq!(x.len(), self.rows, "input shape");
        let column =
            |c: usize| -> Vec<Fp4> { (0..self.rows).map(|r| weights[r * self.cols + c]).collect() };
        match self.method {
            TileMethod::MacArray => {
                let ma = MacArray::new(self.lanes, self.activation_bits.max(12));
                (0..self.cols)
                    .map(|c| ma.eval(&column(c), x).value_half_units)
                    .collect()
            }
            TileMethod::CellEmbedding => (0..self.cols)
                .map(|c| {
                    CellEmbeddingNeuron::build(&column(c), 12)
                        .eval(x)
                        .value_half_units
                })
                .collect(),
            TileMethod::MetalEmbedding => (0..self.cols)
                .map(|c| {
                    HardwiredNeuron::build_with_bits(&column(c), self.me_params.slack, 12)
                        .eval(x)
                        .value_half_units
                })
                .collect(),
        }
    }
}

/// One row of the Figure 12/13 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TileRow {
    /// Methodology.
    pub method: TileMethod,
    /// Absolute area, mm².
    pub area_mm2: f64,
    /// Area normalized to the MA SRAM (Figure 12's unit).
    pub area_rel: f64,
    /// Execution cycles (Figure 13, left).
    pub cycles: u64,
    /// Energy per GEMV, joules (Figure 13, right).
    pub energy_j: f64,
}

/// The full §6.3 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TileComparison {
    /// MA, CE, ME rows in paper order (CE, MA-SRAM, ME for Figure 12).
    pub rows: Vec<TileRow>,
}

impl TileComparison {
    /// Run the paper benchmark at `tech`.
    pub fn paper_benchmark(tech: &TechNode) -> Self {
        let sram_area = TileDesign::paper(TileMethod::MacArray).area_mm2(tech);
        let rows = [
            TileMethod::MacArray,
            TileMethod::CellEmbedding,
            TileMethod::MetalEmbedding,
        ]
        .into_iter()
        .map(|m| {
            let d = TileDesign::paper(m);
            let area = d.area_mm2(tech);
            TileRow {
                method: m,
                area_mm2: area,
                area_rel: area / sram_area,
                cycles: d.cycles(),
                energy_j: d.energy_j(tech),
            }
        })
        .collect();
        TileComparison { rows }
    }

    /// Row for `method`.
    ///
    /// # Panics
    ///
    /// Panics if the comparison does not contain the method (it always does
    /// for [`paper_benchmark`](Self::paper_benchmark)).
    pub fn row(&self, method: TileMethod) -> &TileRow {
        self.rows
            .iter()
            .find(|r| r.method == method)
            .expect("method present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use hnlpu_arith::neuron::reference_dot;

    fn random_problem(seed: u64, rows: usize, cols: usize) -> (Vec<Fp4>, Vec<i32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = (0..rows * cols)
            .map(|_| Fp4::from_code(rng.gen_range(0..16)))
            .collect();
        let x = (0..rows).map(|_| rng.gen_range(-128..128)).collect();
        (w, x)
    }

    #[test]
    fn all_methods_compute_identical_gemv() {
        let (w, x) = random_problem(1, 64, 8);
        let mut tiles = Vec::new();
        for m in [
            TileMethod::MacArray,
            TileMethod::CellEmbedding,
            TileMethod::MetalEmbedding,
        ] {
            let mut d = TileDesign::paper(m);
            d.rows = 64;
            d.cols = 8;
            tiles.push(d.execute(&w, &x));
        }
        assert_eq!(tiles[0], tiles[1]);
        assert_eq!(tiles[1], tiles[2]);
        // And against the naive reference.
        for c in 0..8 {
            let col: Vec<Fp4> = (0..64).map(|r| w[r * 8 + c]).collect();
            assert_eq!(tiles[0][c], reference_dot(&col, &x));
        }
    }

    #[test]
    fn figure12_area_ratios() {
        // Paper: CE 14.3×, SRAM 1×, ME 0.95×.
        let cmp = TileComparison::paper_benchmark(&TechNode::n5());
        let ce = cmp.row(TileMethod::CellEmbedding).area_rel;
        let me = cmp.row(TileMethod::MetalEmbedding).area_rel;
        assert!((ce - 14.3).abs() / 14.3 < 0.15, "CE rel area = {ce:.2}");
        assert!((me - 0.95).abs() / 0.95 < 0.15, "ME rel area = {me:.2}");
        assert_eq!(cmp.row(TileMethod::MacArray).area_rel, 1.0);
    }

    #[test]
    fn figure13_cycle_shape() {
        // Paper: MA ~150 cycles; CE and ME dramatically fewer.
        let cmp = TileComparison::paper_benchmark(&TechNode::n5());
        let ma = cmp.row(TileMethod::MacArray).cycles;
        let ce = cmp.row(TileMethod::CellEmbedding).cycles;
        let me = cmp.row(TileMethod::MetalEmbedding).cycles;
        assert!((140..=160).contains(&ma), "MA cycles = {ma}");
        assert!(ce < ma / 4, "CE cycles = {ce}");
        assert!(me < ma / 3, "ME cycles = {me}");
    }

    #[test]
    fn figure13_energy_ordering() {
        // Paper: MA consumes the most (SRAM traffic); CE pays leakage/input
        // distribution over its huge area; ME consumes the least.
        let cmp = TileComparison::paper_benchmark(&TechNode::n5());
        let ma = cmp.row(TileMethod::MacArray).energy_j;
        let ce = cmp.row(TileMethod::CellEmbedding).energy_j;
        let me = cmp.row(TileMethod::MetalEmbedding).energy_j;
        assert!(ma > ce, "MA {ma:.3e} should exceed CE {ce:.3e}");
        assert!(ce > me, "CE {ce:.3e} should exceed ME {me:.3e}");
        // MA lands in the ~10 nJ decade of Figure 13.
        assert!(ma > 2e-9 && ma < 4e-8, "MA energy = {ma:.3e}");
    }

    #[test]
    fn weight_bytes_is_64kb() {
        assert_eq!(
            TileDesign::paper(TileMethod::MacArray).weight_bytes(),
            64 * 1024
        );
    }

    #[test]
    #[should_panic(expected = "weight shape")]
    fn execute_validates_shapes() {
        TileDesign::paper(TileMethod::MacArray).execute(&[], &[]);
    }
}
