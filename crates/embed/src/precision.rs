//! Weight-precision ablation for Metal-Embedding.
//!
//! ME allocates one POPCNT region per *unique weight value*: `2^bits`
//! regions. §2.2 notes gpt-oss "is already FP4" — this module quantifies
//! why that matters: region count (and the multiplier/tree finalizer) grows
//! exponentially with weight bits while the per-weight wire cost stays
//! flat, so ME's density advantage erodes at higher precisions.

use crate::array::MeNeuronParams;
use hnlpu_arith::csa::CsaTree;
use hnlpu_arith::popcount::PopcountTree;
use hnlpu_arith::GateBudget;
use serde::Serialize;

/// One precision point of the ablation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PrecisionPoint {
    /// Weight bits.
    pub weight_bits: u32,
    /// POPCNT regions (`2^bits`).
    pub regions: u32,
    /// Transistors per weight at gpt-oss fan-in.
    pub transistors_per_weight: f64,
    /// Serial cycles per projection.
    pub cycles: u64,
}

/// Structural cost of a generalized ME neuron with `2^weight_bits` regions.
///
/// # Panics
///
/// Panics if `weight_bits` is outside `2..=8` (beyond that the region
/// finalizer dwarfs everything and the comparison is meaningless) or
/// `fan_in == 0`.
pub fn me_neuron_budget_at_precision(
    fan_in: usize,
    weight_bits: u32,
    p: &MeNeuronParams,
) -> GateBudget {
    assert!((2..=8).contains(&weight_bits), "weight bits out of range");
    assert!(fan_in > 0, "fan_in must be positive");
    let regions = 1u64 << weight_bits;
    let capacity = (fan_in as f64 * p.slack).ceil() as u64;
    let per_region_cap = capacity.div_ceil(regions) as usize;
    let compressor_width = per_region_cap.max(1).div_ceil(p.scan_factor as usize);
    let count_bits = (usize::BITS - per_region_cap.max(1).leading_zeros()).max(1);

    let mut b = GateBudget {
        scan_ports: capacity,
        ..GateBudget::default()
    };
    let compressor = PopcountTree::new(compressor_width).budget();
    let region_acc = GateBudget {
        full_adders: count_bits as u64,
        flops: count_bits as u64,
        ..GateBudget::default()
    };
    b += (compressor + region_acc) * regions;
    // Constant multipliers widen with the value lattice (up to
    // `weight_bits` CSD stages) and the tree fans in over all regions.
    let mul_width = (count_bits + weight_bits) as u64;
    b += GateBudget::fa(mul_width * weight_bits as u64 / 2) * regions;
    b += CsaTree::new(regions as usize, count_bits + weight_bits).budget();
    let acc_bits = (p.activation_bits + count_bits + weight_bits + 1) as u64;
    b += GateBudget {
        full_adders: acc_bits,
        flops: acc_bits,
        ..GateBudget::default()
    };
    b
}

/// Sweep weight precision at gpt-oss fan-in (2,880).
pub fn precision_sweep(p: &MeNeuronParams) -> Vec<PrecisionPoint> {
    (2u32..=8)
        .map(|bits| {
            let budget = me_neuron_budget_at_precision(2880, bits, p);
            PrecisionPoint {
                weight_bits: bits,
                regions: 1 << bits,
                transistors_per_weight: budget.transistor_count() as f64 / 2880.0,
                cycles: p.activation_bits as u64 * p.scan_factor as u64 + 20,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MeNeuronParams {
        MeNeuronParams::array_default()
    }

    #[test]
    fn four_bit_point_matches_the_production_budget() {
        // The generalized model at 4 bits must track the production
        // `me_neuron_budget` within a few percent (they share structure).
        let general = me_neuron_budget_at_precision(2880, 4, &params()).transistor_count();
        let production = crate::array::me_neuron_budget(2880, &params()).transistor_count();
        let ratio = general as f64 / production as f64;
        assert!((0.85..1.25).contains(&ratio), "ratio = {ratio:.3}");
    }

    #[test]
    fn cost_grows_with_precision() {
        let sweep = precision_sweep(&params());
        for w in sweep.windows(2) {
            assert!(
                w[1].transistors_per_weight > w[0].transistors_per_weight * 0.99,
                "{w:?}"
            );
        }
        // FP8 costs several times FP4 per weight: the paper's implicit
        // argument for 4-bit deployment.
        let fp4 = &sweep[2];
        let fp8 = &sweep[6];
        assert_eq!(fp4.weight_bits, 4);
        assert_eq!(fp8.weight_bits, 8);
        assert!(
            fp8.transistors_per_weight > 2.0 * fp4.transistors_per_weight,
            "fp4 {:.1} vs fp8 {:.1}",
            fp4.transistors_per_weight,
            fp8.transistors_per_weight
        );
    }

    #[test]
    fn two_bit_is_cheapest_but_region_poor() {
        let sweep = precision_sweep(&params());
        assert_eq!(sweep[0].regions, 4);
        assert!(sweep[0].transistors_per_weight < sweep[2].transistors_per_weight);
    }

    #[test]
    #[should_panic(expected = "weight bits out of range")]
    fn nine_bits_rejected() {
        me_neuron_budget_at_precision(2880, 9, &params());
    }
}
