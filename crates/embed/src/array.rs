//! Full-chip HN-array planning.
//!
//! The physical Hardwired-Neuron in the Sea-of-Neurons fabric is the
//! *time-multiplexed* variant of the Figure-4 unit: region input ports are
//! scanned `scan_factor` ports per compressor input over subcycles, so a
//! bit-plane of `n` inputs is counted in `scan_factor` cycles by a
//! compressor only `n / scan_factor` wide. This is how the paper's
//! bit-serial "trading time for area" (§3.1) reaches its published density:
//! silicon scales with `n / scan_factor`; only pass-gate ports and metal
//! wires scale with `n`.
//!
//! The functional model (`hnlpu_arith::HardwiredNeuron`) is scan-factor
//! agnostic — scanning changes *when* bits are counted, never *what* the
//! count is — so bit-exactness carries over unchanged.

use hnlpu_arith::csa::CsaTree;
use hnlpu_arith::popcount::PopcountTree;
use hnlpu_arith::GateBudget;
use hnlpu_circuit::power::{block_power, SwitchingActivity};
use hnlpu_circuit::{logic_area_mm2, TechNode};
use hnlpu_model::fp4::NUM_CODES;
use hnlpu_model::TransformerConfig;

/// Physical parameters of an ME neuron instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeNeuronParams {
    /// Activation bit-width fed by the serializers.
    pub activation_bits: u32,
    /// POPCNT provisioning head-room over the fan-in.
    pub slack: f64,
    /// Input ports scanned per compressor input (1 = fully parallel).
    pub scan_factor: u32,
    /// Inputs per prefabricated accumulator slice.
    pub slice_inputs: usize,
}

impl MeNeuronParams {
    /// The full-chip HN-array operating point (calibrated to Table 1).
    pub fn array_default() -> Self {
        MeNeuronParams {
            activation_bits: 12,
            slack: 1.25,
            scan_factor: 10,
            slice_inputs: 64,
        }
    }

    /// The §6.3 benchmark-tile operating point (calibrated to Figure 12/13).
    pub fn tile_default() -> Self {
        MeNeuronParams {
            activation_bits: 8,
            slack: 1.25,
            scan_factor: 2,
            slice_inputs: 64,
        }
    }
}

/// Structural cost of one time-multiplexed ME neuron of `fan_in` weights.
pub fn me_neuron_budget(fan_in: usize, p: &MeNeuronParams) -> GateBudget {
    assert!(fan_in > 0, "fan_in must be positive");
    let capacity = (fan_in as f64 * p.slack).ceil() as u64;
    let per_region_cap = capacity.div_ceil(NUM_CODES as u64) as usize;
    let compressor_width = per_region_cap.div_ceil(p.scan_factor as usize);
    let count_bits = (usize::BITS - per_region_cap.leading_zeros()).max(1);

    let mut b = GateBudget {
        scan_ports: capacity,
        ..GateBudget::default()
    };
    // 16 region compressors + count accumulators.
    let compressor = PopcountTree::new(compressor_width).budget();
    let region_acc = GateBudget {
        full_adders: count_bits as u64,
        flops: count_bits as u64,
        ..GateBudget::default()
    };
    b += (compressor + region_acc) * NUM_CODES as u64;
    // 16 constant multipliers on the final counts (FP4 constants need at
    // most one adder stage) and the 16-operand tree.
    let mul_width = (count_bits + 4) as u64;
    b += GateBudget::fa(mul_width) * NUM_CODES as u64;
    b += CsaTree::new(NUM_CODES, count_bits + 4).budget();
    // One plane (shift) accumulator per neuron.
    let acc_bits = (p.activation_bits + count_bits + 5) as u64;
    b += GateBudget {
        full_adders: acc_bits,
        flops: acc_bits,
        ..GateBudget::default()
    };
    b
}

/// Cycles for one ME dot product: one subcycle per scanned port group per
/// bit-plane, plus pipeline drain.
pub fn me_neuron_cycles(p: &MeNeuronParams, fan_in: usize) -> u64 {
    let capacity = (fan_in as f64 * p.slack).ceil() as usize;
    let compressor_width = capacity
        .div_ceil(NUM_CODES)
        .div_ceil(p.scan_factor as usize);
    let drain = PopcountTree::new(compressor_width).depth() as u64
        + 1 // constant multiply
        + CsaTree::new(NUM_CODES, 16).depth() as u64;
    p.activation_bits as u64 * p.scan_factor as u64 + drain
}

/// The planned HN array of one HNLPU chip.
#[derive(Debug, Clone, PartialEq)]
pub struct HnArrayPlan {
    /// Weights hardwired on this chip.
    pub weights_per_chip: u64,
    /// Output neurons instantiated on this chip.
    pub neurons_per_chip: u64,
    /// Average neuron fan-in.
    pub avg_fan_in: usize,
    /// Neuron physical parameters.
    pub params: MeNeuronParams,
    /// Aggregate gate budget of the array.
    pub budget: GateBudget,
    /// Fraction of the array switching for any one token (MoE sparsity).
    pub active_fraction: f64,
    /// Number of chips the model is split across.
    pub num_chips: u32,
}

impl HnArrayPlan {
    /// Plan the array for `cfg` split over `num_chips` chips.
    ///
    /// The array hardwires every transformer-block matrix (attention,
    /// router, experts); embedding/unembedding tables stream from HBM
    /// through the VEX unit.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips == 0`.
    pub fn plan(cfg: &TransformerConfig, num_chips: u32, params: MeNeuronParams) -> Self {
        assert!(num_chips > 0, "need at least one chip");
        let mut weights: u64 = 0;
        let mut neurons: u64 = 0;
        let mut budget = GateBudget::default();
        for m in cfg.layer_matrices() {
            // Matrices are partitioned across chips along rows or columns
            // (§5); either way each chip instantiates cols/chips neurons of
            // full fan-in or cols neurons of fan_in/chips — the budget is
            // identical at aggregate level. Model as per-chip share of
            // neurons with full fan-in.
            let per_chip_cols = (m.cols as u64).div_ceil(num_chips as u64);
            let nb = me_neuron_budget(m.rows, &params);
            budget += nb * per_chip_cols;
            neurons += per_chip_cols;
            weights += (m.len() as u64).div_ceil(num_chips as u64);
        }
        budget = budget * cfg.num_layers as u64;
        weights *= cfg.num_layers as u64;
        neurons *= cfg.num_layers as u64;
        // Activity: attention + router always active; experts top-k of E.
        let attn = cfg.attention_params()
            + (cfg.hidden_size * cfg.moe.num_experts * cfg.num_layers) as u64;
        let moe =
            cfg.moe_params() - (cfg.hidden_size * cfg.moe.num_experts * cfg.num_layers) as u64;
        let active = attn as f64 + moe as f64 * cfg.moe.activity_fraction();
        let active_fraction = active / (attn + moe) as f64;
        HnArrayPlan {
            weights_per_chip: weights,
            neurons_per_chip: neurons,
            avg_fan_in: (weights / neurons.max(1)) as usize,
            params,
            budget,
            active_fraction,
            num_chips,
        }
    }

    /// Silicon area of the array on one chip, mm².
    pub fn area_mm2(&self, tech: &TechNode) -> f64 {
        logic_area_mm2(&self.budget, tech, true)
    }

    /// Steady-state array power on one chip, watts, at full pipeline
    /// utilization.
    pub fn power_w(&self, tech: &TechNode) -> f64 {
        block_power(
            &self.budget,
            tech,
            SwitchingActivity {
                toggle_rate: 0.50,
                active_fraction: self.active_fraction,
            },
        )
        .total_w()
    }

    /// Cycles for one projection through an average neuron.
    pub fn projection_cycles(&self) -> u64 {
        me_neuron_cycles(&self.params, self.avg_fan_in)
    }

    /// Metal-embedding wires on one chip (one per weight).
    pub fn embedding_wires(&self) -> u64 {
        self.weights_per_chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnlpu_model::zoo;

    fn gpt_oss_plan() -> HnArrayPlan {
        HnArrayPlan::plan(
            &zoo::gpt_oss_120b().config,
            16,
            MeNeuronParams::array_default(),
        )
    }

    #[test]
    fn per_chip_weights_near_one_sixteenth() {
        let plan = gpt_oss_plan();
        let cfg = zoo::gpt_oss_120b().config;
        let hardwired = cfg.total_params() - cfg.embedding_params();
        let expect = hardwired / 16;
        let ratio = plan.weights_per_chip as f64 / expect as f64;
        assert!((0.95..1.1).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn area_matches_table1() {
        // Table 1: HN Array = 573.16 mm² per chip.
        let area = gpt_oss_plan().area_mm2(&TechNode::n5());
        assert!(
            (area - 573.16).abs() / 573.16 < 0.10,
            "HN array area = {area:.2} mm²"
        );
    }

    #[test]
    fn power_matches_table1() {
        // Table 1: HN Array = 76.92 W per chip.
        let p = gpt_oss_plan().power_w(&TechNode::n5());
        assert!(
            (p - 76.92).abs() / 76.92 < 0.15,
            "HN array power = {p:.2} W"
        );
    }

    #[test]
    fn moe_sparsity_drives_low_activity() {
        let plan = gpt_oss_plan();
        assert!(
            plan.active_fraction < 0.08,
            "active fraction = {}",
            plan.active_fraction
        );
    }

    #[test]
    fn projection_cycles_track_scan_factor() {
        let cfg = zoo::gpt_oss_120b().config;
        let mut p = MeNeuronParams::array_default();
        let slow = HnArrayPlan::plan(&cfg, 16, p).projection_cycles();
        p.scan_factor = 1;
        let fast = HnArrayPlan::plan(&cfg, 16, p).projection_cycles();
        assert!(slow > 3 * fast, "slow={slow} fast={fast}");
    }

    #[test]
    fn wires_equal_weights() {
        let plan = gpt_oss_plan();
        assert_eq!(plan.embedding_wires(), plan.weights_per_chip);
    }

    #[test]
    fn more_chips_less_area_each() {
        let cfg = zoo::gpt_oss_120b().config;
        let p = MeNeuronParams::array_default();
        let a16 = HnArrayPlan::plan(&cfg, 16, p).area_mm2(&TechNode::n5());
        let a32 = HnArrayPlan::plan(&cfg, 32, p).area_mm2(&TechNode::n5());
        assert!(a32 < a16 * 0.65, "a16={a16} a32={a32}");
    }
}
