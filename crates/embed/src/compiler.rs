//! The Metal-Embedding compiler (§3.2's custom flow).
//!
//! Input: a weight matrix. Output: the M8–M11 wire netlist that programs the
//! prefabricated Sea-of-Neurons array with those weights, plus everything
//! sign-off needs — per-layer routing utilization, slice allocations, and a
//! TCL-like ECO script of the kind the paper feeds back into the P&R tool.
//!
//! One net per weight: from the weight's input-signal tap to a port of the
//! POPCNT region matching the weight's FP4 code. Taps are short (~1–3 µm):
//! the input spine passes directly over its candidate ports, and the
//! embedding wire only selects which region lane the signal drops into.

use crate::array::{me_neuron_budget, MeNeuronParams};
use crate::region::{RegionAllocError, RegionAllocation, SlicePool};
use hnlpu_circuit::netlist::{CellId, Netlist};
use hnlpu_circuit::{logic_area_mm2, MetalStack, RouteReport, Router, TechNode};
use hnlpu_model::fp4::NUM_CODES;
use hnlpu_model::{Fp4, WeightGenerator, WeightMatrix};
use std::error::Error;
use std::fmt;

/// Compiler failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A neuron's weight histogram did not fit its prefab slice pool.
    SliceOverflow {
        /// Output neuron (column) index.
        neuron: usize,
        /// Underlying allocation failure.
        source: RegionAllocError,
    },
    /// Routing density exceeded the congestion limit.
    Congestion {
        /// The offending report.
        report: RouteReport,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::SliceOverflow { neuron, source } => {
                write!(f, "neuron {neuron}: {source}")
            }
            CompileError::Congestion { report } => write!(
                f,
                "metal-embedding layers congested (peak {:.1}%)",
                report.peak_utilization * 100.0
            ),
        }
    }
}

impl Error for CompileError {}

/// A compiled weight matrix.
#[derive(Debug, Clone)]
pub struct CompiledMatrix {
    /// The matrix that was compiled.
    pub matrix: WeightMatrix,
    /// Total embedding wires placed (= weight count).
    pub wires: u64,
    /// Grounded (unused) accumulator ports across all neurons.
    pub grounded_ports: u64,
    /// Per-neuron slice allocations (one per output column).
    pub allocations: Vec<RegionAllocation>,
    /// Routing verification over the matrix's array footprint.
    pub route: RouteReport,
    /// Array footprint, mm².
    pub footprint_mm2: f64,
    /// A sampled netlist of the first neuron (for inspection/tests).
    pub sample_netlist: Netlist,
    /// Average embedding-net length, µm.
    pub avg_net_length_um: f64,
}

impl CompiledMatrix {
    /// Emit the TCL-like ECO script the §3.2 flow integrates into P&R.
    /// Only the first `max_nets` nets are materialized (scripts for billions
    /// of wires are written streaming in practice).
    pub fn tcl_script(&self, weights: &[Fp4], max_nets: usize) -> String {
        let mut s = String::with_capacity(max_nets * 64 + 128);
        s.push_str("# Metal-Embedding ECO script (generated)\n");
        s.push_str(&format!(
            "# matrix {}x{} -> {} embedding nets on M8-M11\n",
            self.matrix.rows, self.matrix.cols, self.wires
        ));
        for (i, w) in weights.iter().take(max_nets).enumerate() {
            let row = i / self.matrix.cols;
            let col = i % self.matrix.cols;
            s.push_str(&format!(
                "create_net -name me_n{col}_i{row} ; route_eco -from [get_pins u_spine/row{row}/tap{col}] -to [get_pins u_hn{col}/region{code}/port*] -layers {{M8 M9 M10 M11}}\n",
                code = w.code(),
            ));
        }
        s
    }
}

/// The Metal-Embedding compiler.
#[derive(Debug, Clone)]
pub struct MeCompiler {
    /// Neuron physical parameters (slack, slices, scan factor).
    pub params: MeNeuronParams,
    /// Technology node.
    pub tech: TechNode,
    /// Metal stack (layer indices and routing supply).
    pub stack: MetalStack,
    /// Average tap length in µm (paper-calibrated: taps select adjacent
    /// region lanes).
    pub tap_length_um: f64,
}

impl MeCompiler {
    /// A compiler at the default 5 nm operating point.
    pub fn new(params: MeNeuronParams) -> Self {
        MeCompiler {
            params,
            tech: TechNode::n5(),
            stack: MetalStack::n5(),
            tap_length_um: 1.2,
        }
    }

    /// Compile `matrix` with weights drawn from `gen` at `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::SliceOverflow`] if any neuron's histogram
    /// exceeds its prefab pool, or [`CompileError::Congestion`] if the wire
    /// demand overflows the M8–M11 supply.
    pub fn compile(
        &self,
        gen: &WeightGenerator,
        layer: usize,
        matrix: &WeightMatrix,
    ) -> Result<CompiledMatrix, CompileError> {
        let weights = gen.matrix(layer, matrix);
        self.compile_weights(matrix, &weights)
    }

    /// Compile an explicit weight vector (row-major `rows × cols`).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != matrix.len()`.
    pub fn compile_weights(
        &self,
        matrix: &WeightMatrix,
        weights: &[Fp4],
    ) -> Result<CompiledMatrix, CompileError> {
        assert_eq!(weights.len(), matrix.len(), "weight count mismatch");
        let pool = SlicePool::provision(matrix.rows, self.params.slack, self.params.slice_inputs);

        // Per-neuron histograms and slice allocation.
        let mut allocations = Vec::with_capacity(matrix.cols);
        let mut grounded = 0u64;
        for col in 0..matrix.cols {
            let mut hist = [0u64; NUM_CODES];
            for row in 0..matrix.rows {
                hist[weights[row * matrix.cols + col].code() as usize] += 1;
            }
            let alloc = RegionAllocation::allocate(&hist, pool).map_err(|source| {
                CompileError::SliceOverflow {
                    neuron: col,
                    source,
                }
            })?;
            grounded += alloc.grounded_ports as u64;
            allocations.push(alloc);
        }

        // Array footprint for this matrix.
        let budget = me_neuron_budget(matrix.rows, &self.params) * matrix.cols as u64;
        let footprint_mm2 = logic_area_mm2(&budget, &self.tech, true);
        let side = footprint_mm2.sqrt().max(1e-3);

        // Wire demand: one tap per weight, round-robin across the four ME
        // wire layers weighted toward the denser lower pair.
        let me_wire_layers: Vec<usize> = self
            .stack
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.metal_embedding && l.name.starts_with('M'))
            .map(|(i, _)| i)
            .collect();
        let mut netlist = Netlist::new();
        let wires = matrix.len() as u64;
        let mut total_len = 0.0f64;
        for (i, w) in weights.iter().enumerate() {
            // Deterministic tap-length jitter in [0.4, 2.0) µm.
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            let len = 0.4 + (h % 1000) as f64 / 1000.0 * 1.6;
            total_len += len;
            if i % matrix.cols == 0 && i / matrix.cols < 64 {
                // Sample the first neuron's nets for inspection.
                let layer = me_wire_layers[i % me_wire_layers.len()];
                netlist.add_net(
                    CellId(i as u32),
                    vec![CellId((matrix.len() + w.code() as usize) as u32)],
                    layer,
                    len,
                );
            }
        }
        // A real global router balances utilization: spread aggregate demand
        // across the ME wire layers proportionally to their track capacity.
        let capacities: Vec<f64> = me_wire_layers
            .iter()
            .map(|&l| self.stack.layers()[l].tracks_per_mm())
            .collect();
        let cap_total: f64 = capacities.iter().sum();
        let mut demand = Netlist::new();
        for (&layer, &cap) in me_wire_layers.iter().zip(capacities.iter()) {
            demand.add_net(
                CellId(0),
                vec![CellId(1)],
                layer,
                total_len * cap / cap_total,
            );
        }

        let router = Router::new(side, side);
        let route = router.route(&demand, &self.stack);
        if !route.congestion_free {
            return Err(CompileError::Congestion { report: route });
        }
        Ok(CompiledMatrix {
            matrix: *matrix,
            wires,
            grounded_ports: grounded,
            allocations,
            route,
            footprint_mm2,
            sample_netlist: netlist,
            avg_net_length_um: total_len / wires.max(1) as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnlpu_model::WeightKind;

    fn compiler() -> MeCompiler {
        MeCompiler::new(MeNeuronParams::array_default())
    }

    #[test]
    fn compiles_gpt_oss_key_matrix() {
        let m = WeightMatrix::new(WeightKind::Key, 2880, 128);
        let c = compiler()
            .compile(&WeightGenerator::new(7), 0, &m)
            .expect("compiles");
        assert_eq!(c.wires, 2880 * 128);
        assert_eq!(c.allocations.len(), 128);
        assert!(c.route.congestion_free);
        assert!(
            c.route.peak_utilization < 0.7,
            "peak = {}",
            c.route.peak_utilization
        );
    }

    #[test]
    fn routing_density_below_70_percent_like_paper() {
        // §7.1: ME-layer routing density stays below 70%.
        let m = WeightMatrix::new(WeightKind::Query, 2880, 256);
        let c = compiler().compile(&WeightGenerator::new(3), 1, &m).unwrap();
        assert!(c.route.peak_utilization < 0.70);
        // ...but not trivially empty either.
        assert!(c.route.peak_utilization > 0.05);
    }

    #[test]
    fn grounded_ports_are_slack() {
        let m = WeightMatrix::new(WeightKind::Key, 512, 16);
        let mut p = MeNeuronParams::array_default();
        p.slice_inputs = 16; // small fan-in wants finer slices
        let c = MeCompiler::new(p)
            .compile(&WeightGenerator::new(1), 0, &m)
            .unwrap();
        // Grounded ports exist (slack) but are bounded by pool capacity.
        let pool_cap = c.allocations[0].pool.capacity() as u64 * 16;
        assert!(c.grounded_ports > 0);
        assert!(c.grounded_ports < pool_cap);
    }

    #[test]
    fn pathological_weights_fail_slice_allocation() {
        // Every weight identical: one region demands 16x its uniform share,
        // beyond the adjacency-limited borrow cap.
        let m = WeightMatrix::new(WeightKind::Key, 2880, 1);
        let weights = vec![Fp4::from_f32(6.0); 2880];
        let err = compiler().compile_weights(&m, &weights).unwrap_err();
        match err {
            CompileError::SliceOverflow { neuron, source } => {
                assert_eq!(neuron, 0);
                assert!(source.demanded() > source.available());
            }
            other => panic!("expected SliceOverflow, got {other}"),
        }
    }

    #[test]
    fn tcl_script_mentions_layers_and_regions() {
        let m = WeightMatrix::new(WeightKind::Key, 64, 4);
        let g = WeightGenerator::new(2);
        let weights = g.matrix(0, &m);
        let c = compiler().compile_weights(&m, &weights).unwrap();
        let tcl = c.tcl_script(&weights, 10);
        assert!(tcl.contains("M8 M9 M10 M11"));
        assert!(tcl.contains("route_eco"));
        assert!(tcl.lines().count() >= 10);
    }

    #[test]
    fn average_net_length_is_local() {
        let m = WeightMatrix::new(WeightKind::Key, 512, 32);
        let mut p = MeNeuronParams::array_default();
        p.slice_inputs = 16;
        let c = MeCompiler::new(p)
            .compile(&WeightGenerator::new(5), 0, &m)
            .unwrap();
        assert!(
            c.avg_net_length_um > 0.4 && c.avg_net_length_um < 2.0,
            "avg = {}",
            c.avg_net_length_um
        );
    }

    #[test]
    fn deterministic_compilation() {
        let m = WeightMatrix::new(WeightKind::Key, 256, 8);
        let g = WeightGenerator::new(11);
        let a = compiler().compile(&g, 0, &m).unwrap();
        let b = compiler().compile(&g, 0, &m).unwrap();
        assert_eq!(a.wires, b.wires);
        assert_eq!(a.grounded_ports, b.grounded_ports);
        assert_eq!(a.avg_net_length_um, b.avg_net_length_um);
    }
}
