//! POPCNT accumulator-slice allocation.
//!
//! The prefabricated Sea-of-Neurons array contains, per neuron, a pool of
//! identical accumulator *slices* sized before any weights are known
//! (§3.1: "the accumulators could be implemented as multiple slices and be
//! reconfigurable through metal wires"). The ME compiler assigns slices to
//! the 16 weight-value regions according to the actual code histogram;
//! unused ports are grounded. This module is that assignment.

use hnlpu_model::fp4::NUM_CODES;
use std::error::Error;
use std::fmt;

/// The prefabricated slice pool of one neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicePool {
    /// Inputs each slice can count.
    pub slice_inputs: usize,
    /// Number of prefabricated slices.
    pub slices: usize,
    /// Most slices any single region may claim: borrowing works through
    /// metal, but only from physically adjacent slices, so a region is
    /// capped at a few times its uniform share.
    pub max_region_slices: usize,
}

impl SlicePool {
    /// Provision a pool for `fan_in` weights with `slack` head-room
    /// (the paper's "sufficient slackness").
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`, `slice_inputs == 0` or `slack < 1.0`.
    pub fn provision(fan_in: usize, slack: f64, slice_inputs: usize) -> Self {
        assert!(fan_in > 0, "fan_in must be positive");
        assert!(slice_inputs > 0, "slice_inputs must be positive");
        assert!(slack >= 1.0, "slack must be >= 1.0");
        let capacity = (fan_in as f64 * slack).ceil() as usize;
        // Base slices for the capacity, plus per-region rounding head-room
        // (each of the 16 regions can waste up to one slice to granularity).
        let slices = capacity.div_ceil(slice_inputs) + (NUM_CODES - 1);
        let uniform = capacity.div_ceil(NUM_CODES);
        let max_region_slices = uniform.div_ceil(slice_inputs).max(1) * 4;
        SlicePool {
            slice_inputs,
            slices,
            max_region_slices,
        }
    }

    /// Total countable inputs.
    pub fn capacity(&self) -> usize {
        self.slice_inputs * self.slices
    }
}

/// Failure to fit a histogram into a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionAllocError {
    /// Total slice demand exceeds the pool.
    PoolExhausted {
        /// Slices the histogram demands.
        demanded: usize,
        /// Slices the pool offers.
        available: usize,
    },
    /// One region demands more adjacent slices than borrowing allows.
    RegionOverflow {
        /// FP4 code of the overflowing region.
        code: u8,
        /// Slices that region demands.
        demanded: usize,
        /// Borrow limit per region.
        available: usize,
    },
}

impl RegionAllocError {
    /// Slices demanded by the failing constraint.
    pub fn demanded(&self) -> usize {
        match *self {
            RegionAllocError::PoolExhausted { demanded, .. }
            | RegionAllocError::RegionOverflow { demanded, .. } => demanded,
        }
    }

    /// Slices available under the failing constraint.
    pub fn available(&self) -> usize {
        match *self {
            RegionAllocError::PoolExhausted { available, .. }
            | RegionAllocError::RegionOverflow { available, .. } => available,
        }
    }
}

impl fmt::Display for RegionAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionAllocError::PoolExhausted {
                demanded,
                available,
            } => write!(
                f,
                "weight histogram demands {demanded} accumulator slices but the prefab pool has {available}"
            ),
            RegionAllocError::RegionOverflow {
                code,
                demanded,
                available,
            } => write!(
                f,
                "region for FP4 code {code} demands {demanded} slices but adjacency-limited borrowing allows {available}"
            ),
        }
    }
}

impl Error for RegionAllocError {}

/// A successful slice assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionAllocation {
    /// Slices granted to each of the 16 regions.
    pub slices_per_region: [usize; NUM_CODES],
    /// Ports left grounded (capacity minus wired weights).
    pub grounded_ports: usize,
    /// The pool that was allocated from.
    pub pool: SlicePool,
}

impl RegionAllocation {
    /// Assign slices of `pool` to regions according to `histogram`
    /// (weights per FP4 code).
    ///
    /// # Errors
    ///
    /// Returns [`RegionAllocError`] if the histogram's slice demand exceeds
    /// the pool — the weight vector is too imbalanced for the prefab
    /// provisioning and needs a larger `slack`.
    pub fn allocate(
        histogram: &[u64; NUM_CODES],
        pool: SlicePool,
    ) -> Result<Self, RegionAllocError> {
        let mut slices_per_region = [0usize; NUM_CODES];
        let mut demanded = 0usize;
        for (code, &count) in histogram.iter().enumerate() {
            let need = (count as usize).div_ceil(pool.slice_inputs);
            if need > pool.max_region_slices {
                return Err(RegionAllocError::RegionOverflow {
                    code: code as u8,
                    demanded: need,
                    available: pool.max_region_slices,
                });
            }
            slices_per_region[code] = need;
            demanded += need;
        }
        if demanded > pool.slices {
            return Err(RegionAllocError::PoolExhausted {
                demanded,
                available: pool.slices,
            });
        }
        let wired: u64 = histogram.iter().sum();
        let used_capacity: usize = slices_per_region.iter().sum::<usize>() * pool.slice_inputs;
        Ok(RegionAllocation {
            slices_per_region,
            grounded_ports: used_capacity - wired as usize,
            pool,
        })
    }

    /// Countable inputs granted to `code`'s region.
    pub fn region_capacity(&self, code: u8) -> usize {
        self.slices_per_region[code as usize] * self.pool.slice_inputs
    }

    /// Slices left unassigned in the pool.
    pub fn spare_slices(&self) -> usize {
        self.pool.slices - self.slices_per_region.iter().sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform_hist(total: u64) -> [u64; NUM_CODES] {
        let mut h = [total / NUM_CODES as u64; NUM_CODES];
        h[0] += total % NUM_CODES as u64;
        h
    }

    #[test]
    fn uniform_histogram_fits_with_modest_slack() {
        let pool = SlicePool::provision(2880, 1.25, 64);
        let alloc = RegionAllocation::allocate(&uniform_hist(2880), pool).unwrap();
        assert!(alloc.spare_slices() < pool.slices);
        // Every wired weight has a port.
        for code in 0..NUM_CODES as u8 {
            assert!(alloc.region_capacity(code) as u64 >= uniform_hist(2880)[code as usize]);
        }
    }

    #[test]
    fn pathological_histogram_overflows() {
        // All 2880 weights share one value: that region demands 16x its
        // uniform share, far beyond the 4x adjacency-limited borrow cap.
        let pool = SlicePool::provision(2880, 1.25, 64);
        let mut h = [0u64; NUM_CODES];
        h[3] = 2880;
        let err = RegionAllocation::allocate(&h, pool).unwrap_err();
        assert!(matches!(
            err,
            RegionAllocError::RegionOverflow { code: 3, .. }
        ));
        assert!(err.demanded() > err.available());
        assert!(err.to_string().contains("slices"));
    }

    #[test]
    fn pool_exhaustion_detected() {
        // Four heavy regions, each within its borrow cap, can still
        // collectively exhaust the pool.
        let pool = SlicePool::provision(1024, 1.0, 16);
        let mut h = [0u64; NUM_CODES];
        for code in [0usize, 1, 2, 3, 4, 5, 6, 7] {
            h[code] = 256; // each needs 16 slices; cap is 4*ceil(64/16)=16
        }
        let err = RegionAllocation::allocate(&h, pool).unwrap_err();
        assert!(matches!(err, RegionAllocError::PoolExhausted { .. }));
    }

    #[test]
    fn grounded_ports_accounting() {
        let pool = SlicePool::provision(100, 1.5, 10);
        let mut h = [0u64; NUM_CODES];
        h[0] = 35;
        h[1] = 6;
        let alloc = RegionAllocation::allocate(&h, pool).unwrap();
        // 35 -> 4 slices (40 ports), 6 -> 1 slice (10 ports): 9 grounded.
        assert_eq!(alloc.grounded_ports, 9);
    }

    #[test]
    fn pool_capacity() {
        let pool = SlicePool::provision(1000, 1.25, 64);
        assert!(pool.capacity() >= 1250);
        assert!(pool.slices >= NUM_CODES);
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn bad_slack_rejected() {
        SlicePool::provision(100, 0.9, 64);
    }

    proptest! {
        #[test]
        fn realistic_histograms_fit(seed in 0u64..500) {
            // Histograms drawn from the synthetic weight distribution must
            // fit the default provisioning (slack 1.25, 64-input slices) —
            // this is the guarantee the Sea-of-Neurons prefab relies on.
            use hnlpu_model::{WeightGenerator, WeightKind, WeightMatrix};
            let g = WeightGenerator::new(seed);
            let m = WeightMatrix::new(WeightKind::Query, 2880, 1);
            let h = g.code_histogram(0, &m);
            let pool = SlicePool::provision(2880, 1.25, 64);
            prop_assert!(RegionAllocation::allocate(&h, pool).is_ok());
        }

        #[test]
        fn allocation_covers_every_weight(
            counts in prop::collection::vec(0u64..200, NUM_CODES..=NUM_CODES)
        ) {
            let mut h = [0u64; NUM_CODES];
            h.copy_from_slice(&counts);
            let total: u64 = h.iter().sum();
            if total == 0 { return Ok(()); }
            let pool = SlicePool::provision(total as usize, 2.0, 16);
            if let Ok(alloc) = RegionAllocation::allocate(&h, pool) {
                for (code, &count) in h.iter().enumerate() {
                    prop_assert!(alloc.region_capacity(code as u8) as u64 >= count);
                }
                let cap_used: usize = alloc.slices_per_region.iter().sum::<usize>() * 16;
                prop_assert_eq!(alloc.grounded_ports as u64, cap_used as u64 - total);
            }
        }
    }
}
