//! Steady-state thermal model for the 2.5D module with direct-to-chip
//! liquid cooling (§4.2 "Thermal Management", §7.1 power-density check).
//!
//! A one-dimensional thermal-resistance stack: junction → die → TIM →
//! cold plate → coolant. Block power densities map to junction
//! temperatures; §7.1's claim is that 0.3 W/mm² average / 1.4 W/mm² peak
//! stays "well within the cooling limits".

use serde::Serialize;

/// The thermal stack of one cooled module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ThermalStack {
    /// Coolant supply temperature, °C (facility water loop).
    pub coolant_c: f64,
    /// Junction-to-case resistance, °C·mm²/W (silicon + BEOL spread).
    pub r_junction_case: f64,
    /// Thermal-interface-material resistance, °C·mm²/W.
    pub r_tim: f64,
    /// Cold-plate convective resistance, °C·mm²/W.
    pub r_cold_plate: f64,
    /// Maximum allowed junction temperature, °C.
    pub t_junction_max_c: f64,
}

impl ThermalStack {
    /// A direct-to-chip liquid-cooling stack of the DGX-class kind the
    /// paper cites.
    pub fn dlc() -> Self {
        ThermalStack {
            coolant_c: 35.0,
            r_junction_case: 8.0,
            r_tim: 10.0,
            r_cold_plate: 15.0,
            t_junction_max_c: 105.0,
        }
    }

    /// An air-cooled heatsink stack for comparison (≈3× the convective
    /// resistance).
    pub fn air() -> Self {
        ThermalStack {
            coolant_c: 45.0, // inlet air in a hot aisle
            r_junction_case: 8.0,
            r_tim: 10.0,
            r_cold_plate: 95.0,
            t_junction_max_c: 105.0,
        }
    }

    /// Total stack resistance, °C·mm²/W.
    pub fn total_r(&self) -> f64 {
        self.r_junction_case + self.r_tim + self.r_cold_plate
    }

    /// Steady-state junction temperature at a local power density,
    /// °C.
    pub fn junction_c(&self, density_w_per_mm2: f64) -> f64 {
        self.coolant_c + density_w_per_mm2 * self.total_r()
    }

    /// Power density the stack can cool at the junction limit, W/mm².
    pub fn max_density_w_per_mm2(&self) -> f64 {
        (self.t_junction_max_c - self.coolant_c) / self.total_r()
    }

    /// Thermal margin (°C below the junction limit) at a power density;
    /// negative means the part overheats.
    pub fn margin_c(&self, density_w_per_mm2: f64) -> f64 {
        self.t_junction_max_c - self.junction_c(density_w_per_mm2)
    }
}

/// Thermal verdict for one chip's power map.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ThermalReport {
    /// Junction temperature at the average density, °C.
    pub t_avg_c: f64,
    /// Junction temperature at the peak density, °C.
    pub t_peak_c: f64,
    /// Margin at the peak, °C.
    pub peak_margin_c: f64,
    /// Whether the whole die stays under the junction limit.
    pub ok: bool,
}

/// Evaluate a chip's `(avg, peak)` power densities against `stack`.
pub fn evaluate(avg_w_per_mm2: f64, peak_w_per_mm2: f64, stack: &ThermalStack) -> ThermalReport {
    let t_avg = stack.junction_c(avg_w_per_mm2);
    let t_peak = stack.junction_c(peak_w_per_mm2);
    ThermalReport {
        t_avg_c: t_avg,
        t_peak_c: t_peak,
        peak_margin_c: stack.t_junction_max_c - t_peak,
        ok: t_peak <= stack.t_junction_max_c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_densities_are_cool_under_dlc() {
        // §7.1: avg 0.3 W/mm², peak 1.4 W/mm² is "well within" DLC limits.
        let rep = evaluate(0.3, 1.4, &ThermalStack::dlc());
        assert!(rep.ok, "{rep:?}");
        assert!(rep.peak_margin_c > 5.0, "margin = {}", rep.peak_margin_c);
        assert!(rep.t_avg_c < 55.0);
    }

    #[test]
    fn dlc_cools_more_than_air() {
        let dlc = ThermalStack::dlc();
        let air = ThermalStack::air();
        assert!(dlc.max_density_w_per_mm2() > air.max_density_w_per_mm2());
    }

    #[test]
    fn gpu_class_hotspots_would_strain_air_cooling() {
        // An H100-class hotspot (~2 W/mm²) exceeds the air stack's limit
        // but stays coolable under DLC — the §4.2 motivation.
        let air = evaluate(0.9, 2.0, &ThermalStack::air());
        assert!(!air.ok);
        let dlc = evaluate(0.9, 2.0, &ThermalStack::dlc());
        assert!(dlc.ok);
    }

    #[test]
    fn junction_scales_linearly_with_density() {
        let s = ThermalStack::dlc();
        let t1 = s.junction_c(0.5);
        let t2 = s.junction_c(1.0);
        assert!((t2 - t1 - 0.5 * s.total_r()).abs() < 1e-9);
    }

    #[test]
    fn margin_goes_negative_past_limit() {
        let s = ThermalStack::dlc();
        let over = s.max_density_w_per_mm2() * 1.2;
        assert!(s.margin_c(over) < 0.0);
    }
}
