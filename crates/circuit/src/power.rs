//! Dynamic-energy, leakage, and power-density estimation.
//!
//! Mirrors what PrimeTime PX does with a SAIF file: dynamic power is
//! per-cell energy × toggles × activity, static power is leakage over the
//! instantiated transistors.

use crate::tech::TechNode;
use hnlpu_arith::GateBudget;

/// Switching-activity annotation for a block (the SAIF-file stand-in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingActivity {
    /// Fraction of cells that toggle in an average cycle (0..=1).
    pub toggle_rate: f64,
    /// Fraction of the block that is architecturally active at all —
    /// e.g. 4/128 for the MoE expert region of the HN array (§7.1).
    pub active_fraction: f64,
}

impl SwitchingActivity {
    /// Uniform activity (every cell toggles with `toggle_rate`).
    pub fn uniform(toggle_rate: f64) -> Self {
        SwitchingActivity {
            toggle_rate,
            active_fraction: 1.0,
        }
    }

    /// Effective activity product.
    pub fn effective(&self) -> f64 {
        self.toggle_rate * self.active_fraction
    }
}

impl Default for SwitchingActivity {
    fn default() -> Self {
        SwitchingActivity::uniform(0.2)
    }
}

/// Power estimate for a block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerEstimate {
    /// Dynamic power, watts.
    pub dynamic_w: f64,
    /// Leakage power, watts.
    pub leakage_w: f64,
}

impl PowerEstimate {
    /// Total power.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.leakage_w
    }
}

/// Energy of one full evaluation pass through a gate budget, in joules.
pub fn dynamic_energy_j(budget: &GateBudget, tech: &TechNode, activity: f64) -> f64 {
    let adders = (budget.full_adders + budget.half_adders) as f64 * tech.fa_energy_fj;
    let flops = budget.flops as f64 * tech.dff_energy_fj;
    let rest = (budget.muxes + budget.simple_gates) as f64 * tech.fa_energy_fj * 0.3;
    (adders + flops + rest) * activity * 1e-15
}

/// Steady-state power of a clocked block.
pub fn block_power(
    budget: &GateBudget,
    tech: &TechNode,
    activity: SwitchingActivity,
) -> PowerEstimate {
    let energy_per_cycle = dynamic_energy_j(budget, tech, activity.effective());
    PowerEstimate {
        dynamic_w: energy_per_cycle * tech.clock_hz,
        leakage_w: budget.transistor_count() as f64 / 1e6 * tech.leakage_w_per_mtr,
    }
}

/// Power density in W/mm² (the paper's thermal check: avg 0.3, peak 1.4,
/// within 2.5D cooling limits).
pub fn power_density_w_per_mm2(power_w: f64, area_mm2: f64) -> f64 {
    if area_mm2 <= 0.0 {
        return 0.0;
    }
    power_w / area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_scales_with_activity() {
        let t = TechNode::n5();
        let b = GateBudget::fa(1000);
        let e_half = dynamic_energy_j(&b, &t, 0.5);
        let e_full = dynamic_energy_j(&b, &t, 1.0);
        assert!((e_full - 2.0 * e_half).abs() < 1e-18);
    }

    #[test]
    fn moe_sparsity_cuts_dynamic_power() {
        let t = TechNode::n5();
        let b = GateBudget::fa(1_000_000);
        let dense = block_power(&b, &t, SwitchingActivity::uniform(0.2));
        let sparse = block_power(
            &b,
            &t,
            SwitchingActivity {
                toggle_rate: 0.2,
                active_fraction: 4.0 / 128.0,
            },
        );
        assert!(sparse.dynamic_w < dense.dynamic_w / 20.0);
        // Leakage is unaffected by activity.
        assert_eq!(sparse.leakage_w, dense.leakage_w);
    }

    #[test]
    fn leakage_scales_with_transistors() {
        let t = TechNode::n5();
        let p1 = block_power(&GateBudget::fa(1000), &t, SwitchingActivity::default());
        let p2 = block_power(&GateBudget::fa(2000), &t, SwitchingActivity::default());
        assert!((p2.leakage_w - 2.0 * p1.leakage_w).abs() < 1e-12);
    }

    #[test]
    fn power_density() {
        assert_eq!(power_density_w_per_mm2(300.0, 1000.0), 0.3);
        assert_eq!(power_density_w_per_mm2(1.0, 0.0), 0.0);
    }

    #[test]
    fn total_sums_components() {
        let p = PowerEstimate {
            dynamic_w: 1.5,
            leakage_w: 0.5,
        };
        assert_eq!(p.total_w(), 2.0);
    }
}
