//! Murphy defect-yield model and dies-per-wafer geometry (Appendix B).

/// Murphy's yield model: `Y = ((1 - e^{-A·D}) / (A·D))²` for die area `A`
/// (mm²) and defect density `d0` (defects/cm²).
///
/// # Example
///
/// ```
/// use hnlpu_circuit::murphy_yield;
/// // The paper's 827 mm² die at 0.11 def/cm² yields ~43%.
/// let y = murphy_yield(827.08, 0.11);
/// assert!((y - 0.43).abs() < 0.02);
/// ```
pub fn murphy_yield(die_area_mm2: f64, d0_per_cm2: f64) -> f64 {
    if die_area_mm2 <= 0.0 || d0_per_cm2 <= 0.0 {
        return 1.0;
    }
    let ad = die_area_mm2 / 100.0 * d0_per_cm2;
    let f = (1.0 - (-ad).exp()) / ad;
    f * f
}

/// Gross dies per wafer for a square-ish die of `die_area_mm2` on a wafer of
/// `wafer_diameter_mm`, using the standard edge-loss correction:
/// `π·r²/A − π·d/√(2A)`.
///
/// # Example
///
/// ```
/// use hnlpu_circuit::dies_per_wafer;
/// // ~62 gross dies of 827 mm² on a 300 mm wafer (Appendix B).
/// assert_eq!(dies_per_wafer(827.08, 300.0), 62);
/// ```
pub fn dies_per_wafer(die_area_mm2: f64, wafer_diameter_mm: f64) -> u32 {
    if die_area_mm2 <= 0.0 {
        return 0;
    }
    let d = wafer_diameter_mm;
    let n = std::f64::consts::PI * d * d / (4.0 * die_area_mm2)
        - std::f64::consts::PI * d / (2.0 * die_area_mm2).sqrt();
    n.max(0.0).floor() as u32
}

/// Good dies per wafer combining geometry and Murphy yield.
pub fn good_dies_per_wafer(die_area_mm2: f64, wafer_diameter_mm: f64, d0_per_cm2: f64) -> u32 {
    let gross = dies_per_wafer(die_area_mm2, wafer_diameter_mm) as f64;
    (gross * murphy_yield(die_area_mm2, d0_per_cm2)).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_die_yields_27_good_dies() {
        // Appendix B: "~27 of 62 dies", $629 per good die at $16,988/wafer.
        let good = good_dies_per_wafer(827.08, 300.0, 0.11);
        assert_eq!(good, 26.max(good).min(27), "good = {good}");
        assert!((26..=27).contains(&good));
        let cost_per_die = 16_988.0 / good as f64;
        assert!((cost_per_die - 629.0).abs() < 30.0, "{cost_per_die}");
    }

    #[test]
    fn yield_decreases_with_area() {
        assert!(murphy_yield(100.0, 0.11) > murphy_yield(800.0, 0.11));
    }

    #[test]
    fn yield_decreases_with_defects() {
        assert!(murphy_yield(800.0, 0.05) > murphy_yield(800.0, 0.2));
    }

    #[test]
    fn tiny_die_yields_nearly_one() {
        assert!(murphy_yield(1.0, 0.11) > 0.99);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(murphy_yield(0.0, 0.11), 1.0);
        assert_eq!(dies_per_wafer(0.0, 300.0), 0);
    }

    #[test]
    fn small_dies_pack_many() {
        // An 814 mm² H100-class die also lands near 60; a 100 mm² die packs
        // several hundred.
        assert!(dies_per_wafer(100.0, 300.0) > 500);
    }

    #[test]
    fn huge_die_fits_zero_or_few() {
        assert!(dies_per_wafer(70_000.0, 300.0) <= 1);
    }
}
