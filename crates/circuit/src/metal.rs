//! The back-end-of-line metal stack (Figure 7 / §3.2).
//!
//! Each layer carries a half-pitch and the lithography class needed to
//! pattern it; the class determines both photomask cost (litho crate) and
//! routing capacity (route module). The Sea-of-Neurons architecture reserves
//! M8–M11 as the metal-embedding layers: cheap 193i DUV patterning, above
//! the weight-independent prefabricated cells, below the power grid.

use serde::Serialize;

/// Lithographic patterning class of one mask layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum LithoClass {
    /// Extreme ultraviolet, single exposure.
    EuvSe,
    /// 193 nm immersion, self-aligned quadruple patterning.
    Saqp193i,
    /// 193 nm immersion, self-aligned double patterning (or LELE).
    Sadp193i,
    /// 193 nm immersion, single exposure.
    Se193i,
}

impl LithoClass {
    /// Relative mask cost in "DUV single-exposure units" (EUV reticles cost
    /// ~6× a standard 193i reticle; multi-patterning uses multiple masks but
    /// each is a standard DUV reticle — the *count* is handled by
    /// `masks_per_layer`).
    pub fn cost_weight(self) -> f64 {
        match self {
            LithoClass::EuvSe => 6.0,
            _ => 1.0,
        }
    }

    /// Photomasks needed to pattern one such layer.
    pub fn masks_per_layer(self) -> u32 {
        match self {
            LithoClass::EuvSe => 1,
            LithoClass::Saqp193i => 4,
            LithoClass::Sadp193i => 2,
            LithoClass::Se193i => 1,
        }
    }
}

/// One metal (or device/contact) patterning level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MetalLayer {
    /// Name ("M8", "VIA7", …).
    pub name: &'static str,
    /// Half-pitch in nanometres (wire width = space = half-pitch).
    pub half_pitch_nm: f64,
    /// Patterning class.
    pub litho: LithoClass,
    /// True for the M8–M11 metal-embedding levels.
    pub metal_embedding: bool,
}

impl MetalLayer {
    /// Routing tracks available per millimetre of die width on this layer.
    pub fn tracks_per_mm(&self) -> f64 {
        1e6 / (2.0 * self.half_pitch_nm)
    }
}

/// The full per-chip mask stack.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetalStack {
    layers: Vec<MetalLayer>,
    feol_euv_masks: u32,
    feol_duv_masks: u32,
}

impl MetalStack {
    /// The 5 nm stack the paper describes: FEOL devices/contacts (EUV +
    /// DUV multipatterning), M0–M3 at ~20 nm half-pitch (SAQP/EUV), M4–M9 at
    /// ~40 nm (SADP), M10–M11 at ~60 nm (193i SE), M12+ power/IO.
    ///
    /// Mask totals are calibrated to the paper's Appendix B accounting:
    /// 12 EUV + 58 DUV masks = 70 masks ≙ 130 normalized DUV units, with the
    /// metal-embedding portion = 10 DUV masks (VIA7, M8 mandrel/cut, VIA8,
    /// M9 mandrel/cut, VIA9, M10, VIA10, M11).
    pub fn n5() -> Self {
        let mut layers = Vec::new();
        // Lower metals (not embedding):
        for (name, hp, litho) in [
            ("M0", 20.0, LithoClass::EuvSe),
            ("M1", 20.0, LithoClass::EuvSe),
            ("M2", 20.0, LithoClass::Saqp193i),
            ("M3", 20.0, LithoClass::Saqp193i),
            ("M4", 40.0, LithoClass::Sadp193i),
            ("M5", 40.0, LithoClass::Sadp193i),
            ("M6", 40.0, LithoClass::Sadp193i),
            ("M7", 40.0, LithoClass::Sadp193i),
        ] {
            layers.push(MetalLayer {
                name,
                half_pitch_nm: hp,
                litho,
                metal_embedding: false,
            });
        }
        // Metal-embedding levels M8-M11 (+ their vias), all plain DUV:
        for (name, hp, litho) in [
            ("VIA7", 40.0, LithoClass::Se193i),
            ("M8", 40.0, LithoClass::Sadp193i),
            ("VIA8", 40.0, LithoClass::Se193i),
            ("M9", 40.0, LithoClass::Sadp193i),
            ("VIA9", 48.0, LithoClass::Se193i),
            ("M10", 60.0, LithoClass::Se193i),
            ("VIA10", 60.0, LithoClass::Se193i),
            ("M11", 60.0, LithoClass::Se193i),
        ] {
            layers.push(MetalLayer {
                name,
                half_pitch_nm: hp,
                litho,
                metal_embedding: true,
            });
        }
        // Top power/clock/IO metals:
        for name in ["M12", "M13", "M14", "M15", "TM0"] {
            layers.push(MetalLayer {
                name,
                half_pitch_nm: 200.0,
                litho: LithoClass::Se193i,
                metal_embedding: false,
            });
        }
        MetalStack {
            layers,
            feol_euv_masks: 10,
            feol_duv_masks: 27,
        }
    }

    /// All patterning levels, bottom-up.
    pub fn layers(&self) -> &[MetalLayer] {
        &self.layers
    }

    /// The metal-embedding levels only.
    pub fn embedding_layers(&self) -> impl Iterator<Item = &MetalLayer> {
        self.layers.iter().filter(|l| l.metal_embedding)
    }

    /// Total photomask count: FEOL + one per BEOL patterning exposure.
    pub fn total_masks(&self) -> u32 {
        self.feol_euv_masks
            + self.feol_duv_masks
            + self
                .layers
                .iter()
                .map(|l| l.litho.masks_per_layer())
                .sum::<u32>()
    }

    /// EUV photomask count (FEOL EUV + EUV-patterned metals).
    pub fn euv_masks(&self) -> u32 {
        self.feol_euv_masks
            + self
                .layers
                .iter()
                .filter(|l| l.litho == LithoClass::EuvSe)
                .map(|l| l.litho.masks_per_layer())
                .sum::<u32>()
    }

    /// DUV photomask count.
    pub fn duv_masks(&self) -> u32 {
        self.total_masks() - self.euv_masks()
    }

    /// Masks belonging to the metal-embedding levels (all DUV).
    pub fn embedding_masks(&self) -> u32 {
        self.embedding_layers()
            .map(|l| l.litho.masks_per_layer())
            .sum()
    }

    /// Masks shared across chips under Sea-of-Neurons (everything except
    /// the embedding levels).
    pub fn homogeneous_masks(&self) -> u32 {
        self.total_masks() - self.embedding_masks()
    }

    /// Total mask-set value in normalized DUV units (EUV weighted 6×).
    pub fn normalized_duv_units(&self) -> f64 {
        self.euv_masks() as f64 * LithoClass::EuvSe.cost_weight() + self.duv_masks() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_mask_accounting_matches_appendix_b() {
        let s = MetalStack::n5();
        assert_eq!(s.euv_masks(), 12, "12 EUV masks");
        assert_eq!(s.duv_masks(), 58, "58 DUV masks");
        assert_eq!(s.total_masks(), 70, "70-mask 5nm stack");
        assert_eq!(s.normalized_duv_units(), 130.0, "58 + 12*6 = 130 units");
    }

    #[test]
    fn embedding_is_ten_duv_masks() {
        let s = MetalStack::n5();
        assert_eq!(s.embedding_masks(), 10);
        assert_eq!(s.homogeneous_masks(), 60, "60 of 70 masks shared");
        // All embedding masks are plain DUV (no EUV to re-spin).
        assert!(s.embedding_layers().all(|l| l.litho != LithoClass::EuvSe));
    }

    #[test]
    fn embedding_fraction_is_7_7_percent() {
        let s = MetalStack::n5();
        let frac = s.embedding_masks() as f64 / s.normalized_duv_units();
        assert!((frac - 0.077).abs() < 0.001, "frac = {frac:.4}");
    }

    #[test]
    fn tracks_per_mm() {
        let m10 = MetalLayer {
            name: "M10",
            half_pitch_nm: 60.0,
            litho: LithoClass::Se193i,
            metal_embedding: true,
        };
        assert!((m10.tracks_per_mm() - 8333.3).abs() < 1.0);
    }

    #[test]
    fn litho_mask_multiplicity() {
        assert_eq!(LithoClass::Saqp193i.masks_per_layer(), 4);
        assert_eq!(LithoClass::Sadp193i.masks_per_layer(), 2);
        assert_eq!(LithoClass::EuvSe.masks_per_layer(), 1);
    }

    #[test]
    fn euv_masks_are_never_embedding() {
        // The headline Sea-of-Neurons property: every EUV mask is shared.
        let s = MetalStack::n5();
        for l in s.layers() {
            if l.litho == LithoClass::EuvSe {
                assert!(!l.metal_embedding, "{} is EUV and embedding", l.name);
            }
        }
    }
}
