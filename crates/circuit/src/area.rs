//! Gate-budget → silicon-area conversion and SRAM macro models.

use crate::tech::TechNode;
use hnlpu_arith::GateBudget;

/// Area of a logic block in mm².
///
/// `regular_fabric` selects the higher packed density achieved by the
/// regular, wire-dominated HN popcount fabric (see [`TechNode`]); leave it
/// `false` for control/VEX-style random logic.
///
/// # Example
///
/// ```
/// use hnlpu_arith::GateBudget;
/// use hnlpu_circuit::{logic_area_mm2, TechNode};
/// let area = logic_area_mm2(&GateBudget::fa(1_000_000), &TechNode::n5(), false);
/// assert!(area > 0.0 && area < 1.0);
/// ```
pub fn logic_area_mm2(budget: &GateBudget, tech: &TechNode, regular_fabric: bool) -> f64 {
    let density = if regular_fabric {
        tech.regular_fabric_tr_per_mm2()
    } else {
        tech.effective_tr_per_mm2()
    };
    budget.transistor_count() as f64 / density
}

/// An on-chip SRAM macro (the paper's Attention Buffer is 20 000 banks of
/// 16 KB, 1W1R, 32-bit ports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramMacro {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Number of independently-ported banks.
    pub banks: u32,
    /// Access width per bank in bits.
    pub port_bits: u32,
}

impl SramMacro {
    /// Silicon area in mm² at `tech` (bit cells + periphery).
    pub fn area_mm2(&self, tech: &TechNode) -> f64 {
        self.bytes as f64 * 8.0 * tech.sram_bit_um2 / 1e6
    }

    /// Energy of reading `bytes` from the macro, in joules.
    pub fn read_energy_j(&self, bytes: u64, tech: &TechNode) -> f64 {
        bytes as f64 * tech.sram_read_pj_per_byte * 1e-12
    }

    /// Peak bandwidth in bytes per second: every bank streams its port
    /// width each cycle.
    pub fn peak_bandwidth_bytes_per_s(&self, tech: &TechNode) -> f64 {
        self.banks as f64 * (self.port_bits as f64 / 8.0) * tech.clock_hz
    }

    /// Steady-state power at a sustained access rate of `bytes_per_s`:
    /// bank clock/periphery overhead plus array access energy.
    pub fn power_w(&self, bytes_per_s: f64, tech: &TechNode) -> f64 {
        self.banks as f64 * tech.sram_bank_overhead_w
            + bytes_per_s * tech.sram_read_pj_per_byte * 1e-12
    }
}

/// Build the SRAM macro with the paper's Attention Buffer geometry scaled to
/// `bytes` (16 KB banks, 32-bit 1W1R ports).
pub fn sram_macro(bytes: u64) -> SramMacro {
    let bank_bytes = 16 * 1024;
    SramMacro {
        bytes,
        banks: bytes.div_ceil(bank_bytes) as u32,
        port_bits: 32,
    }
}

/// The paper's Attention Buffer exactly as §4.3 describes it: 20,000 banks
/// of 16 KB ("320 MB" after rounding), 1W1R, 32-bit ports.
pub fn attention_buffer() -> SramMacro {
    SramMacro {
        bytes: 20_000 * 16 * 1024,
        banks: 20_000,
        port_bits: 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_buffer_geometry() {
        // "320 MB" buffer => 20,000 banks of 16 KB (§4.3).
        let m = attention_buffer();
        assert_eq!(m.banks, 20_000);
        assert!((m.bytes as f64 - 320e6).abs() / 320e6 < 0.05);
    }

    #[test]
    fn attention_buffer_bandwidth_hits_80_tbps() {
        // §7.1: the buffer sustains 80 TB/s.
        let m = attention_buffer();
        let bw = m.peak_bandwidth_bytes_per_s(&TechNode::n5());
        assert!(bw >= 79e12, "bw = {bw:.3e}");
    }

    #[test]
    fn attention_buffer_area_near_paper() {
        // Table 1: Attention Buffer = 136.11 mm².
        let m = attention_buffer();
        let area = m.area_mm2(&TechNode::n5());
        assert!(
            (area - 136.11).abs() / 136.11 < 0.05,
            "area = {area:.2} mm²"
        );
    }

    #[test]
    fn logic_area_monotone_in_budget() {
        let t = TechNode::n5();
        let a1 = logic_area_mm2(&GateBudget::fa(1000), &t, false);
        let a2 = logic_area_mm2(&GateBudget::fa(2000), &t, false);
        assert!(a2 > a1);
    }

    #[test]
    fn regular_fabric_is_denser() {
        let t = TechNode::n5();
        let b = GateBudget::fa(1_000_000);
        assert!(logic_area_mm2(&b, &t, true) < logic_area_mm2(&b, &t, false));
    }

    #[test]
    fn attention_buffer_power_near_paper() {
        // Table 1: Attention Buffer = 85.73 W. The VEX streams 32 KV heads
        // per cycle (~4 KB/cycle = 4 TB/s).
        let m = attention_buffer();
        let p = m.power_w(4.0e12, &TechNode::n5());
        assert!((p - 85.73).abs() / 85.73 < 0.05, "power = {p:.2} W");
    }

    #[test]
    fn read_energy_scales_linearly() {
        let m = sram_macro(1024 * 1024);
        let t = TechNode::n5();
        let e1 = m.read_energy_j(100, &t);
        let e2 = m.read_energy_j(200, &t);
        assert!((e2 - 2.0 * e1).abs() < 1e-18);
    }
}
