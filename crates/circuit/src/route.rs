//! Routing-demand and congestion estimation for the metal-embedding layers.
//!
//! §7.1 reports that ME-layer (M8–M11) routing density stays below 70%,
//! validating that every weight wire fits. This module reproduces that
//! check: demand = total wirelength per layer, supply = tracks × die span.

use crate::metal::MetalStack;
use crate::netlist::Netlist;

/// Per-layer routing utilization report.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteReport {
    /// `(layer name, utilization in 0..)` for every routed layer.
    pub utilization: Vec<(&'static str, f64)>,
    /// Maximum utilization across routed layers.
    pub peak_utilization: f64,
    /// Whether all layers are below the congestion limit.
    pub congestion_free: bool,
    /// Overflowed layers (utilization above the limit).
    pub overflows: Vec<&'static str>,
}

/// A global router over a rectangular die.
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    die_width_mm: f64,
    die_height_mm: f64,
    /// Utilization above which a layer counts as congested (paper: 0.7).
    pub congestion_limit: f64,
}

impl Router {
    /// A router for a `width × height` mm die.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive.
    pub fn new(die_width_mm: f64, die_height_mm: f64) -> Self {
        assert!(
            die_width_mm > 0.0 && die_height_mm > 0.0,
            "die must have positive dimensions"
        );
        Router {
            die_width_mm,
            die_height_mm,
            congestion_limit: 0.7,
        }
    }

    /// Routing supply of one layer in micrometres of track length:
    /// tracks-per-mm × die width × die height (all tracks run the die span).
    fn supply_um(&self, tracks_per_mm: f64) -> f64 {
        tracks_per_mm * self.die_width_mm * self.die_height_mm * 1000.0
    }

    /// Evaluate utilization of `netlist` against the stack's layers.
    ///
    /// Nets whose `layer` index falls outside the stack are counted against
    /// the topmost routed layer (defensive: the compiler should never emit
    /// them).
    pub fn route(&self, netlist: &Netlist, stack: &MetalStack) -> RouteReport {
        let layers = stack.layers();
        let by_layer = netlist.wirelength_by_layer();
        let mut utilization = Vec::new();
        let mut peak = 0.0f64;
        let mut overflows = Vec::new();
        for (idx, layer) in layers.iter().enumerate() {
            let mut demand = by_layer.get(&idx).copied().unwrap_or(0.0);
            if idx == layers.len() - 1 {
                // Fold out-of-range nets into the top layer.
                demand += by_layer
                    .iter()
                    .filter(|(&l, _)| l >= layers.len())
                    .map(|(_, &v)| v)
                    .sum::<f64>();
            }
            if demand == 0.0 {
                continue;
            }
            let util = demand / self.supply_um(layer.tracks_per_mm());
            utilization.push((layer.name, util));
            peak = peak.max(util);
            if util > self.congestion_limit {
                overflows.push(layer.name);
            }
        }
        RouteReport {
            congestion_free: overflows.is_empty(),
            peak_utilization: peak,
            utilization,
            overflows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CellId;

    fn me_layer_index(stack: &MetalStack, name: &str) -> usize {
        stack
            .layers()
            .iter()
            .position(|l| l.name == name)
            .expect("layer exists")
    }

    #[test]
    fn empty_netlist_is_congestion_free() {
        let r = Router::new(28.0, 29.5);
        let rep = r.route(&Netlist::new(), &MetalStack::n5());
        assert!(rep.congestion_free);
        assert_eq!(rep.peak_utilization, 0.0);
    }

    #[test]
    fn moderate_demand_fits() {
        let stack = MetalStack::n5();
        let r = Router::new(28.0, 29.5);
        let m8 = me_layer_index(&stack, "M8");
        let mut nl = Netlist::new();
        // 1M wires of 1mm each on M8: demand 1e9 um; supply at 40nm hp:
        // 12,500 tracks/mm * 28 * 29.5 * 1000 um ≈ 1.03e10 um -> ~10%.
        for i in 0..1000 {
            nl.add_net(CellId(i), vec![CellId(i + 1_000_000)], m8, 1_000_000.0);
        }
        let rep = r.route(&nl, &stack);
        assert!(rep.congestion_free, "peak={}", rep.peak_utilization);
        assert!(rep.peak_utilization > 0.05 && rep.peak_utilization < 0.2);
    }

    #[test]
    fn overload_is_flagged() {
        let stack = MetalStack::n5();
        let r = Router::new(1.0, 1.0);
        let m10 = me_layer_index(&stack, "M10");
        let mut nl = Netlist::new();
        // Supply on 1mm² M10: 8333 tracks * 1mm = 8.3e6 um.
        nl.add_net(CellId(0), vec![CellId(1)], m10, 9.0e6);
        let rep = r.route(&nl, &stack);
        assert!(!rep.congestion_free);
        assert_eq!(rep.overflows, vec!["M10"]);
    }

    #[test]
    fn out_of_range_layer_folds_to_top() {
        let stack = MetalStack::n5();
        let r = Router::new(10.0, 10.0);
        let mut nl = Netlist::new();
        nl.add_net(CellId(0), vec![CellId(1)], 999, 100.0);
        let rep = r.route(&nl, &stack);
        assert_eq!(rep.utilization.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn zero_die_rejected() {
        Router::new(0.0, 1.0);
    }
}
