//! A minimal cell/net graph.
//!
//! The metal-embedding compiler emits one net per hardwired weight
//! (input signal → POPCNT region port). This module stores that netlist and
//! answers the structural questions sign-off needs: wire counts per layer,
//! total wirelength, fan-out distributions.

use std::collections::HashMap;

/// Identifier of a cell (port) in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Identifier of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// A point-to-multipoint metal connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Driving cell.
    pub source: CellId,
    /// Driven cells.
    pub sinks: Vec<CellId>,
    /// Metal layer index (into the owning stack's layer list) this net is
    /// routed on.
    pub layer: usize,
    /// Estimated routed length in micrometres.
    pub length_um: f64,
}

/// A growing netlist.
///
/// # Example
///
/// ```
/// use hnlpu_circuit::{Netlist, CellId};
/// let mut nl = Netlist::new();
/// let n = nl.add_net(CellId(0), vec![CellId(1), CellId(2)], 9, 120.0);
/// assert_eq!(nl.net(n).unwrap().sinks.len(), 2);
/// assert_eq!(nl.wirelength_um(), 120.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    nets: Vec<Net>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a net; returns its id.
    pub fn add_net(
        &mut self,
        source: CellId,
        sinks: Vec<CellId>,
        layer: usize,
        length_um: f64,
    ) -> NetId {
        self.nets.push(Net {
            source,
            sinks,
            layer,
            length_um,
        });
        NetId(self.nets.len() as u32 - 1)
    }

    /// Look up a net.
    pub fn net(&self, id: NetId) -> Option<&Net> {
        self.nets.get(id.0 as usize)
    }

    /// Number of nets.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// True when no nets exist.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Iterate nets.
    pub fn iter(&self) -> impl Iterator<Item = &Net> {
        self.nets.iter()
    }

    /// Total routed wirelength.
    pub fn wirelength_um(&self) -> f64 {
        self.nets.iter().map(|n| n.length_um).sum()
    }

    /// Wirelength aggregated per layer index.
    pub fn wirelength_by_layer(&self) -> HashMap<usize, f64> {
        let mut m = HashMap::new();
        for n in &self.nets {
            *m.entry(n.layer).or_insert(0.0) += n.length_um;
        }
        m
    }

    /// Largest sink count on any net.
    pub fn max_fanout(&self) -> usize {
        self.nets.iter().map(|n| n.sinks.len()).max().unwrap_or(0)
    }
}

impl Extend<Net> for Netlist {
    fn extend<T: IntoIterator<Item = Net>>(&mut self, iter: T) {
        self.nets.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut nl = Netlist::new();
        assert!(nl.is_empty());
        let a = nl.add_net(CellId(0), vec![CellId(1)], 8, 50.0);
        let b = nl.add_net(CellId(2), vec![CellId(3), CellId(4)], 9, 70.0);
        assert_eq!(nl.len(), 2);
        assert_eq!(nl.net(a).unwrap().layer, 8);
        assert_eq!(nl.net(b).unwrap().sinks.len(), 2);
        assert!(nl.net(NetId(99)).is_none());
    }

    #[test]
    fn wirelength_aggregation() {
        let mut nl = Netlist::new();
        nl.add_net(CellId(0), vec![CellId(1)], 8, 50.0);
        nl.add_net(CellId(2), vec![CellId(3)], 8, 25.0);
        nl.add_net(CellId(4), vec![CellId(5)], 10, 100.0);
        assert_eq!(nl.wirelength_um(), 175.0);
        let by = nl.wirelength_by_layer();
        assert_eq!(by[&8], 75.0);
        assert_eq!(by[&10], 100.0);
    }

    #[test]
    fn fanout() {
        let mut nl = Netlist::new();
        assert_eq!(nl.max_fanout(), 0);
        nl.add_net(CellId(0), vec![CellId(1), CellId(2), CellId(3)], 8, 1.0);
        assert_eq!(nl.max_fanout(), 3);
    }

    #[test]
    fn extend_trait() {
        let mut nl = Netlist::new();
        nl.extend(vec![Net {
            source: CellId(0),
            sinks: vec![CellId(1)],
            layer: 9,
            length_um: 3.0,
        }]);
        assert_eq!(nl.len(), 1);
    }
}
