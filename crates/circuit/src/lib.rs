//! Circuit/physical-design substrate for the HNLPU reproduction.
//!
//! The paper characterizes HNLPU with a commercial ASIC flow (Design
//! Compiler, IC Compiler, PrimeTime PX, Memory Compiler) at 5 nm. This crate
//! reproduces that flow's *outputs* with documented analytical models:
//!
//! * [`tech`] — technology-node calibration (density, energies, leakage,
//!   SRAM bit cells) anchored to public 5 nm figures and the paper's
//!   published per-block results.
//! * [`area`] — gate-budget → silicon-area conversion and SRAM macros.
//! * [`power`] — dynamic energy / leakage / power-density estimation.
//! * [`netlist`] — a minimal cell/net graph used for metal-embedding wire
//!   netlists.
//! * [`metal`] — the M0–TM0 metal stack with per-layer half-pitch and
//!   lithography class (feeds both routing and photomask costing).
//! * [`route`] — routing-demand and congestion estimation (the paper's
//!   "<70% ME-layer density" check).
//! * [`signoff`] — timing/power-density/parasitics sign-off checks
//!   replicating §7.1.
//! * [`yield_model`] — Murphy defect-yield and dies-per-wafer geometry.

#![warn(missing_docs)]
pub mod area;
pub mod metal;
pub mod netlist;
pub mod power;
pub mod route;
pub mod signoff;
pub mod tech;
pub mod thermal;
pub mod yield_model;

pub use area::{attention_buffer, logic_area_mm2, sram_macro, SramMacro};
pub use metal::{LithoClass, MetalLayer, MetalStack};
pub use netlist::{CellId, Net, NetId, Netlist};
pub use power::{PowerEstimate, SwitchingActivity};
pub use route::{RouteReport, Router};
pub use signoff::{SignoffInput, SignoffReport};
pub use tech::TechNode;
pub use thermal::{evaluate as thermal_evaluate, ThermalReport, ThermalStack};
pub use yield_model::{dies_per_wafer, murphy_yield};
