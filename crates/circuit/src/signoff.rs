//! Sign-off checks reproducing §7.1's layout-characteristics claims:
//! timing closure at 1 GHz (SSG corner), congestion-free routing, bounded
//! power density, manageable parasitics, and Murphy-model manufacturability.

use crate::route::RouteReport;
use crate::tech::TechNode;
use crate::yield_model::murphy_yield;

/// Everything the sign-off evaluation needs about a finished chip design.
#[derive(Debug, Clone, PartialEq)]
pub struct SignoffInput {
    /// Deepest pipeline stage in adder-equivalent logic levels.
    pub critical_path_stages: u32,
    /// Routing report from the global router.
    pub route: RouteReport,
    /// Total chip power, watts.
    pub total_power_w: f64,
    /// Peak block power density, W/mm².
    pub peak_density_w_per_mm2: f64,
    /// Die area, mm².
    pub die_area_mm2: f64,
    /// Average embedding-wire length, µm (for parasitic estimation).
    pub avg_wire_length_um: f64,
}

/// Sign-off verdict with the individual check results.
#[derive(Debug, Clone, PartialEq)]
pub struct SignoffReport {
    /// Worst-corner timing slack in picoseconds (≥ 0 closes timing).
    pub timing_slack_ps: f64,
    /// Whether routing is congestion-free (< 70% on every layer).
    pub congestion_free: bool,
    /// Average power density, W/mm².
    pub avg_density_w_per_mm2: f64,
    /// Whether power density is within the 2.5D liquid-cooling envelope.
    pub thermal_ok: bool,
    /// Estimated average wire resistance, ohms.
    pub avg_wire_resistance_ohm: f64,
    /// Estimated average wire capacitance, femtofarads.
    pub avg_wire_capacitance_ff: f64,
    /// Murphy yield of the die at the tech's defect density.
    pub murphy_yield: f64,
    /// Every check passed.
    pub clean: bool,
}

/// Power-density cooling limit for cold-plate 2.5D assemblies, W/mm²
/// (paper: avg 0.3, peak 1.4 observed, "well within" limits).
pub const DLC_PEAK_LIMIT_W_PER_MM2: f64 = 2.0;

/// Defect density used for Murphy yield, defects/cm² (paper: 0.11).
pub const DEFECT_DENSITY_PER_CM2: f64 = 0.11;

/// Run all §7.1 checks.
pub fn signoff(input: &SignoffInput, tech: &TechNode) -> SignoffReport {
    // Timing: per-stage registers mean the critical path is one pipeline
    // stage of combinational logic; SSG corner adds 30% to stage delay.
    let ssg_derate = 1.3;
    let path_ps = input.critical_path_stages as f64 * tech.stage_delay_ps * ssg_derate;
    let timing_slack_ps = tech.period_ps() - path_ps;

    let avg_density = if input.die_area_mm2 > 0.0 {
        input.total_power_w / input.die_area_mm2
    } else {
        0.0
    };
    let thermal_ok = input.peak_density_w_per_mm2 <= DLC_PEAK_LIMIT_W_PER_MM2;

    let r = input.avg_wire_length_um * tech.wire_ohm_per_um;
    let c = input.avg_wire_length_um * tech.wire_ff_per_um;

    let y = murphy_yield(input.die_area_mm2, DEFECT_DENSITY_PER_CM2);

    let clean = timing_slack_ps >= 0.0 && input.route.congestion_free && thermal_ok && y > 0.0;
    SignoffReport {
        timing_slack_ps,
        congestion_free: input.route.congestion_free,
        avg_density_w_per_mm2: avg_density,
        thermal_ok,
        avg_wire_resistance_ohm: r,
        avg_wire_capacitance_ff: c,
        murphy_yield: y,
        clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteReport;

    fn clean_input() -> SignoffInput {
        SignoffInput {
            critical_path_stages: 20,
            route: RouteReport {
                utilization: vec![("M8", 0.55)],
                peak_utilization: 0.55,
                congestion_free: true,
                overflows: vec![],
            },
            total_power_w: 308.39,
            peak_density_w_per_mm2: 1.4,
            die_area_mm2: 827.08,
            avg_wire_length_um: 16.0,
        }
    }

    #[test]
    fn paper_chip_signs_off() {
        let rep = signoff(&clean_input(), &TechNode::n5());
        assert!(rep.clean, "{rep:?}");
        assert!(rep.timing_slack_ps > 0.0);
        // Paper: avg power density 0.3 W/mm² (Table 1: 308 W over 827 mm²
        // gives 0.37 — the paper rounds block-level; accept the band).
        assert!(rep.avg_density_w_per_mm2 > 0.2 && rep.avg_density_w_per_mm2 < 0.5);
    }

    #[test]
    fn parasitics_near_paper_values() {
        // Paper: avg R = 164 ohm, C = 7.8 fF on ME wires.
        let rep = signoff(&clean_input(), &TechNode::n5());
        assert!(
            (rep.avg_wire_resistance_ohm - 164.0).abs() < 60.0,
            "R = {}",
            rep.avg_wire_resistance_ohm
        );
        assert!(
            (rep.avg_wire_capacitance_ff - 7.8).abs() < 3.0,
            "C = {}",
            rep.avg_wire_capacitance_ff
        );
    }

    #[test]
    fn deep_pipeline_fails_timing() {
        let mut input = clean_input();
        input.critical_path_stages = 60;
        let rep = signoff(&input, &TechNode::n5());
        assert!(rep.timing_slack_ps < 0.0);
        assert!(!rep.clean);
    }

    #[test]
    fn hot_chip_fails_thermal() {
        let mut input = clean_input();
        input.peak_density_w_per_mm2 = 3.0;
        let rep = signoff(&input, &TechNode::n5());
        assert!(!rep.thermal_ok);
        assert!(!rep.clean);
    }

    #[test]
    fn congestion_propagates() {
        let mut input = clean_input();
        input.route.congestion_free = false;
        assert!(!signoff(&input, &TechNode::n5()).clean);
    }

    #[test]
    fn murphy_yield_for_827mm2_die() {
        // Appendix B: ~43% yield for the 827 mm² die at D0 = 0.11/cm².
        let rep = signoff(&clean_input(), &TechNode::n5());
        assert!(
            (rep.murphy_yield - 0.43).abs() < 0.02,
            "yield = {}",
            rep.murphy_yield
        );
    }
}
