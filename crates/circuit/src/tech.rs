//! Technology-node calibration.
//!
//! Every number here is either a public 5 nm figure cited by the paper or a
//! calibration chosen so the analytical flow reproduces the paper's
//! published post-layout results (Table 1, Figure 12). EXPERIMENTS.md lists
//! the anchors next to measured outputs.

use serde::Serialize;

/// A semiconductor technology node with the constants the modeling flow
/// needs.
///
/// # Example
///
/// ```
/// use hnlpu_circuit::TechNode;
/// let n5 = TechNode::n5();
/// assert_eq!(n5.name, "N5");
/// assert!((n5.mtr_per_mm2 - 138.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TechNode {
    /// Human-readable name ("N5").
    pub name: &'static str,
    /// Logic transistor density in millions of transistors per mm²
    /// (138 MTr/mm² for high-density 5 nm, the paper's §2.2 anchor).
    pub mtr_per_mm2: f64,
    /// Effective area of one SRAM bit including array periphery, in µm².
    /// (5 nm HD 6T bit cell ≈ 0.021 µm²; the Attention Buffer's 1W1R banks
    /// use 8T cells, ≈ 0.05 µm²/bit with periphery — calibrated to Table 1's
    /// 136.11 mm² for 320 MB.)
    pub sram_bit_um2: f64,
    /// Fraction of theoretical logic density achieved after placement and
    /// routing of datapath-heavy logic (EDA utilization × routing overhead).
    pub layout_efficiency: f64,
    /// Bit-serial datapath packing advantage: post-synthesis optimization of
    /// the HN popcount fabric (wire-dominated, regular, low-activity) packs
    /// denser than random logic. Calibrated so the HN array reproduces the
    /// paper's 573.16 mm²/chip (Table 1).
    pub regular_fabric_density_boost: f64,
    /// Dynamic energy per full-adder evaluation, femtojoules.
    pub fa_energy_fj: f64,
    /// Dynamic energy per flip-flop toggle, femtojoules.
    pub dff_energy_fj: f64,
    /// SRAM read energy per byte, picojoules (per-access array energy; bank
    /// clock/periphery overhead is separate).
    pub sram_read_pj_per_byte: f64,
    /// Static + clock overhead per active SRAM bank, watts (calibrated so
    /// the 20,000-bank Attention Buffer reproduces Table 1's 85.73 W).
    pub sram_bank_overhead_w: f64,
    /// HBM access energy per byte, picojoules (~3.5 pJ/bit ≈ 28 pJ/B).
    pub hbm_pj_per_byte: f64,
    /// Leakage power per million transistors, watts.
    pub leakage_w_per_mtr: f64,
    /// Nominal clock frequency, Hz (1.0 GHz signoff per §7.1).
    pub clock_hz: f64,
    /// Gate delay per adder stage at the worst-case corner, picoseconds
    /// (used by the timing check: depth × delay ≤ period).
    pub stage_delay_ps: f64,
    /// Wire resistance per micrometre on ME layers, ohms (thin 40 nm
    /// half-pitch copper runs ~10 Ω/µm).
    pub wire_ohm_per_um: f64,
    /// Wire capacitance per micrometre on ME layers, femtofarads.
    pub wire_ff_per_um: f64,
}

impl TechNode {
    /// The 5 nm-class node the paper evaluates at.
    pub fn n5() -> Self {
        TechNode {
            name: "N5",
            mtr_per_mm2: 138.0,
            sram_bit_um2: 0.05,
            layout_efficiency: 0.62,
            regular_fabric_density_boost: 2.05,
            fa_energy_fj: 1.1,
            dff_energy_fj: 1.8,
            sram_read_pj_per_byte: 0.15,
            sram_bank_overhead_w: 0.00422,
            hbm_pj_per_byte: 28.0,
            leakage_w_per_mtr: 1.1e-4,
            clock_hz: 1.0e9,
            stage_delay_ps: 22.0,
            wire_ohm_per_um: 10.25,
            wire_ff_per_um: 0.49,
        }
    }

    /// A 7 nm-class node for scaling studies (lower density, higher energy).
    pub fn n7() -> Self {
        TechNode {
            name: "N7",
            mtr_per_mm2: 91.0,
            sram_bit_um2: 0.068,
            layout_efficiency: 0.62,
            regular_fabric_density_boost: 2.05,
            fa_energy_fj: 1.7,
            dff_energy_fj: 2.6,
            sram_read_pj_per_byte: 0.22,
            sram_bank_overhead_w: 0.0055,
            hbm_pj_per_byte: 30.0,
            leakage_w_per_mtr: 1.4e-4,
            clock_hz: 0.9e9,
            stage_delay_ps: 28.0,
            wire_ohm_per_um: 8.0,
            wire_ff_per_um: 0.52,
        }
    }

    /// Clock period in picoseconds.
    pub fn period_ps(&self) -> f64 {
        1e12 / self.clock_hz
    }

    /// Effective placed density in transistors per mm² for random logic.
    pub fn effective_tr_per_mm2(&self) -> f64 {
        self.mtr_per_mm2 * 1e6 * self.layout_efficiency
    }

    /// Effective placed density for regular bit-serial fabrics (HN arrays).
    pub fn regular_fabric_tr_per_mm2(&self) -> f64 {
        self.effective_tr_per_mm2() * self.regular_fabric_density_boost
    }
}

impl Default for TechNode {
    fn default() -> Self {
        TechNode::n5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n5_anchors() {
        let t = TechNode::n5();
        assert_eq!(t.clock_hz, 1.0e9);
        assert_eq!(t.period_ps(), 1000.0);
        assert!(t.effective_tr_per_mm2() > 5e7);
    }

    #[test]
    fn n7_is_less_dense_than_n5() {
        assert!(TechNode::n7().mtr_per_mm2 < TechNode::n5().mtr_per_mm2);
    }

    #[test]
    fn default_is_n5() {
        assert_eq!(TechNode::default(), TechNode::n5());
    }

    #[test]
    fn regular_fabric_density_exceeds_random_logic() {
        let t = TechNode::n5();
        assert!(t.regular_fabric_tr_per_mm2() > t.effective_tr_per_mm2());
    }
}
