//! The simulated machine description.

use hnlpu_model::TransformerConfig;
use serde::Serialize;

/// CXL 3.0 link parameters (§4.2: <100 ns latency, 128 GB/s per ×16 link).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CxlParams {
    /// Port-to-port PHY latency, nanoseconds.
    pub latency_ns: f64,
    /// Per-message protocol/flit-packing overhead, nanoseconds (CNSim-style
    /// protocol modeling; calibrated so a 4-chip all-reduce of a 2 KB
    /// payload costs ~0.6 µs).
    pub protocol_ns: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl Default for CxlParams {
    fn default() -> Self {
        CxlParams {
            latency_ns: 100.0,
            protocol_ns: 190.0,
            bandwidth_bytes_per_s: 128.0e9,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimConfig {
    /// Clock frequency, Hz.
    pub clock_hz: f64,
    /// Chip-grid rows (4).
    pub grid_rows: u32,
    /// Chip-grid columns (4).
    pub grid_cols: u32,
    /// Transformer layers (36 for gpt-oss; sets pipeline depth).
    pub num_layers: u32,
    /// Pipeline stages per layer (6, Figure 11).
    pub stages_per_layer: u32,
    /// Cycles for one HN-array projection (bit-serial scan; from the
    /// embed crate's array plan — 135 at the calibrated operating point).
    pub projection_cycles: u64,
    /// Projections per layer that lie on the token's critical path
    /// (QKV, Xo, router, up/gate in parallel, down = 5).
    pub projections_per_layer: u32,
    /// VEX nonlinear cycles per layer (RMSNorm + softmax + SwiGLU + misc).
    pub nonlinear_cycles: u64,
    /// Cached KV heads the VEX processes per cycle (§4.3: 32).
    pub vex_kv_heads_per_cycle: u32,
    /// Fraction of attention compute hidden under communication by
    /// double-buffered overlap (the breakdown reports exposed time only).
    pub attention_overlap: f64,
    /// KV bytes per token per layer per chip (2 KV heads × 64 dims ×
    /// (K + V) × fp8 = 256 B for gpt-oss on 4 columns).
    pub kv_bytes_per_token_layer_chip: u64,
    /// Attention-buffer sustained bandwidth, bytes/s (§7.1: 80 TB/s).
    pub buffer_bw_bytes_per_s: f64,
    /// Attention-buffer capacity, bytes (320 MB).
    pub buffer_bytes: u64,
    /// HBM capacity per module, bytes (192 GB).
    pub hbm_bytes: u64,
    /// HBM sustained bandwidth, bytes/s (8 stacks HBM3 ≈ 6.4 TB/s).
    pub hbm_bw_bytes_per_s: f64,
    /// Link parameters.
    pub cxl: CxlParams,
}

impl SimConfig {
    /// The paper's HNLPU for gpt-oss 120 B.
    pub fn paper_default() -> Self {
        SimConfig {
            clock_hz: 1.0e9,
            grid_rows: 4,
            grid_cols: 4,
            num_layers: 36,
            stages_per_layer: 6,
            projection_cycles: 135,
            projections_per_layer: 5,
            nonlinear_cycles: 135,
            vex_kv_heads_per_cycle: 32,
            attention_overlap: 0.58,
            kv_bytes_per_token_layer_chip: 256,
            buffer_bw_bytes_per_s: 80.0e12,
            buffer_bytes: 20_000 * 16 * 1024,
            hbm_bytes: 192 * 1024 * 1024 * 1024,
            hbm_bw_bytes_per_s: 6.4e12,
            cxl: CxlParams::default(),
        }
    }

    /// Derive a config for an arbitrary model (layer count and KV geometry
    /// from `cfg`, projection cycles supplied by the array plan).
    pub fn for_model(cfg: &TransformerConfig, projection_cycles: u64) -> Self {
        let mut c = Self::paper_default();
        c.num_layers = cfg.num_layers as u32;
        c.projection_cycles = projection_cycles;
        let kv_heads_per_col = (cfg.attention.num_kv_heads as u32 / c.grid_cols).max(1);
        c.kv_bytes_per_token_layer_chip =
            (kv_heads_per_col as u64) * cfg.attention.head_dim as u64 * 2;
        c
    }

    /// Total chips.
    pub fn num_chips(&self) -> u32 {
        self.grid_rows * self.grid_cols
    }

    /// Pipeline slots = stages × layers (216 for gpt-oss: the paper's
    /// maximum batch size).
    pub fn pipeline_slots(&self) -> u32 {
        self.stages_per_layer * self.num_layers
    }

    /// Convert nanoseconds to clock cycles.
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.clock_hz / 1e9
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnlpu_model::zoo;

    #[test]
    fn paper_slots_are_216() {
        assert_eq!(SimConfig::paper_default().pipeline_slots(), 216);
    }

    #[test]
    fn sixteen_chips() {
        assert_eq!(SimConfig::paper_default().num_chips(), 16);
    }

    #[test]
    fn ns_conversion_at_1ghz() {
        let c = SimConfig::paper_default();
        assert_eq!(c.ns_to_cycles(100.0), 100.0);
    }

    #[test]
    fn for_model_picks_up_layers_and_kv() {
        let cfg = zoo::gpt_oss_120b().config;
        let c = SimConfig::for_model(&cfg, 135);
        assert_eq!(c.num_layers, 36);
        // 2 KV heads per column x 64 dims x 2 bytes (K and V planes).
        assert_eq!(c.kv_bytes_per_token_layer_chip, 256);
    }
}
