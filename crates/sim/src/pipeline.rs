//! Per-layer timing, pipeline advance interval, throughput, and the
//! Figure-14 execution-time breakdown.
//!
//! Model recap (derived in EXPERIMENTS.md):
//!
//! * All 36 layers live on the same 16 chips. HN arrays are per-layer
//!   dedicated silicon, but the CXL links, the VEX attention engine, and
//!   the nonlinear units are shared by every pipeline slot, so the pipeline
//!   advance interval is set by the most-occupied shared resource.
//! * Per layer, a token performs 13 collective rounds (QKV all-reduce,
//!   two attention all-reduces, the Xo row-all-reduce + column-all-gather,
//!   and the final 16-chip Y all-reduce) — ~4 µs of link occupancy, which
//!   dominates at short contexts (Figure 14's 82.9% at 2 K).
//! * Attention streams the chip's KV slice through the VEX at 32 KV heads
//!   per cycle; 58% of that streaming hides under the adjacent collectives,
//!   so the breakdown exposes 42% of it.
//! * Past ~400 K context the KV prefetch staging within the double-buffer
//!   horizon no longer fits the 320 MB Attention Buffer and the shortfall
//!   streams from HBM — the Figure-14 "stall" component.

use crate::config::SimConfig;
use crate::fabric::{all_chip_all_reduce_cycles, collective_cycles, CollectiveKind};
use crate::hbm::KvCacheModel;
use serde::Serialize;

/// Per-token, per-layer execution-time components, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LayerTiming {
    /// Inter-chip CXL communication.
    pub comm: f64,
    /// HN-array projections (QKV, Xo, router, up/gate, down).
    pub projection: f64,
    /// Nonlinear operations (RMSNorm, softmax, SwiGLU, sampling share).
    pub nonlinear: f64,
    /// Exposed attention computation on the VEX.
    pub attention: f64,
    /// Memory-access stall (KV spill to HBM).
    pub stall: f64,
}

impl LayerTiming {
    /// Compute the layer timing at `context` tokens.
    pub fn compute(cfg: &SimConfig, context: u64) -> Self {
        LayerTiming {
            comm: per_layer_comm_cycles(cfg),
            projection: (cfg.projections_per_layer as u64 * cfg.projection_cycles) as f64,
            nonlinear: cfg.nonlinear_cycles as f64,
            attention: attention_raw_cycles(cfg, context) * (1.0 - cfg.attention_overlap),
            stall: stall_cycles(cfg, context),
        }
    }

    /// Total exposed cycles per token per layer.
    pub fn total(&self) -> f64 {
        self.comm + self.projection + self.nonlinear + self.attention + self.stall
    }
}

/// The 13 collective rounds of one transformer layer (Figure 10/11).
pub fn per_layer_comm_cycles(cfg: &SimConfig) -> f64 {
    let h = 2880u64; // payloads below scale with the gpt-oss shapes
    let fused_qkv = 2 * (1024 + 128 + 128); // fp16 partial sums, col group
    let attn_stats = 2 * (2 * 8 * 64) + 64; // flash-attention partials
    let attn_out = 2 * (2 * 8 * 64);
    let xo_partial = 2 * (h / 4);
    let y = 2 * h;
    collective_cycles(CollectiveKind::AllReduce, fused_qkv, cfg)
        + collective_cycles(CollectiveKind::AllReduce, attn_stats as u64, cfg)
        + collective_cycles(CollectiveKind::AllReduce, attn_out as u64, cfg)
        + collective_cycles(CollectiveKind::AllReduce, xo_partial, cfg)
        + collective_cycles(CollectiveKind::AllGather, xo_partial, cfg)
        + all_chip_all_reduce_cycles(y, cfg)
}

/// Raw (pre-overlap) VEX attention cycles for one token of one layer:
/// the chip's context slice × its KV heads × two passes (QKᵀ and ZV),
/// streamed at `vex_kv_heads_per_cycle`.
pub fn attention_raw_cycles(cfg: &SimConfig, context: u64) -> f64 {
    let per_chip_context = context as f64 / cfg.grid_cols as f64;
    let kv_heads_per_col = 2.0; // gpt-oss: 8 KV heads over 4 columns
    2.0 * per_chip_context * kv_heads_per_col / cfg.vex_kv_heads_per_cycle as f64
}

/// KV-spill stall cycles (see [`KvCacheModel`]).
pub fn stall_cycles(cfg: &SimConfig, context: u64) -> f64 {
    let kv = KvCacheModel::new(cfg);
    let exposed = attention_raw_cycles(cfg, context) * (1.0 - cfg.attention_overlap);
    exposed * kv.spill_fraction(context)
}

/// The Figure-14 per-token breakdown at one context length.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Breakdown {
    /// Context length in tokens.
    pub context: u64,
    /// Per-layer timing.
    pub layer: LayerTiming,
    /// Percentage shares `(comm, projection, nonlinear, attention, stall)`.
    pub shares: [f64; 5],
}

impl Breakdown {
    /// Compute the breakdown at `context`.
    pub fn at(cfg: &SimConfig, context: u64) -> Self {
        let layer = LayerTiming::compute(cfg, context);
        let t = layer.total();
        Breakdown {
            context,
            layer,
            shares: [
                layer.comm / t * 100.0,
                layer.projection / t * 100.0,
                layer.nonlinear / t * 100.0,
                layer.attention / t * 100.0,
                layer.stall / t * 100.0,
            ],
        }
    }

    /// The paper's Figure-14 sweep: 2 K – 512 K.
    pub fn figure14(cfg: &SimConfig) -> Vec<Breakdown> {
        [2048u64, 8192, 65_536, 131_072, 262_144, 524_288]
            .into_iter()
            .map(|c| Breakdown::at(cfg, c))
            .collect()
    }

    /// Render a sweep as an ASCII stacked-bar chart (one row per context).
    pub fn render_ascii(sweep: &[Breakdown]) -> String {
        let mut s = String::from(
            "Execution-time breakdown per token (C=CXL comm, P=projection, n=nonlinear, A=attention, S=stall)\n",
        );
        for b in sweep {
            let label = if b.context >= 1024 {
                format!("{:>4}K", b.context / 1024)
            } else {
                format!("{:>5}", b.context)
            };
            let mut bar = String::new();
            for (share, ch) in b.shares.iter().zip(['C', 'P', 'n', 'A', 'S']) {
                let cells = (share / 2.0).round() as usize;
                bar.extend(std::iter::repeat_n(ch, cells));
            }
            s.push_str(&format!("{label} |{bar:<50}| 100%\n"));
        }
        s
    }
}

/// Pipeline advance interval in cycles: the most-occupied shared resource.
pub fn advance_interval_cycles(cfg: &SimConfig, context: u64) -> f64 {
    let comm = per_layer_comm_cycles(cfg);
    // VEX attention engine: every layer contributes one token's raw
    // attention per interval.
    let vex = cfg.num_layers as f64 * attention_raw_cycles(cfg, context);
    // Dedicated nonlinear modules (RMSNorm / softmax / SwiGLU run on
    // separate units): each sees a third of the nonlinear work per layer.
    let nonlin = cfg.num_layers as f64 * cfg.nonlinear_cycles as f64 / 3.0;
    // HN arrays are per-layer silicon: a projection only needs to finish
    // within the interval, never aggregates across layers.
    let proj = (cfg.projections_per_layer as u64 * cfg.projection_cycles) as f64
        / cfg.projections_per_layer as f64;
    comm.max(vex).max(nonlin).max(proj)
}

/// Steady-state decode throughput, tokens per second, at full batch.
pub fn decode_throughput(cfg: &SimConfig, context: u64) -> f64 {
    cfg.clock_hz / advance_interval_cycles(cfg, context)
}

/// Latency of one token through all layers (exposed time), seconds.
pub fn token_latency_s(cfg: &SimConfig, context: u64) -> f64 {
    cfg.num_layers as f64 * LayerTiming::compute(cfg, context).total() / cfg.clock_hz
}

/// Time to first token for a `prompt_len` prompt on an otherwise idle
/// machine: the prompt prefills at pipeline width (216 tokens per advance
/// interval), then the first decode token traverses the pipeline once.
pub fn time_to_first_token_s(cfg: &SimConfig, prompt_len: u64) -> f64 {
    let interval = advance_interval_cycles(cfg, prompt_len.max(1));
    let prefill_rounds = prompt_len.div_ceil(cfg.pipeline_slots() as u64);
    let prefill_s = prefill_rounds as f64 * cfg.pipeline_slots() as f64 * interval / cfg.clock_hz;
    prefill_s + token_latency_s(cfg, prompt_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::paper_default()
    }

    #[test]
    fn throughput_at_2k_matches_table2() {
        // Table 2: 249,960 tokens/s.
        let t = decode_throughput(&cfg(), 2048);
        assert!(
            (t - 249_960.0).abs() / 249_960.0 < 0.05,
            "throughput = {t:.0}"
        );
    }

    #[test]
    fn comm_dominates_at_short_context() {
        let b = Breakdown::at(&cfg(), 2048);
        assert!(
            (b.shares[0] - 82.9).abs() < 2.0,
            "comm share = {}",
            b.shares[0]
        );
        assert!(
            (b.shares[1] - 13.8).abs() < 1.5,
            "proj share = {}",
            b.shares[1]
        );
    }

    #[test]
    fn figure14_shares_match_paper() {
        // Paper Figure 14: (context, comm%, proj%, attention%).
        let expect = [
            (2048u64, 82.9, 13.8, 0.0),
            (8192, 81.5, 13.6, 0.0),
            (65_536, 70.8, 11.8, 15.1),
            (131_072, 61.5, 10.2, 26.2),
            (262_144, 48.7, 8.1, 41.6),
            (524_288, 30.7, 5.1, 52.4),
        ];
        for (ctx, comm, proj, attn) in expect {
            let b = Breakdown::at(&cfg(), ctx);
            assert!(
                (b.shares[0] - comm).abs() < 2.0,
                "ctx {ctx}: comm {} vs {comm}",
                b.shares[0]
            );
            assert!(
                (b.shares[1] - proj).abs() < 1.5,
                "ctx {ctx}: proj {} vs {proj}",
                b.shares[1]
            );
            if attn > 0.0 {
                assert!(
                    (b.shares[3] - attn).abs() < 2.5,
                    "ctx {ctx}: attn {} vs {attn}",
                    b.shares[3]
                );
            }
        }
    }

    #[test]
    fn stall_appears_only_past_256k() {
        let c = cfg();
        assert_eq!(LayerTiming::compute(&c, 262_144).stall, 0.0);
        let b = Breakdown::at(&c, 524_288);
        assert!(
            (b.shares[4] - 10.7).abs() < 3.0,
            "stall share at 512K = {}",
            b.shares[4]
        );
    }

    #[test]
    fn attention_becomes_dominant_at_512k() {
        let b = Breakdown::at(&cfg(), 524_288);
        assert!(
            b.shares[3] > b.shares[0],
            "attention should dominate: {b:?}"
        );
    }

    #[test]
    fn throughput_degrades_at_long_context() {
        let c = cfg();
        let short = decode_throughput(&c, 2048);
        let long = decode_throughput(&c, 524_288);
        assert!(long < short / 10.0, "short={short:.0} long={long:.0}");
    }

    #[test]
    fn latency_is_breakdown_times_layers() {
        let c = cfg();
        let lat = token_latency_s(&c, 2048);
        let per_layer = LayerTiming::compute(&c, 2048).total();
        assert!((lat - 36.0 * per_layer / 1e9).abs() < 1e-12);
        // ~170 µs per token through 36 layers at 2 K.
        assert!(lat > 50e-6 && lat < 500e-6, "latency = {lat}");
    }

    #[test]
    fn ttft_grows_with_prompt_length() {
        let c = cfg();
        let short = time_to_first_token_s(&c, 128);
        let long = time_to_first_token_s(&c, 16 * 1024);
        assert!(long > short);
        // A chat-size prompt answers in well under a second.
        assert!(short < 1.0, "TTFT = {short}");
    }

    #[test]
    fn shares_sum_to_100() {
        for b in Breakdown::figure14(&cfg()) {
            let sum: f64 = b.shares.iter().sum();
            assert!((sum - 100.0).abs() < 1e-6, "ctx {}: sum {sum}", b.context);
        }
    }
}
