//! Packet-level discrete-event simulation of the 4×4 CXL fabric and the
//! 6-stage × N-layer pipeline.
//!
//! The paper evaluates inter-chip communication with CNSim, a cycle-
//! accurate packet-parallel simulator (§6.1). This module is that layer's
//! analog: collectives decompose into point-to-point messages that contend
//! for physical links with busy-until booking, and the full pipeline runs
//! as a discrete-event simulation with per-stage resources. The analytical
//! model in [`crate::pipeline`] is *validated* against this simulator
//! (tests at the bottom assert they agree).

use crate::config::SimConfig;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Chip identifier in the 4×4 grid (row-major: `id = row * 4 + col`).
pub type ChipId = u8;

/// Grid dimension.
const GRID: u8 = 4;

/// Chips in `col`'s column group.
pub fn column_group(col: u8) -> [ChipId; 4] {
    [col, col + 4, col + 8, col + 12]
}

/// Chips in `row`'s row group.
pub fn row_group(row: u8) -> [ChipId; 4] {
    [row * 4, row * 4 + 1, row * 4 + 2, row * 4 + 3]
}

/// The link-level fabric: every ordered pair of row/column peers has a
/// dedicated point-to-point link with a busy-until time.
#[derive(Debug, Clone, Default)]
pub struct PacketFabric {
    busy_until_ns: HashMap<(ChipId, ChipId), f64>,
    /// Cumulative occupancy per link (for utilization reporting).
    occupancy_ns: HashMap<(ChipId, ChipId), f64>,
    /// Messages delivered so far.
    pub messages: u64,
    /// Payload bytes moved so far.
    pub bytes: u64,
}

impl PacketFabric {
    /// A fresh, idle fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `src` and `dst` share a direct link (same row or column).
    pub fn connected(src: ChipId, dst: ChipId) -> bool {
        src != dst && (src / GRID == dst / GRID || src % GRID == dst % GRID)
    }

    /// Send `bytes` from `src` to `dst` no earlier than `ready_ns`;
    /// returns the delivery time.
    ///
    /// # Panics
    ///
    /// Panics if the chips are not directly connected (the router-less
    /// fabric never forwards).
    pub fn send(
        &mut self,
        cfg: &SimConfig,
        src: ChipId,
        dst: ChipId,
        bytes: u64,
        ready_ns: f64,
    ) -> f64 {
        assert!(
            Self::connected(src, dst),
            "no direct link between chip {src} and chip {dst}"
        );
        let link = self.busy_until_ns.entry((src, dst)).or_insert(0.0);
        let start = ready_ns.max(*link);
        // The link is occupied only for wire serialization; protocol
        // processing and PHY latency pipeline behind it (which is what
        // lets 36 layers share 6 links — see EXPERIMENTS.md).
        let occupancy = bytes as f64 / cfg.cxl.bandwidth_bytes_per_s * 1e9;
        *link = start + occupancy;
        *self.occupancy_ns.entry((src, dst)).or_insert(0.0) += occupancy;
        self.messages += 1;
        self.bytes += bytes;
        start + occupancy + cfg.cxl.protocol_ns + cfg.cxl.latency_ns
    }

    /// Reduce-to-root over a fully-connected group: every member sends its
    /// payload directly to `root`; completion when the last arrives.
    pub fn reduce(
        &mut self,
        cfg: &SimConfig,
        group: &[ChipId],
        root: ChipId,
        bytes: u64,
        ready_ns: f64,
    ) -> f64 {
        let mut done = ready_ns;
        for &m in group {
            if m != root {
                done = done.max(self.send(cfg, m, root, bytes, ready_ns));
            }
        }
        done
    }

    /// Broadcast from `root` to the group over the direct links.
    pub fn broadcast(
        &mut self,
        cfg: &SimConfig,
        group: &[ChipId],
        root: ChipId,
        bytes: u64,
        ready_ns: f64,
    ) -> f64 {
        let mut done = ready_ns;
        for &m in group {
            if m != root {
                done = done.max(self.send(cfg, root, m, bytes, ready_ns));
            }
        }
        done
    }

    /// All-reduce = reduce round + broadcast round (the Interconnect
    /// Engine's §4.3 algorithm; matches the analytical 2-round model).
    pub fn all_reduce(
        &mut self,
        cfg: &SimConfig,
        group: &[ChipId],
        bytes: u64,
        ready_ns: f64,
    ) -> f64 {
        let root = group[0];
        let reduced = self.reduce(cfg, group, root, bytes, ready_ns);
        self.broadcast(cfg, group, root, bytes, reduced)
    }

    /// All-gather: every member broadcasts its fragment (1 round on the
    /// fully-connected group).
    pub fn all_gather(
        &mut self,
        cfg: &SimConfig,
        group: &[ChipId],
        bytes_per_member: u64,
        ready_ns: f64,
    ) -> f64 {
        let mut done = ready_ns;
        for &m in group {
            done = done.max(self.broadcast(cfg, group, m, bytes_per_member, ready_ns));
        }
        done
    }

    /// Peak cumulative link occupancy, nanoseconds (the busiest link's
    /// total serialization time).
    pub fn peak_link_occupancy_ns(&self) -> f64 {
        self.occupancy_ns.values().copied().fold(0.0, f64::max)
    }

    /// 16-chip all-reduce: row-group all-reduce then column-group
    /// all-reduce.
    pub fn all_chip_all_reduce(&mut self, cfg: &SimConfig, bytes: u64, ready_ns: f64) -> f64 {
        let mut after_rows = ready_ns;
        for r in 0..GRID {
            after_rows = after_rows.max(self.all_reduce(cfg, &row_group(r), bytes, ready_ns));
        }
        let mut done = after_rows;
        for c in 0..GRID {
            done = done.max(self.all_reduce(cfg, &column_group(c), bytes, after_rows));
        }
        done
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time_ns: f64,
    token: u32,
    layer: u32,
    stage: u8,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time (BinaryHeap is a max-heap).
        other
            .time_ns
            .partial_cmp(&self.time_ns)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.token.cmp(&self.token))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a packet-level pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSimReport {
    /// Tokens fully retired.
    pub tokens_retired: u32,
    /// Simulated time, nanoseconds.
    pub elapsed_ns: f64,
    /// Steady-state throughput, tokens/s (measured over the second half of
    /// the run to exclude pipeline fill).
    pub throughput_tokens_per_s: f64,
    /// Total messages exchanged.
    pub messages: u64,
    /// Total bytes moved.
    pub bytes: u64,
}

/// The packet-level pipeline simulator.
#[derive(Debug, Clone)]
pub struct PacketSim {
    cfg: SimConfig,
    context: u64,
}

impl PacketSim {
    /// A simulator at `cfg` and a fixed decode context.
    pub fn new(cfg: SimConfig, context: u64) -> Self {
        PacketSim { cfg, context }
    }

    /// Per-stage compute time (ns at 1 cycle/ns), mirroring the analytical
    /// decomposition.
    fn stage_compute_ns(&self, stage: u8) -> f64 {
        let proj = self.cfg.projection_cycles as f64;
        let nonlin = self.cfg.nonlinear_cycles as f64 / 3.0;
        let attn = crate::pipeline::attention_raw_cycles(&self.cfg, self.context) / 2.0;
        match stage {
            0 => proj,                // HN-QKV
            1 => attn + nonlin,       // attention pass 1 + softmax share
            2 => attn,                // attention pass 2
            3 => proj,                // HN-Xo
            4 => 2.0 * proj + nonlin, // router + up/gate + SwiGLU
            _ => proj,                // HN-DOWN
        }
    }

    /// Issue the stage's collectives on the fabric; returns completion.
    fn stage_comm(&self, fabric: &mut PacketFabric, stage: u8, ready_ns: f64) -> f64 {
        let cfg = &self.cfg;
        let mut done = ready_ns;
        match stage {
            0 => {
                // Fused QKV partial-sum all-reduce per column.
                for c in 0..GRID {
                    done = done.max(fabric.all_reduce(
                        cfg,
                        &column_group(c),
                        2 * (1024 + 128 + 128),
                        ready_ns,
                    ));
                }
            }
            1 => {
                for c in 0..GRID {
                    done = done.max(fabric.all_reduce(
                        cfg,
                        &column_group(c),
                        (2 * (2 * 8 * 64) + 64) as u64,
                        ready_ns,
                    ));
                }
            }
            2 => {
                for c in 0..GRID {
                    done = done.max(fabric.all_reduce(
                        cfg,
                        &column_group(c),
                        (2 * (2 * 8 * 64)) as u64,
                        ready_ns,
                    ));
                }
            }
            3 => {
                // Row all-reduce then column all-gather of Xo.
                let mut rows_done = ready_ns;
                for r in 0..GRID {
                    rows_done =
                        rows_done.max(fabric.all_reduce(cfg, &row_group(r), 1440, ready_ns));
                }
                for c in 0..GRID {
                    done = done.max(fabric.all_gather(cfg, &column_group(c), 1440, rows_done));
                }
            }
            4 => {
                // Router is replicated: no communication.
                done = ready_ns;
            }
            _ => {
                done = fabric.all_chip_all_reduce(cfg, 2 * 2880, ready_ns);
            }
        }
        done
    }

    /// Steady-state throughput via the marginal method: the extra time to
    /// retire the second half of a doubled batch is pure steady-state
    /// operation (pipeline fill cancels out).
    pub fn steady_state_throughput(&self, tokens: u32) -> f64 {
        let half = self.run(tokens / 2);
        let full = self.run(tokens);
        let extra = (tokens - tokens / 2) as f64;
        extra / (full.elapsed_ns - half.elapsed_ns) * 1e9
    }

    /// Run `tokens` decode tokens through the full pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `tokens == 0`.
    pub fn run(&self, tokens: u32) -> PacketSimReport {
        assert!(tokens > 0, "need at least one token");
        let layers = self.cfg.num_layers;
        let stages = self.cfg.stages_per_layer as u8;
        let mut fabric = PacketFabric::new();
        // Per-(layer, stage) resource: busy-until.
        let mut stage_free = vec![0.0f64; (layers * stages as u32) as usize];
        // The VEX attention engine is one physical unit per chip, shared by
        // every layer's attention stages (the analytical model's dominant
        // long-context resource).
        let mut vex_free = 0.0f64;
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut retire_times = vec![0.0f64; tokens as usize];
        for t in 0..tokens {
            heap.push(Event {
                time_ns: 0.0,
                token: t,
                layer: 0,
                stage: 0,
            });
        }
        while let Some(ev) = heap.pop() {
            let idx = (ev.layer * stages as u32 + ev.stage as u32) as usize;
            // Causality: if the stage is still busy, requeue the event at
            // the stage-free time so fabric bookings happen in true time
            // order (booking from the pop with a far-future start would
            // wrongly block earlier-time requests on the same links).
            let is_attention = ev.stage == 1 || ev.stage == 2;
            let gate = if is_attention {
                stage_free[idx].max(vex_free)
            } else {
                stage_free[idx]
            };
            if ev.time_ns < gate {
                heap.push(Event {
                    time_ns: gate,
                    ..ev
                });
                continue;
            }
            let start = ev.time_ns;
            let compute_done = start + self.stage_compute_ns(ev.stage);
            if is_attention {
                vex_free =
                    start + crate::pipeline::attention_raw_cycles(&self.cfg, self.context) / 2.0;
            }
            let comm_done = self.stage_comm(&mut fabric, ev.stage, compute_done);
            stage_free[idx] = comm_done.max(compute_done);
            // Advance the token.
            if ev.stage + 1 < stages {
                heap.push(Event {
                    time_ns: comm_done,
                    token: ev.token,
                    layer: ev.layer,
                    stage: ev.stage + 1,
                });
            } else if ev.layer + 1 < layers {
                heap.push(Event {
                    time_ns: comm_done,
                    token: ev.token,
                    layer: ev.layer + 1,
                    stage: 0,
                });
            } else {
                retire_times[ev.token as usize] = comm_done;
            }
        }
        let elapsed = retire_times.iter().copied().fold(0.0, f64::max);
        // Steady-state rate over the last quarter of retirements (the
        // fabric backlog takes a while to reach equilibrium).
        let mut sorted = retire_times.clone();
        sorted.sort_by(f64::total_cmp);
        let lo = sorted.len() * 3 / 4;
        let throughput = if sorted.len() >= 8 {
            let n = (sorted.len() - lo - 1) as f64;
            n / (sorted[sorted.len() - 1] - sorted[lo]) * 1e9
        } else {
            tokens as f64 / elapsed * 1e9
        };
        PacketSimReport {
            tokens_retired: tokens,
            elapsed_ns: elapsed,
            throughput_tokens_per_s: throughput,
            messages: fabric.messages,
            bytes: fabric.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{collective_ns, CollectiveKind};
    use crate::pipeline;

    fn cfg() -> SimConfig {
        SimConfig::paper_default()
    }

    #[test]
    fn grid_topology() {
        assert!(PacketFabric::connected(0, 1)); // same row
        assert!(PacketFabric::connected(0, 4)); // same column
        assert!(!PacketFabric::connected(0, 5)); // diagonal
        assert_eq!(column_group(2), [2, 6, 10, 14]);
        assert_eq!(row_group(3), [12, 13, 14, 15]);
    }

    #[test]
    #[should_panic(expected = "no direct link")]
    fn diagonal_send_rejected() {
        PacketFabric::new().send(&cfg(), 0, 5, 64, 0.0);
    }

    #[test]
    fn uncontended_all_reduce_matches_analytical() {
        let cfg = cfg();
        let mut f = PacketFabric::new();
        let t = f.all_reduce(&cfg, &column_group(0), 2048, 0.0);
        let analytical = collective_ns(CollectiveKind::AllReduce, 2048, &cfg.cxl);
        assert!(
            (t - analytical).abs() / analytical < 0.02,
            "packet {t:.0} vs analytical {analytical:.0}"
        );
    }

    #[test]
    fn contention_serializes_on_links() {
        let cfg = cfg();
        let mut f = PacketFabric::new();
        let first = f.send(&cfg, 0, 1, 4096, 0.0);
        let second = f.send(&cfg, 0, 1, 4096, 0.0);
        assert!(second > first, "same link must serialize");
        // Different link: no contention.
        let other = f.send(&cfg, 2, 3, 4096, 0.0);
        assert!(other < second);
    }

    #[test]
    fn pipeline_throughput_validates_analytical_model() {
        // The headline cross-check: the packet-level DES and the analytical
        // occupancy model agree on steady-state decode throughput at 2K.
        // (The DES bottleneck is the busiest link's serialization; the
        // analytical model prices the 13-round latency chain — the design
        // point sits where they coincide, see EXPERIMENTS.md.)
        let cfg = cfg();
        let des = PacketSim::new(cfg.clone(), 2048).steady_state_throughput(700);
        let analytical = pipeline::decode_throughput(&cfg, 2048);
        let ratio = des / analytical;
        assert!(
            (0.85..1.25).contains(&ratio),
            "DES {des:.0} vs analytical {analytical:.0} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn long_context_des_matches_vex_occupancy_model() {
        // At 256K context the VEX is the bottleneck in both models.
        let cfg = cfg();
        let des = PacketSim::new(cfg.clone(), 262_144).steady_state_throughput(80);
        let analytical = pipeline::decode_throughput(&cfg, 262_144);
        let ratio = des / analytical;
        assert!(
            (0.85..1.25).contains(&ratio),
            "DES {des:.0} vs analytical {analytical:.0} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn message_accounting_is_exact() {
        // Per token-layer: stage0 4 cols x AR(2 rounds x 3 msgs) = 24,
        // stage1 24, stage2 24, stage3 rows 24 + AG 4x12 = 48 + ... the
        // totals must scale exactly linearly in tokens x layers.
        let cfg = cfg();
        let one = PacketSim::new(cfg.clone(), 2048).run(1);
        let two = PacketSim::new(cfg, 2048).run(2);
        assert_eq!(two.messages, 2 * one.messages);
        assert_eq!(two.bytes, 2 * one.bytes);
    }

    #[test]
    fn longer_context_lowers_des_throughput() {
        let cfg = cfg();
        let short = PacketSim::new(cfg.clone(), 2048).steady_state_throughput(300);
        let long = PacketSim::new(cfg, 262_144).steady_state_throughput(60);
        assert!(long < short / 10.0, "short={short:.0} long={long:.0}");
    }

    #[test]
    fn all_gather_is_single_round() {
        let cfg = cfg();
        let mut f = PacketFabric::new();
        let ag = f.all_gather(&cfg, &column_group(1), 1024, 0.0);
        let mut f2 = PacketFabric::new();
        let ar = f2.all_reduce(&cfg, &column_group(1), 1024, 0.0);
        assert!(
            ag < ar,
            "all-gather {ag:.0} should beat 2-round all-reduce {ar:.0}"
        );
    }
}
