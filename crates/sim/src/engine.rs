//! The top-level simulated HNLPU.

use crate::config::SimConfig;
use crate::pipeline::{self, Breakdown};
use serde::Serialize;

/// A simulated HNLPU system.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HnlpuEngine {
    /// Machine description.
    pub config: SimConfig,
}

/// Table-2-style performance summary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PerfSummary {
    /// Context length evaluated.
    pub context: u64,
    /// Decode throughput, tokens/s.
    pub throughput_tokens_per_s: f64,
    /// Single-token latency through all layers, seconds.
    pub token_latency_s: f64,
    /// Maximum concurrent sequences (pipeline slots).
    pub max_batch: u32,
    /// Per-sequence decode rate at full batch, tokens/s.
    pub per_sequence_tokens_per_s: f64,
}

impl HnlpuEngine {
    /// The paper's gpt-oss HNLPU.
    pub fn paper_default() -> Self {
        HnlpuEngine {
            config: SimConfig::paper_default(),
        }
    }

    /// Build from an explicit config.
    pub fn new(config: SimConfig) -> Self {
        HnlpuEngine { config }
    }

    /// Steady-state decode throughput at `context`, tokens/s.
    pub fn decode_throughput(&self, context: u64) -> f64 {
        pipeline::decode_throughput(&self.config, context)
    }

    /// Latency of one token through the whole model, seconds.
    pub fn token_latency_s(&self, context: u64) -> f64 {
        pipeline::token_latency_s(&self.config, context)
    }

    /// Figure-14 breakdown sweep.
    pub fn breakdown_sweep(&self) -> Vec<Breakdown> {
        Breakdown::figure14(&self.config)
    }

    /// Performance summary at `context`.
    pub fn summary(&self, context: u64) -> PerfSummary {
        let tput = self.decode_throughput(context);
        let slots = self.config.pipeline_slots();
        PerfSummary {
            context,
            throughput_tokens_per_s: tput,
            token_latency_s: self.token_latency_s(context),
            max_batch: slots,
            per_sequence_tokens_per_s: tput / slots as f64,
        }
    }

    /// Energy efficiency in tokens per joule given the system power.
    pub fn tokens_per_joule(&self, context: u64, system_power_w: f64) -> f64 {
        self.decode_throughput(context) / system_power_w
    }

    /// Area efficiency in tokens/(s·mm²) given total silicon area.
    pub fn tokens_per_s_mm2(&self, context: u64, silicon_mm2: f64) -> f64 {
        self.decode_throughput(context) / silicon_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_at_2k() {
        let e = HnlpuEngine::paper_default();
        let s = e.summary(2048);
        assert_eq!(s.max_batch, 216);
        assert!(s.throughput_tokens_per_s > 200_000.0);
        assert!((s.per_sequence_tokens_per_s * 216.0 - s.throughput_tokens_per_s).abs() < 1.0);
    }

    #[test]
    fn energy_efficiency_matches_table2() {
        // Table 2: 36,226 tokens/kJ at 6.9 kW total system power.
        let e = HnlpuEngine::paper_default();
        let tpj = e.tokens_per_joule(2048, 6_900.0);
        assert!((tpj - 36.2).abs() / 36.2 < 0.06, "tokens/J = {tpj:.1}");
    }

    #[test]
    fn area_efficiency_matches_table2() {
        // Table 2: 18.89 tokens/(s·mm²) over 13,232 mm².
        let e = HnlpuEngine::paper_default();
        let eff = e.tokens_per_s_mm2(2048, 13_232.0);
        assert!((eff - 18.89).abs() / 18.89 < 0.06, "eff = {eff:.2}");
    }

    #[test]
    fn breakdown_sweep_has_six_points() {
        assert_eq!(HnlpuEngine::paper_default().breakdown_sweep().len(), 6);
    }
}
