//! KV-cache capacity/bandwidth accounting: Attention Buffer vs HBM.
//!
//! The Attention Buffer holds the KV working sets of the attention
//! operations inside the double-buffering horizon (the ops currently
//! streaming plus their prefetch successors). When that staging footprint
//! outgrows the 320 MB buffer, the shortfall streams from HBM with a
//! latency penalty — the Figure-14 "stall" component, which first appears
//! between 256 K and 512 K context.

use crate::config::SimConfig;

/// KV-cache placement model for one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvCacheModel {
    buffer_bytes: u64,
    hbm_bytes: u64,
    kv_bytes_per_token: u64,
    /// Attention ops staged in the buffer at once (in-flight + prefetch).
    pub staged_ops: u32,
}

impl KvCacheModel {
    /// Build from a simulator config.
    pub fn new(cfg: &SimConfig) -> Self {
        KvCacheModel {
            buffer_bytes: cfg.buffer_bytes,
            hbm_bytes: cfg.hbm_bytes,
            kv_bytes_per_token: cfg.kv_bytes_per_token_layer_chip,
            staged_ops: 12,
        }
    }

    /// Working-set bytes of one attention op at `context` (the chip's
    /// quarter of the sequence).
    pub fn working_set_bytes(&self, context: u64) -> u64 {
        context / 4 * self.kv_bytes_per_token
    }

    /// Bytes the staging horizon wants resident.
    pub fn staging_bytes(&self, context: u64) -> u64 {
        self.staged_ops as u64 * self.working_set_bytes(context)
    }

    /// Fraction of attention traffic that must stream from HBM instead of
    /// the buffer (0 when staging fits).
    pub fn spill_fraction(&self, context: u64) -> f64 {
        let staging = self.staging_bytes(context) as f64;
        if staging <= self.buffer_bytes as f64 {
            0.0
        } else {
            1.0 - self.buffer_bytes as f64 / staging
        }
    }

    /// Longest context whose full KV cache (for `batch` sequences across
    /// `layers` layers) fits in HBM.
    pub fn max_context_in_hbm(&self, batch: u64, layers: u64) -> u64 {
        self.hbm_bytes / (batch * layers * self.kv_bytes_per_token).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KvCacheModel {
        KvCacheModel::new(&SimConfig::paper_default())
    }

    #[test]
    fn no_spill_up_to_256k() {
        let m = model();
        for ctx in [2048u64, 8192, 65_536, 131_072, 262_144] {
            assert_eq!(m.spill_fraction(ctx), 0.0, "ctx = {ctx}");
        }
    }

    #[test]
    fn spill_at_512k_is_about_20_percent() {
        // Calibrated so the exposed stall is 10.7% of per-token time.
        let f = model().spill_fraction(524_288);
        assert!((f - 0.20).abs() < 0.05, "spill = {f}");
    }

    #[test]
    fn spill_grows_monotonically() {
        let m = model();
        assert!(m.spill_fraction(1_048_576) > m.spill_fraction(524_288));
    }

    #[test]
    fn working_set_at_512k() {
        // 512K/4 tokens x 256 B = 33.6 MB per op.
        let ws = model().working_set_bytes(524_288);
        assert_eq!(ws, 524_288 / 4 * 256);
    }

    #[test]
    fn hbm_bounds_batch_times_context() {
        let m = model();
        // 216-sequence batch over 36 layers: HBM holds ~100K context.
        let max = m.max_context_in_hbm(216, 36);
        assert!(max > 50_000 && max < 200_000, "max = {max}");
    }
}
