//! Synthetic serving workloads for the continuous-batching scheduler.
//!
//! Five request mixes cover the serving regimes the paper's §8 anticipates
//! ("novel LLM application scenarios"): interactive chat, diurnal chat (a
//! day of traffic compressed into virtual time), long-context RAG,
//! offline batch scoring, and shared-prefix chat (a seeded mixture of a
//! few system prompts with per-user suffixes, the regime the paged KV
//! radix cache exists for). All generators are pure functions of an explicit
//! seed — no ambient RNG — so the online serving frontend and the offline
//! plan replay can regenerate byte-identical arrival traces independently.

use crate::scheduler::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Virtual seconds one simulated "day" is compressed into for
/// [`WorkloadKind::DiurnalChat`]: the arrival rate completes one full
/// peak → trough → peak cycle over this span.
pub const DIURNAL_PERIOD_S: f64 = 120.0;

/// Distinct system prompts mixed by [`WorkloadKind::SharedPrefixChat`].
pub const SHARED_PREFIX_GROUPS: usize = 4;

/// Length in tokens of group `group`'s system prompt. Groups differ in
/// length so the prefix cache sees a mixture of block counts.
pub const fn shared_prefix_len(group: usize) -> u32 {
    64 + 32 * (group % SHARED_PREFIX_GROUPS) as u32
}

/// Deterministic token ids of group `group`'s system prompt, drawn below
/// `vocab`. A pure function of `(seed, group, vocab)`, so the serving
/// engine, bench harness, and example simulator regenerate identical
/// shared prefixes without passing token buffers around.
pub fn shared_prefix_tokens(seed: u64, group: usize, vocab: u32) -> Vec<u32> {
    let mix = seed ^ (group as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = StdRng::seed_from_u64(mix);
    (0..shared_prefix_len(group))
        .map(|_| rng.gen_range(0..vocab.max(1)))
        .collect()
}

/// A named request mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WorkloadKind {
    /// Short prompts, short-to-medium decodes, Poisson arrivals.
    Chat,
    /// Chat-shaped requests whose Poisson rate follows a compressed
    /// diurnal cycle: `arrivals_per_s` is the *peak* rate, and the
    /// instantaneous rate swings sinusoidally down to 10% of it over
    /// [`DIURNAL_PERIOD_S`].
    DiurnalChat,
    /// Long retrieval-augmented prompts, short decodes.
    RagLongContext,
    /// Everything arrives at t = 0; medium prompts; tiny decodes
    /// (sequence scoring / embedding style).
    OfflineBatch,
    /// Chat arrivals whose prompts are a seeded mixture of
    /// [`SHARED_PREFIX_GROUPS`] system prompts plus a short per-user
    /// suffix — the shared-prefix regime the paged radix KV cache
    /// deduplicates. Prompt length is `shared_prefix_len(group)` plus
    /// an 8–64 token suffix.
    SharedPrefixChat,
}

/// Workload generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadSpec {
    /// Mix.
    pub kind: WorkloadKind,
    /// Number of requests.
    pub requests: usize,
    /// Mean arrival rate, requests/second (peak rate for `DiurnalChat`;
    /// ignored for `OfflineBatch`).
    pub arrivals_per_s: f64,
    /// Default RNG seed used by [`generate`](Self::generate).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generate the request trace with the spec's own seed.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals_per_s <= 0` for an online mix.
    pub fn generate(&self) -> Vec<Request> {
        self.generate_with_seed(self.seed)
    }

    /// Generate the request trace from an explicit seed.
    ///
    /// The trace is a pure function of `(self.kind, self.requests,
    /// self.arrivals_per_s, seed)`: two calls with equal inputs return
    /// identical `Vec<Request>`s, which is what lets online-vs-offline
    /// differential runs replay the same arrivals without sharing state.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals_per_s <= 0` for an online mix.
    pub fn generate_with_seed(&self, seed: u64) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t_micros = 0u64;
        (0..self.requests)
            .map(|_| {
                let (prompt, decode) = match self.kind {
                    WorkloadKind::Chat | WorkloadKind::DiurnalChat => {
                        (rng.gen_range(16..512), rng.gen_range(32..768))
                    }
                    WorkloadKind::RagLongContext => {
                        (rng.gen_range(4096..32_768), rng.gen_range(64..512))
                    }
                    WorkloadKind::OfflineBatch => (rng.gen_range(256..2048), rng.gen_range(1..8)),
                    WorkloadKind::SharedPrefixChat => {
                        let group = rng.gen_range(0..SHARED_PREFIX_GROUPS);
                        let suffix: u32 = rng.gen_range(8..64);
                        (shared_prefix_len(group) + suffix, rng.gen_range(32..768))
                    }
                };
                if self.kind != WorkloadKind::OfflineBatch {
                    assert!(self.arrivals_per_s > 0.0, "online mixes need a rate");
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let rate = self.rate_at(t_micros as f64 / 1e6);
                    t_micros += (-u.ln() / rate * 1e6) as u64;
                }
                Request::new(t_micros, prompt, decode)
            })
            .collect()
    }

    /// Instantaneous arrival rate at virtual time `t_s` (requests/s).
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match self.kind {
            WorkloadKind::DiurnalChat => {
                // Peak at t = 0, trough (10% of peak) half a period later.
                let phase = t_s / DIURNAL_PERIOD_S * std::f64::consts::TAU;
                self.arrivals_per_s * (0.55 + 0.45 * phase.cos())
            }
            _ => self.arrivals_per_s,
        }
    }

    /// Average context length this mix drives (for picking the simulator's
    /// nominal operating point).
    pub fn nominal_context(&self) -> u64 {
        match self.kind {
            WorkloadKind::Chat | WorkloadKind::DiurnalChat | WorkloadKind::SharedPrefixChat => 2048,
            WorkloadKind::RagLongContext => 32_768,
            WorkloadKind::OfflineBatch => 2048,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::scheduler::BatchScheduler;

    fn spec(kind: WorkloadKind) -> WorkloadSpec {
        WorkloadSpec {
            kind,
            requests: 300,
            arrivals_per_s: 400.0,
            seed: 5,
        }
    }

    const ALL_KINDS: [WorkloadKind; 5] = [
        WorkloadKind::Chat,
        WorkloadKind::DiurnalChat,
        WorkloadKind::RagLongContext,
        WorkloadKind::OfflineBatch,
        WorkloadKind::SharedPrefixChat,
    ];

    #[test]
    fn generators_are_deterministic() {
        for kind in ALL_KINDS {
            assert_eq!(spec(kind).generate(), spec(kind).generate());
        }
    }

    #[test]
    fn explicit_seed_replays_the_exact_trace() {
        // Determinism regression for the online/offline differential
        // harness: the trace is a pure function of the explicit seed, and
        // `generate()` is exactly `generate_with_seed(self.seed)`.
        for kind in ALL_KINDS {
            let s = spec(kind);
            assert_eq!(s.generate_with_seed(5), s.generate_with_seed(5));
            assert_eq!(s.generate(), s.generate_with_seed(s.seed));
            let reseeded = WorkloadSpec { seed: 99, ..s };
            assert_eq!(reseeded.generate(), s.generate_with_seed(99));
        }
    }

    #[test]
    fn different_seeds_change_the_trace() {
        let s = spec(WorkloadKind::Chat);
        assert_ne!(s.generate_with_seed(1), s.generate_with_seed(2));
    }

    #[test]
    fn offline_batch_arrives_at_zero() {
        let reqs = spec(WorkloadKind::OfflineBatch).generate();
        assert!(reqs.iter().all(|r| r.arrival_s_micros == 0));
    }

    #[test]
    fn chat_arrivals_are_increasing() {
        for kind in [
            WorkloadKind::Chat,
            WorkloadKind::DiurnalChat,
            WorkloadKind::SharedPrefixChat,
        ] {
            let reqs = spec(kind).generate();
            for w in reqs.windows(2) {
                assert!(w[1].arrival_s_micros >= w[0].arrival_s_micros);
            }
        }
    }

    #[test]
    fn diurnal_trough_slows_arrivals() {
        // The mean inter-arrival gap near the trough (half a period in) is
        // several times the gap near the t = 0 peak.
        let s = WorkloadSpec {
            kind: WorkloadKind::DiurnalChat,
            requests: 8_000,
            arrivals_per_s: 100.0,
            seed: 11,
        };
        let reqs = s.generate();
        let half = DIURNAL_PERIOD_S / 2.0;
        let mean_gap_in = |lo: f64, hi: f64| {
            let mut gaps = Vec::new();
            for w in reqs.windows(2) {
                let t = w[0].arrival_s_micros as f64 / 1e6;
                if t >= lo && t < hi {
                    gaps.push((w[1].arrival_s_micros - w[0].arrival_s_micros) as f64);
                }
            }
            assert!(!gaps.is_empty(), "window [{lo}, {hi}) saw no arrivals");
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        let peak = mean_gap_in(0.0, 10.0);
        let trough = mean_gap_in(half - 8.0, half + 8.0);
        assert!(
            trough > peak * 3.0,
            "trough gap {trough} not >> peak gap {peak}"
        );
        assert!(s.rate_at(0.0) > s.rate_at(half) * 5.0);
    }

    #[test]
    fn shared_prefix_chat_is_deterministic_and_well_formed() {
        // Same regression shape as `diurnal_trough_slows_arrivals`' sibling
        // determinism checks: the shared-prefix mixture is a pure function
        // of the seed, prompt lengths decompose as one of the group prefix
        // lengths plus an 8–64 token suffix, and every group appears.
        let s = spec(WorkloadKind::SharedPrefixChat);
        assert_eq!(s.generate(), s.generate());
        assert_eq!(s.generate(), s.generate_with_seed(s.seed));
        assert_ne!(s.generate_with_seed(1), s.generate_with_seed(2));

        let mut groups_seen = [false; SHARED_PREFIX_GROUPS];
        for r in s.generate() {
            let group = (0..SHARED_PREFIX_GROUPS).find(|&g| {
                let p = shared_prefix_len(g);
                r.prompt_tokens >= p + 8 && r.prompt_tokens < p + 64
            });
            // Group lengths are 32 apart and suffixes span 8..64, so the
            // decomposition is ambiguous between neighbours — but some
            // group must always explain the length.
            let g = group.expect("prompt length fits the prefix + suffix mixture");
            groups_seen[g] = true;
        }
        assert!(
            groups_seen.iter().filter(|&&b| b).count() >= 2,
            "300 draws hit at least two prompt groups"
        );

        // The token-id helper is deterministic, seed- and group-sensitive,
        // and sized to its group.
        for g in 0..SHARED_PREFIX_GROUPS {
            let a = shared_prefix_tokens(7, g, 128);
            assert_eq!(a, shared_prefix_tokens(7, g, 128));
            assert_eq!(a.len() as u32, shared_prefix_len(g));
            assert!(a.iter().all(|&t| t < 128));
            assert_ne!(a, shared_prefix_tokens(8, g, 128));
        }
        assert_ne!(
            shared_prefix_tokens(7, 0, 128)[..],
            shared_prefix_tokens(7, 1, 128)[..shared_prefix_len(0) as usize]
        );
    }

    #[test]
    fn rag_prompts_are_long() {
        let reqs = spec(WorkloadKind::RagLongContext).generate();
        assert!(reqs.iter().all(|r| r.prompt_tokens >= 4096));
    }

    #[test]
    fn every_mix_runs_through_the_scheduler() {
        let cfg = SimConfig::paper_default();
        for kind in ALL_KINDS {
            let s = spec(kind);
            let report = BatchScheduler::new(cfg.clone(), s.nominal_context()).run(&s.generate());
            assert_eq!(report.completions.len(), 300, "{kind:?}");
            // Token conservation: exactly the requested decode tokens.
            let want: u64 = s.generate().iter().map(|r| r.decode_tokens as u64).sum();
            assert_eq!(report.decoded_tokens, want, "{kind:?}");
        }
    }

    #[test]
    fn long_context_mix_is_slower() {
        let cfg = SimConfig::paper_default();
        let chat = spec(WorkloadKind::Chat);
        let rag = spec(WorkloadKind::RagLongContext);
        let t_chat = BatchScheduler::new(cfg.clone(), chat.nominal_context())
            .run(&chat.generate())
            .throughput_tokens_per_s;
        let t_rag = BatchScheduler::new(cfg, rag.nominal_context())
            .run(&rag.generate())
            .throughput_tokens_per_s;
        // The VEX attention occupancy at 32K context halves the pipeline
        // rate versus the comm-bound 2K regime.
        assert!(t_rag < t_chat, "chat={t_chat:.0} rag={t_rag:.0}");
    }
}
