//! Synthetic serving workloads for the continuous-batching scheduler.
//!
//! Three request mixes cover the serving regimes the paper's §8 anticipates
//! ("novel LLM application scenarios"): interactive chat, long-context RAG,
//! and offline batch scoring. All generators are seeded and deterministic.

use crate::scheduler::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// A named request mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WorkloadKind {
    /// Short prompts, short-to-medium decodes, Poisson arrivals.
    Chat,
    /// Long retrieval-augmented prompts, short decodes.
    RagLongContext,
    /// Everything arrives at t = 0; medium prompts; tiny decodes
    /// (sequence scoring / embedding style).
    OfflineBatch,
}

/// Workload generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadSpec {
    /// Mix.
    pub kind: WorkloadKind,
    /// Number of requests.
    pub requests: usize,
    /// Mean arrival rate, requests/second (ignored for `OfflineBatch`).
    pub arrivals_per_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generate the request trace.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals_per_s <= 0` for an online mix.
    pub fn generate(&self) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t_micros = 0u64;
        (0..self.requests)
            .map(|_| {
                let (prompt, decode) = match self.kind {
                    WorkloadKind::Chat => (rng.gen_range(16..512), rng.gen_range(32..768)),
                    WorkloadKind::RagLongContext => {
                        (rng.gen_range(4096..32_768), rng.gen_range(64..512))
                    }
                    WorkloadKind::OfflineBatch => (rng.gen_range(256..2048), rng.gen_range(1..8)),
                };
                if self.kind != WorkloadKind::OfflineBatch {
                    assert!(self.arrivals_per_s > 0.0, "online mixes need a rate");
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t_micros += (-u.ln() / self.arrivals_per_s * 1e6) as u64;
                }
                Request::new(t_micros, prompt, decode)
            })
            .collect()
    }

    /// Average context length this mix drives (for picking the simulator's
    /// nominal operating point).
    pub fn nominal_context(&self) -> u64 {
        match self.kind {
            WorkloadKind::Chat => 2048,
            WorkloadKind::RagLongContext => 32_768,
            WorkloadKind::OfflineBatch => 2048,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::scheduler::BatchScheduler;

    fn spec(kind: WorkloadKind) -> WorkloadSpec {
        WorkloadSpec {
            kind,
            requests: 300,
            arrivals_per_s: 400.0,
            seed: 5,
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for kind in [
            WorkloadKind::Chat,
            WorkloadKind::RagLongContext,
            WorkloadKind::OfflineBatch,
        ] {
            assert_eq!(spec(kind).generate(), spec(kind).generate());
        }
    }

    #[test]
    fn offline_batch_arrives_at_zero() {
        let reqs = spec(WorkloadKind::OfflineBatch).generate();
        assert!(reqs.iter().all(|r| r.arrival_s_micros == 0));
    }

    #[test]
    fn chat_arrivals_are_increasing() {
        let reqs = spec(WorkloadKind::Chat).generate();
        for w in reqs.windows(2) {
            assert!(w[1].arrival_s_micros >= w[0].arrival_s_micros);
        }
    }

    #[test]
    fn rag_prompts_are_long() {
        let reqs = spec(WorkloadKind::RagLongContext).generate();
        assert!(reqs.iter().all(|r| r.prompt_tokens >= 4096));
    }

    #[test]
    fn every_mix_runs_through_the_scheduler() {
        let cfg = SimConfig::paper_default();
        for kind in [
            WorkloadKind::Chat,
            WorkloadKind::RagLongContext,
            WorkloadKind::OfflineBatch,
        ] {
            let s = spec(kind);
            let report = BatchScheduler::new(cfg.clone(), s.nominal_context()).run(&s.generate());
            assert_eq!(report.completions.len(), 300, "{kind:?}");
            // Token conservation: exactly the requested decode tokens.
            let want: u64 = s.generate().iter().map(|r| r.decode_tokens as u64).sum();
            assert_eq!(report.decoded_tokens, want, "{kind:?}");
        }
    }

    #[test]
    fn long_context_mix_is_slower() {
        let cfg = SimConfig::paper_default();
        let chat = spec(WorkloadKind::Chat);
        let rag = spec(WorkloadKind::RagLongContext);
        let t_chat = BatchScheduler::new(cfg.clone(), chat.nominal_context())
            .run(&chat.generate())
            .throughput_tokens_per_s;
        let t_rag = BatchScheduler::new(cfg, rag.nominal_context())
            .run(&rag.generate())
            .throughput_tokens_per_s;
        // The VEX attention occupancy at 32K context halves the pipeline
        // rate versus the comm-bound 2K regime.
        assert!(t_rag < t_chat, "chat={t_chat:.0} rag={t_rag:.0}");
    }
}
