//! Cycle-level HNLPU system simulator.
//!
//! Reproduces the paper's §6.1 performance methodology: a cycle-level
//! single-chip model plus a CNSim-style multi-chip interconnect model,
//! generating Table 2's throughput and Figure 14's execution-time breakdown.
//!
//! * [`config`] — the simulated machine description (4×4 CXL fabric,
//!   projection/nonlinear timings, VEX attention rate, buffer/HBM rates).
//! * [`fabric`] — collective-communication timing over the row/column
//!   fully-connected CXL fabric.
//! * [`pipeline`] — per-layer/6-stage timing, the pipeline advance interval,
//!   steady-state throughput, and the per-token execution-time breakdown.
//! * [`hbm`] — KV-cache capacity/bandwidth accounting (attention buffer vs
//!   HBM spill, double buffering).
//! * [`scheduler`] — continuous batching over the 216 pipeline slots.
//! * [`engine`] — the top-level [`engine::HnlpuEngine`] facade.
//!
//! # Example
//!
//! ```
//! use hnlpu_sim::engine::HnlpuEngine;
//! let engine = HnlpuEngine::paper_default();
//! let tput = engine.decode_throughput(2048);
//! // Table 2: 249,960 tokens/s at 2K context.
//! assert!((tput - 249_960.0).abs() / 249_960.0 < 0.05);
//! ```

#![warn(missing_docs)]
pub mod config;
pub mod engine;
pub mod fabric;
pub mod hbm;
pub mod packet;
pub mod pipeline;
pub mod power;
pub mod scheduler;
pub mod workload;

pub use config::{CxlParams, SimConfig};
pub use engine::HnlpuEngine;
pub use fabric::{collective_cycles, collective_retry_ns, retry_round_factor, CollectiveKind};
pub use hbm::KvCacheModel;
pub use packet::{PacketFabric, PacketSim, PacketSimReport};
pub use pipeline::{Breakdown, LayerTiming};
pub use power::{SystemPowerModel, WorkloadEnergy};
pub use scheduler::{BatchScheduler, NoPrefix, PrefixOracle, Request, RoundPlan, SchedulerReport};
pub use workload::{
    shared_prefix_len, shared_prefix_tokens, WorkloadKind, WorkloadSpec, DIURNAL_PERIOD_S,
    SHARED_PREFIX_GROUPS,
};
