//! Continuous batching over the pipeline slots (§5.2).
//!
//! HNLPU implements continuous batching in hardware: up to 216 sequences
//! occupy the 6 × 36 pipeline slots; finished sequences release their slot
//! immediately to queued requests. This is a discrete-time simulation at
//! token granularity: every "pipeline round" (one full traversal of the
//! pipeline) offers 216 token slots. Decoding sequences take one slot each
//! (autoregressive dependency); the remaining slots prefill queued prompt
//! tokens in parallel — prompt tokens have no mutual dependencies (§5.2),
//! so a single sequence can soak up every free slot of a round.

use crate::config::SimConfig;
use crate::pipeline::advance_interval_cycles;
use serde::Serialize;
use std::collections::VecDeque;

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Request {
    /// Arrival time in seconds.
    pub arrival_s_micros: u64,
    /// Prompt tokens (prefilled in parallel).
    pub prompt_tokens: u32,
    /// Tokens to decode.
    pub decode_tokens: u32,
}

impl Request {
    /// Build a request; arrival is given in microseconds for exactness.
    pub fn new(arrival_s_micros: u64, prompt_tokens: u32, decode_tokens: u32) -> Self {
        Request {
            arrival_s_micros,
            prompt_tokens,
            decode_tokens,
        }
    }
}

/// Per-request completion record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Completion {
    /// The request.
    pub request: Request,
    /// Time the request finished, seconds.
    pub finish_s: f64,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
}

/// Aggregate scheduler statistics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SchedulerReport {
    /// All completions, in finish order.
    pub completions: Vec<Completion>,
    /// Total decoded tokens.
    pub decoded_tokens: u64,
    /// Total prefilled prompt tokens.
    pub prefill_tokens: u64,
    /// Makespan, seconds.
    pub makespan_s: f64,
    /// Aggregate decode throughput, tokens/s.
    pub throughput_tokens_per_s: f64,
    /// Mean token-slot occupancy (0..=1), counting both decode and prefill
    /// slots.
    pub mean_occupancy: f64,
}

/// One pipeline round's slot assignment.
///
/// Sequence ids index the *input order* of the request slice handed to
/// [`BatchScheduler::plan`], so a functional engine holding the real
/// token streams can replay exactly the schedule the timing model priced.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct RoundPlan {
    /// Sequences emitting one decode token this round (autoregressive), in
    /// admission order. A sequence whose prefill completes this round
    /// chains straight into its first decode, so it may appear in both
    /// lists.
    pub decode: Vec<usize>,
    /// `(sequence id, prompt tokens prefilled this round)` pairs, FCFS in
    /// admission order. Counts are nonzero.
    pub prefill: Vec<(usize, u32)>,
}

impl RoundPlan {
    /// Token slots consumed this round (decode + prefill).
    pub fn used_slots(&self) -> u64 {
        self.decode.len() as u64 + self.prefill.iter().map(|&(_, n)| n as u64).sum::<u64>()
    }
}

/// The continuous-batching simulator.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    cfg: SimConfig,
    /// Average context assumed for interval computation.
    pub nominal_context: u64,
    /// Optional cap on concurrent sequences below the machine's pipeline
    /// slots — a degraded grid (dead chips) plans with the surviving
    /// capacity. `None` uses the full machine.
    slot_cap: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    /// Index of the request in the caller's input slice.
    seq: usize,
    req: Request,
    remaining_prefill: u32,
    remaining_decode: u32,
    arrival_s: f64,
    /// Whether the prefix oracle was consulted yet. Consultation is lazy —
    /// it happens the first round the sequence receives prefill slots,
    /// which is exactly when the functional engine admits it into a KV
    /// slot and matches its prompt against the shared tree.
    consulted: bool,
}

impl BatchScheduler {
    /// A scheduler over `cfg` assuming `nominal_context` for pipeline
    /// timing.
    pub fn new(cfg: SimConfig, nominal_context: u64) -> Self {
        BatchScheduler {
            cfg,
            nominal_context,
            slot_cap: None,
        }
    }

    /// Cap concurrent sequences at `cap` (clamped to at least 1 and at
    /// most the machine's pipeline slots): the slot budget a degraded
    /// grid's survivors can actually serve. Round timing is unchanged —
    /// the pipeline still traverses every stage; dead chips just host no
    /// sequences.
    pub fn with_slot_cap(mut self, cap: usize) -> Self {
        self.slot_cap = Some(cap.max(1));
        self
    }

    /// Concurrent-sequence capacity (the machine's pipeline slots, less
    /// any degraded-grid cap).
    pub fn slots(&self) -> usize {
        let machine = self.cfg.pipeline_slots() as usize;
        match self.slot_cap {
            Some(cap) => cap.min(machine),
            None => machine,
        }
    }

    /// Virtual-time length of one pipeline round, seconds: every slot
    /// advances one token, so a round costs `pipeline_slots()` advance
    /// intervals at this scheduler's nominal context.
    ///
    /// The online serving frontend (`hnlpu-llm::serve`) advances its
    /// virtual clock by exactly this amount per round so its incremental
    /// schedule reproduces [`plan`](Self::plan) bit for bit.
    pub fn round_s(&self) -> f64 {
        self.cfg.pipeline_slots() as f64 * advance_interval_cycles(&self.cfg, self.nominal_context)
            / self.cfg.clock_hz
    }

    /// Simulate `requests` (any order; sorted internally by arrival).
    ///
    /// Each round offers `pipeline_slots()` token slots: one per decoding
    /// sequence (autoregressive), with the remainder shared round-robin by
    /// prefilling sequences (prompt tokens are mutually independent).
    pub fn run(&self, requests: &[Request]) -> SchedulerReport {
        self.plan(requests).0
    }

    /// As [`run`](Self::run), but also return the per-round slot
    /// assignments so a functional engine can execute the same schedule.
    pub fn plan(&self, requests: &[Request]) -> (SchedulerReport, Vec<RoundPlan>) {
        self.plan_with_prefixes(requests, &mut NoPrefix)
    }

    /// As [`plan`](Self::plan), but admissions consult a [`PrefixOracle`]
    /// so the schedule charges only the *unmatched suffix* of each
    /// prompt: tokens served from a shared prefix cache never occupy a
    /// prefill slot. The oracle's commit hook fires, in admission order,
    /// for every sequence the round finishes prefilling — mirroring the
    /// engine, where a prompt's blocks enter the shared tree at the end
    /// of the round that completes its prefill, and admissions only see
    /// commits from strictly earlier rounds.
    pub fn plan_with_prefixes(
        &self,
        requests: &[Request],
        oracle: &mut dyn PrefixOracle,
    ) -> (SchedulerReport, Vec<RoundPlan>) {
        let mut queue: Vec<(usize, Request)> = requests.iter().copied().enumerate().collect();
        // Stable: equal arrivals keep input order.
        queue.sort_by_key(|(_, r)| r.arrival_s_micros);
        let mut queue: VecDeque<(usize, Request)> = queue.into();

        let slots = self.slots();
        // One pipeline round = all slots advance one token = slots x the
        // advance interval.
        let round_s = self.round_s();

        let mut resident: Vec<Resident> = Vec::with_capacity(slots);
        let mut completions = Vec::new();
        let mut plans = Vec::new();
        let mut decoded: u64 = 0;
        let mut prefilled: u64 = 0;
        let mut occupancy_sum = 0.0;
        let mut rounds = 0u64;
        let mut now = 0.0f64;

        while !queue.is_empty() || !resident.is_empty() {
            // Admit arrivals into free sequence slots.
            while resident.len() < slots {
                let due =
                    matches!(queue.front(), Some((_, r)) if r.arrival_s_micros as f64 / 1e6 <= now);
                let Some((seq, req)) = (if due { queue.pop_front() } else { None }) else {
                    break;
                };
                resident.push(Resident {
                    seq,
                    req,
                    remaining_prefill: req.prompt_tokens,
                    remaining_decode: req.decode_tokens,
                    arrival_s: req.arrival_s_micros as f64 / 1e6,
                    consulted: false,
                });
            }
            if resident.is_empty() {
                // Idle until the next arrival.
                if let Some((_, r)) = queue.front() {
                    now = now.max(r.arrival_s_micros as f64 / 1e6);
                }
                continue;
            }
            // One pipeline round: decode slots first, prefill fills the rest.
            now += round_s;
            rounds += 1;
            let mut plan = RoundPlan::default();
            // Budget/occupancy count decode slots claimed at round start;
            // `plan.decode` itself is recorded post-prefill below, because
            // a prefill that completes this round chains into decode.
            let decoding = resident
                .iter()
                .filter(|r| r.remaining_prefill == 0 && r.remaining_decode > 0)
                .count();
            let mut prefill_budget = slots.saturating_sub(decoding) as u64;
            let mut used = decoding as u64;
            // First-come-first-served prefill: finish early arrivals'
            // prompts before starting later ones (minimizes makespan and
            // matches continuous-batching practice).
            let mut completed: Vec<(usize, Request)> = Vec::new();
            for r in resident.iter_mut() {
                if prefill_budget == 0 {
                    break;
                }
                if r.remaining_prefill > 0 {
                    if !r.consulted {
                        // Charge only the unmatched suffix: a cache can
                        // serve at most `prompt_tokens - 1` positions
                        // because the final prompt token must run to
                        // produce the first decode's logits. The clamp
                        // also guarantees a consulted sequence prefills
                        // at least one token this round.
                        r.consulted = true;
                        let matched = oracle
                            .matched_on_admit(r.seq, &r.req)
                            .min(r.req.prompt_tokens.saturating_sub(1));
                        r.remaining_prefill -= matched;
                    }
                    let take = r.remaining_prefill.min(prefill_budget as u32);
                    r.remaining_prefill -= take;
                    prefill_budget -= take as u64;
                    prefilled += take as u64;
                    used += take as u64;
                    plan.prefill.push((r.seq, take));
                    if r.remaining_prefill == 0 {
                        completed.push((r.seq, r.req));
                    }
                }
            }
            // Commits land at the end of the round, so every consultation
            // within one round sees the same tree — exactly what the
            // functional engine does (admit + match at round start, commit
            // completed prompts after the round's compute).
            for (seq, req) in &completed {
                oracle.on_prefill_complete(*seq, req);
            }
            occupancy_sum += used as f64 / slots as f64;
            let mut still = Vec::with_capacity(resident.len());
            for mut r in resident.into_iter() {
                if r.remaining_prefill == 0 && r.remaining_decode > 0 {
                    r.remaining_decode -= 1;
                    decoded += 1;
                    plan.decode.push(r.seq);
                }
                if r.remaining_prefill == 0 && r.remaining_decode == 0 {
                    completions.push(Completion {
                        request: r.req,
                        finish_s: now,
                        latency_s: now - r.arrival_s,
                    });
                } else {
                    still.push(r);
                }
            }
            plans.push(plan);
            resident = still;
        }

        let report = SchedulerReport {
            decoded_tokens: decoded,
            prefill_tokens: prefilled,
            makespan_s: now,
            throughput_tokens_per_s: if now > 0.0 { decoded as f64 / now } else { 0.0 },
            mean_occupancy: if rounds > 0 {
                occupancy_sum / rounds as f64
            } else {
                0.0
            },
            completions,
        };
        (report, plans)
    }
}

/// Admission-time prefix consultation for
/// [`plan_with_prefixes`](BatchScheduler::plan_with_prefixes).
///
/// The scheduler is a pure timing model: it knows token *counts*, not token
/// *ids*. An oracle holding the real prompts (e.g. a planning
/// `hnlpu-llm::PrefixCache`) answers how many leading positions of each
/// admitted sequence are already resident in the shared prefix tree, and is
/// told when a sequence's prefill completes so its blocks become matchable
/// by strictly later rounds — exactly the commit schedule the functional
/// engine follows.
pub trait PrefixOracle {
    /// Leading prompt positions of `seq` served from cache. Called once
    /// per sequence, in the round it first receives prefill slots — the
    /// round the functional engine admits it into a KV slot and matches
    /// its prompt. The scheduler clamps the answer to `prompt_tokens - 1`:
    /// the final prompt token is always prefilled to produce the first
    /// decode's logits.
    fn matched_on_admit(&mut self, seq: usize, req: &Request) -> u32;

    /// `seq` finished prefilling this round; its prompt blocks are now
    /// committed and visible to later admissions.
    fn on_prefill_complete(&mut self, seq: usize, req: &Request);
}

/// The null oracle: nothing matches, commits are ignored. [`plan`]
/// (BatchScheduler::plan) delegates through this, so dense scheduling is
/// the `NoPrefix` special case.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefix;

impl PrefixOracle for NoPrefix {
    fn matched_on_admit(&mut self, _seq: usize, _req: &Request) -> u32 {
        0
    }
    fn on_prefill_complete(&mut self, _seq: usize, _req: &Request) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler() -> BatchScheduler {
        BatchScheduler::new(SimConfig::paper_default(), 2048)
    }

    #[test]
    fn slot_cap_bounds_concurrency_not_round_time() {
        let full = scheduler();
        let capped = scheduler().with_slot_cap(2);
        assert_eq!(capped.slots(), 2);
        assert_eq!(capped.round_s(), full.round_s());
        // Zero clamps to one slot; an over-machine cap clamps to machine.
        assert_eq!(scheduler().with_slot_cap(0).slots(), 1);
        assert_eq!(scheduler().with_slot_cap(usize::MAX).slots(), full.slots());
        // With 2 slots, 3 concurrent arrivals serialize: never > 2 live.
        let reqs: Vec<Request> = (0..3).map(|_| Request::new(0, 1, 2)).collect();
        let (_, plans) = capped.plan(&reqs);
        for plan in &plans {
            let mut live: Vec<usize> = plan.decode.clone();
            for &(seq, _) in &plan.prefill {
                if !live.contains(&seq) {
                    live.push(seq);
                }
            }
            assert!(live.len() <= 2, "round exceeded the slot cap: {plan:?}");
        }
    }

    #[test]
    fn empty_workload() {
        let rep = scheduler().run(&[]);
        assert_eq!(rep.decoded_tokens, 0);
        assert_eq!(rep.completions.len(), 0);
    }

    #[test]
    fn single_request_latency() {
        let rep = scheduler().run(&[Request::new(0, 128, 100)]);
        assert_eq!(rep.completions.len(), 1);
        // 100 decode rounds + 1 prefill round at ~1.1k tokens/s/sequence.
        let lat = rep.completions[0].latency_s;
        assert!(lat > 0.05 && lat < 0.25, "latency = {lat}");
    }

    #[test]
    fn full_batch_reaches_system_throughput() {
        // 216 long-running sequences saturate the pipeline: aggregate
        // decode rate approaches the Table 2 figure.
        let reqs: Vec<Request> = (0..216).map(|_| Request::new(0, 64, 2000)).collect();
        let rep = scheduler().run(&reqs);
        // Decode-priority lets the tail of the prefill work starve briefly
        // (a real continuous-batching queueing effect), so occupancy sits
        // just below 1.
        assert!(
            rep.mean_occupancy > 0.85,
            "occupancy = {}",
            rep.mean_occupancy
        );
        assert!(
            rep.throughput_tokens_per_s > 200_000.0,
            "throughput = {:.0}",
            rep.throughput_tokens_per_s
        );
    }

    #[test]
    fn oversubscription_queues_requests() {
        let reqs: Vec<Request> = (0..400).map(|_| Request::new(0, 16, 50)).collect();
        let rep = scheduler().run(&reqs);
        assert_eq!(rep.completions.len(), 400);
        // Later completions belong to the second wave.
        let first = rep.completions.first().unwrap().finish_s;
        let last = rep.completions.last().unwrap().finish_s;
        assert!(last > first * 1.5);
    }

    #[test]
    fn arrivals_respected() {
        let rep = scheduler().run(&[
            Request::new(0, 16, 10),
            Request::new(5_000_000, 16, 10), // arrives at t = 5 s
        ]);
        assert_eq!(rep.completions.len(), 2);
        assert!(rep.completions[1].finish_s >= 5.0);
        // The second request's latency is small (machine was idle).
        assert!(rep.completions[1].latency_s < 0.1);
    }

    #[test]
    fn decoded_token_accounting() {
        let rep = scheduler().run(&[Request::new(0, 8, 25)]);
        // Exactly the 25 decode tokens and the 8 prompt tokens.
        assert_eq!(rep.decoded_tokens, 25);
        assert_eq!(rep.prefill_tokens, 8);
    }

    #[test]
    fn long_prompt_prefills_at_pipeline_width() {
        // A 2,160-token prompt = 10 full rounds of 216-wide prefill before
        // any decode token; short prompts prefill in one round.
        let long = scheduler().run(&[Request::new(0, 2160, 1)]);
        let short = scheduler().run(&[Request::new(0, 100, 1)]);
        // 10 rounds (decode chains onto the final prefill round) vs 1.
        let ratio = long.makespan_s / short.makespan_s;
        assert!((ratio - 10.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn plans_replay_the_run_report() {
        let reqs: Vec<Request> = (0..10)
            .map(|i| Request::new(i * 100_000, 32 + i as u32, 20))
            .collect();
        let s = scheduler();
        let (report, plans) = s.plan(&reqs);
        assert_eq!(report, s.run(&reqs));
        let decoded: u64 = plans.iter().map(|p| p.decode.len() as u64).sum();
        let prefilled: u64 = plans
            .iter()
            .flat_map(|p| p.prefill.iter())
            .map(|&(_, n)| n as u64)
            .sum();
        assert_eq!(decoded, report.decoded_tokens);
        assert_eq!(prefilled, report.prefill_tokens);
        assert!(plans.len() as u64 * s.slots() as u64 >= decoded + prefilled);
    }

    #[test]
    fn decode_chains_onto_final_prefill_round() {
        // Seed-locked semantics: the round that finishes a prompt also
        // emits the first decode token (see long_prompt_prefills_at
        // pipeline_width), and the plan records that chained decode.
        let (_, plans) = scheduler().plan(&[Request::new(0, 8, 2)]);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].prefill, vec![(0, 8)]);
        assert_eq!(plans[0].decode, vec![0]);
        assert_eq!(plans[1].decode, vec![0]);
        assert!(plans[1].prefill.is_empty());
    }

    #[test]
    fn round_s_times_rounds_is_the_makespan() {
        // With every arrival at t = 0 the clock never idle-jumps, so the
        // makespan is exactly the round count times the exposed round
        // length — the invariant the online serving loop builds on.
        let s = scheduler();
        let reqs: Vec<Request> = (0..40).map(|i| Request::new(0, 8 + i, 12)).collect();
        let (report, plans) = s.plan(&reqs);
        let expect = plans.len() as f64 * s.round_s();
        assert!((report.makespan_s - expect).abs() < 1e-12, "{expect}");
        assert!(s.round_s() > 0.0);
    }

    #[test]
    fn decode_has_priority_over_prefill() {
        // With 216 decoding sequences resident, a late-arriving giant
        // prompt must not stall decode: occupancy stays ~1 and decode
        // tokens keep flowing every round.
        let mut reqs: Vec<Request> = (0..216).map(|_| Request::new(0, 1, 300)).collect();
        reqs.push(Request::new(1, 50_000, 1));
        let rep = scheduler().run(&reqs);
        assert_eq!(rep.completions.len(), 217);
        assert_eq!(rep.decoded_tokens, 216 * 300 + 1);
    }

    fn build(specs: &[(u64, u32, u32)]) -> Vec<Request> {
        specs
            .iter()
            .map(|&(a, p, d)| Request::new(a, p, d))
            .collect()
    }

    /// Fixed per-sequence match counts plus a commit log, for checking the
    /// oracle plumbing without a real prefix tree.
    struct FixedOracle {
        matched: Vec<u32>,
        commits: Vec<usize>,
    }

    impl PrefixOracle for FixedOracle {
        fn matched_on_admit(&mut self, seq: usize, _req: &Request) -> u32 {
            self.matched.get(seq).copied().unwrap_or(0)
        }
        fn on_prefill_complete(&mut self, seq: usize, _req: &Request) {
            self.commits.push(seq);
        }
    }

    #[test]
    fn oracle_charges_only_the_unmatched_suffix() {
        let reqs = build(&[(0, 100, 5), (0, 100, 5), (0, 100, 5)]);
        let (dense, _) = scheduler().plan(&reqs);
        // Seq 1 matches 60 positions, seq 2 matches its whole prompt —
        // clamped to 99 so the final token still prefills.
        let mut oracle = FixedOracle {
            matched: vec![0, 60, 400],
            commits: Vec::new(),
        };
        let (rep, plans) = scheduler().plan_with_prefixes(&reqs, &mut oracle);
        assert_eq!(rep.prefill_tokens, dense.prefill_tokens - 60 - 99);
        assert_eq!(rep.decoded_tokens, dense.decoded_tokens);
        assert_eq!(rep.completions.len(), 3);
        // Every sequence committed exactly once, in admission order.
        assert_eq!(oracle.commits, vec![0, 1, 2]);
        // Per-sequence prefill totals equal the unmatched suffix.
        let mut per_seq = [0u64; 3];
        for plan in &plans {
            for &(seq, n) in &plan.prefill {
                per_seq[seq] += n as u64;
            }
        }
        assert_eq!(per_seq, [100, 40, 1]);
    }

    #[test]
    fn null_oracle_reproduces_dense_plan() {
        let reqs = build(&[(0, 37, 9), (5_000, 120, 3), (9_000, 4, 30)]);
        let (dense, dense_plans) = scheduler().plan(&reqs);
        let (rep, plans) = scheduler().plan_with_prefixes(&reqs, &mut NoPrefix);
        assert_eq!(rep, dense);
        assert_eq!(plans, dense_plans);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn scheduler() -> BatchScheduler {
        BatchScheduler::new(SimConfig::paper_default(), 2048)
    }

    /// Requests from (arrival micros, prompt, decode) triples.
    fn build(specs: &[(u64, u32, u32)]) -> Vec<Request> {
        specs
            .iter()
            .map(|&(a, p, d)| Request::new(a, p, d))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Token conservation: every prompt token is prefilled exactly
        /// once, every decode token decoded exactly once, and every
        /// request completes.
        #[test]
        fn tokens_are_conserved(
            specs in prop::collection::vec(
                (0u64..2_000_000, 0u32..600, 0u32..120),
                1..40,
            ),
        ) {
            let reqs = build(&specs);
            let rep = scheduler().run(&reqs);
            prop_assert_eq!(rep.completions.len(), reqs.len());
            let prompts: u64 = specs.iter().map(|s| s.1 as u64).sum();
            let decodes: u64 = specs.iter().map(|s| s.2 as u64).sum();
            prop_assert_eq!(rep.prefill_tokens, prompts);
            prop_assert_eq!(rep.decoded_tokens, decodes);
        }

        /// Slot occupancy never exceeds `pipeline_slots()`: per round, the
        /// budgeted token slots and the concurrently active sequences both
        /// stay within capacity, and mean occupancy is a true fraction.
        #[test]
        fn occupancy_never_exceeds_pipeline_slots(
            specs in prop::collection::vec(
                (0u64..1_000_000, 0u32..2_000, 0u32..80),
                1..60,
            ),
        ) {
            let s = scheduler();
            let slots = s.slots() as u64;
            let reqs = build(&specs);
            let (rep, plans) = s.plan(&reqs);
            prop_assert!(rep.mean_occupancy <= 1.0 + 1e-12);
            for plan in &plans {
                // A chained decode shares its sequence's round with the
                // prefill that completed it, so budgeted slots are the
                // prefill tokens plus the non-chained decodes.
                let chained = plan
                    .decode
                    .iter()
                    .filter(|seq| plan.prefill.iter().any(|(p, _)| p == *seq))
                    .count() as u64;
                let budgeted = plan.used_slots() - chained;
                prop_assert!(budgeted <= slots, "budgeted {budgeted} > {slots}");
                // Active sequences this round never exceed the machine's
                // concurrent-sequence capacity.
                let mut active: Vec<usize> = plan.decode.clone();
                active.extend(plan.prefill.iter().map(|&(seq, _)| seq));
                active.sort_unstable();
                active.dedup();
                prop_assert!(active.len() as u64 <= slots);
            }
        }

        /// Mean latency is monotone in arrival rate: spreading the same
        /// requests further apart (lower rate) never increases the mean
        /// latency produced by FCFS admission with decode priority.
        #[test]
        fn latency_monotone_in_arrival_rate(
            n in 2usize..40,
            gap_micros in 1_000u64..500_000,
            prompt in 1u32..400,
            decode in 1u32..80,
        ) {
            let fast: Vec<Request> = (0..n)
                .map(|i| Request::new(i as u64 * gap_micros, prompt, decode))
                .collect();
            let slow: Vec<Request> = (0..n)
                .map(|i| Request::new(i as u64 * gap_micros * 2, prompt, decode))
                .collect();
            let mean = |rep: &SchedulerReport| {
                rep.completions.iter().map(|c| c.latency_s).sum::<f64>()
                    / rep.completions.len() as f64
            };
            let s = scheduler();
            let fast_mean = mean(&s.run(&fast));
            let slow_mean = mean(&s.run(&slow));
            // Round-boundary alignment can move individual latencies by a
            // fraction of a round; allow that slack on the mean.
            prop_assert!(
                slow_mean <= fast_mean + 1e-9 + 2e-3,
                "halving the arrival rate raised mean latency: {slow_mean} > {fast_mean}"
            );
        }
    }
}
