//! Collective-communication timing over the router-less row/column
//! fully-connected CXL fabric (§4.2).
//!
//! Each chip has direct links to its 3 row peers and 3 column peers. A
//! collective decomposes into *rounds*; each round is one message exchange:
//! `latency + protocol + payload/bandwidth`.

use crate::config::{CxlParams, SimConfig};

/// Collective operations the Interconnect Engine supports (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Distribute identical data to a group.
    Broadcast,
    /// Aggregate partial sums to one member.
    Reduce,
    /// Reduce + redistribute (reduce round then broadcast round).
    AllReduce,
    /// Concatenate per-chip fragments on every member.
    AllGather,
    /// Distribute distinct fragments.
    Scatter,
}

impl CollectiveKind {
    /// Exchange rounds on a fully-connected group (direct links make each
    /// phase a single simultaneous exchange).
    pub fn rounds(self) -> u32 {
        match self {
            CollectiveKind::Broadcast
            | CollectiveKind::Reduce
            | CollectiveKind::AllGather
            | CollectiveKind::Scatter => 1,
            CollectiveKind::AllReduce => 2,
        }
    }
}

/// Time of one collective over a fully-connected group, nanoseconds.
///
/// `bytes` is the per-chip payload. In each round every chip streams its
/// payload to the `group - 1` peers over independent links; serialization is
/// therefore one payload per link.
pub fn collective_ns(kind: CollectiveKind, bytes: u64, cxl: &CxlParams) -> f64 {
    let per_round =
        cxl.latency_ns + cxl.protocol_ns + bytes as f64 / cxl.bandwidth_bytes_per_s * 1e9;
    kind.rounds() as f64 * per_round
}

/// Collective time in clock cycles.
pub fn collective_cycles(kind: CollectiveKind, bytes: u64, cfg: &SimConfig) -> f64 {
    cfg.ns_to_cycles(collective_ns(kind, bytes, &cfg.cxl))
}

/// An all-chip (16-way) all-reduce = row all-reduce then column all-reduce.
pub fn all_chip_all_reduce_cycles(bytes: u64, cfg: &SimConfig) -> f64 {
    2.0 * collective_cycles(CollectiveKind::AllReduce, bytes, cfg)
}

/// Round-time stretch when a transient link fault forces `retries`
/// link-layer retransmissions: each retry replays the exchange, doubling
/// the effective round time (`2^retries`).
///
/// `retries == 0` returns exactly `1.0` — a fault-free round's timing is
/// bit-identical with or without the fault machinery in the loop, which
/// the serving differential harness depends on. Retries are clamped at 32
/// to keep the factor finite for absurd plans.
pub fn retry_round_factor(retries: u32) -> f64 {
    (1u64 << retries.min(32)) as f64
}

/// Collective time under `retries` link-layer retransmissions per round,
/// nanoseconds: [`collective_ns`] stretched by [`retry_round_factor`].
pub fn collective_retry_ns(kind: CollectiveKind, bytes: u64, retries: u32, cxl: &CxlParams) -> f64 {
    collective_ns(kind, bytes, cxl) * retry_round_factor(retries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_is_two_rounds() {
        assert_eq!(CollectiveKind::AllReduce.rounds(), 2);
        assert_eq!(CollectiveKind::Broadcast.rounds(), 1);
    }

    #[test]
    fn small_allreduce_costs_about_600ns() {
        // Calibration anchor: 2 KB col-group all-reduce ~0.6 µs.
        let ns = collective_ns(CollectiveKind::AllReduce, 2048, &CxlParams::default());
        assert!((550.0..680.0).contains(&ns), "ns = {ns}");
    }

    #[test]
    fn payload_grows_time_linearly() {
        let cxl = CxlParams::default();
        let small = collective_ns(CollectiveKind::Reduce, 1024, &cxl);
        let big = collective_ns(CollectiveKind::Reduce, 1024 + 128 * 1024, &cxl);
        let delta = big - small;
        assert!(
            (delta - 128.0 * 1024.0 / 128e9 * 1e9).abs() < 1.0,
            "delta = {delta}"
        );
    }

    #[test]
    fn sixteen_way_allreduce_is_two_phases() {
        let cfg = SimConfig::paper_default();
        let one = collective_cycles(CollectiveKind::AllReduce, 4096, &cfg);
        let all = all_chip_all_reduce_cycles(4096, &cfg);
        assert!((all - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn zero_retries_is_exactly_unity() {
        // The fault-free differential invariant: stretching by the retry
        // factor at 0 retries must be a bit-exact no-op.
        assert_eq!(retry_round_factor(0), 1.0);
        let cxl = CxlParams::default();
        let plain = collective_ns(CollectiveKind::AllReduce, 2048, &cxl);
        let faulted = collective_retry_ns(CollectiveKind::AllReduce, 2048, 0, &cxl);
        assert_eq!(plain.to_bits(), faulted.to_bits());
    }

    #[test]
    fn retries_double_per_retransmission_and_clamp() {
        assert_eq!(retry_round_factor(1), 2.0);
        assert_eq!(retry_round_factor(3), 8.0);
        assert_eq!(retry_round_factor(40), retry_round_factor(32));
        let cxl = CxlParams::default();
        let base = collective_ns(CollectiveKind::Reduce, 4096, &cxl);
        let twice = collective_retry_ns(CollectiveKind::Reduce, 4096, 1, &cxl);
        assert_eq!(twice, base * 2.0);
    }

    #[test]
    fn latency_floor_dominates_tiny_payloads() {
        let cxl = CxlParams::default();
        let a = collective_ns(CollectiveKind::Reduce, 1, &cxl);
        let b = collective_ns(CollectiveKind::Reduce, 512, &cxl);
        assert!((b - a) / a < 0.05);
    }
}
