//! System power and energy accounting on top of the pipeline model.
//!
//! The chip-level power figures come from the embed crate's Table 1 model;
//! this module turns them into workload energy: power scales between an
//! idle floor (leakage, clocks, HBM refresh, link idle) and the full-
//! pipeline peak with token-slot occupancy, and energy-per-token follows
//! from throughput.

use crate::config::SimConfig;
use crate::pipeline::decode_throughput;
use crate::scheduler::SchedulerReport;
use serde::Serialize;

/// System-level power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SystemPowerModel {
    /// Full-pipeline system power, watts (Table 2: 6.9 kW).
    pub peak_w: f64,
    /// Idle power as a fraction of peak (leakage + clock trees + HBM
    /// refresh + CXL idle; post-layout power reports put this near 35%).
    pub idle_fraction: f64,
}

impl SystemPowerModel {
    /// The paper system.
    pub fn paper_default() -> Self {
        SystemPowerModel {
            peak_w: 6_900.0,
            idle_fraction: 0.35,
        }
    }

    /// Power at a given token-slot occupancy (0..=1).
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is outside `[0, 1]`.
    pub fn power_at(&self, occupancy: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&occupancy),
            "occupancy {occupancy} out of range"
        );
        self.peak_w * (self.idle_fraction + (1.0 - self.idle_fraction) * occupancy)
    }

    /// Energy per decoded token at steady state and full batch, joules.
    pub fn energy_per_token_j(&self, cfg: &SimConfig, context: u64) -> f64 {
        self.power_at(1.0) / decode_throughput(cfg, context)
    }

    /// Tokens per joule at `context` (the Table 2 headline is 36 at 2 K).
    pub fn tokens_per_joule(&self, cfg: &SimConfig, context: u64) -> f64 {
        1.0 / self.energy_per_token_j(cfg, context)
    }

    /// Energy summary of a scheduler run.
    pub fn workload_energy(&self, report: &SchedulerReport) -> WorkloadEnergy {
        let avg_power = self.power_at(report.mean_occupancy.clamp(0.0, 1.0));
        let energy_j = avg_power * report.makespan_s;
        let tokens = report.decoded_tokens + report.prefill_tokens;
        WorkloadEnergy {
            energy_j,
            avg_power_w: avg_power,
            joules_per_token: if tokens > 0 {
                energy_j / tokens as f64
            } else {
                0.0
            },
        }
    }
}

/// Energy accounting for one workload run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadEnergy {
    /// Total energy, joules.
    pub energy_j: f64,
    /// Average power, watts.
    pub avg_power_w: f64,
    /// Joules per processed token (prefill + decode).
    pub joules_per_token: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{BatchScheduler, Request};

    #[test]
    fn table2_energy_efficiency() {
        // 36 tokens/J at 2K context and 6.9 kW.
        let m = SystemPowerModel::paper_default();
        let tpj = m.tokens_per_joule(&SimConfig::paper_default(), 2048);
        assert!((tpj - 36.0).abs() < 2.0, "tokens/J = {tpj:.1}");
    }

    #[test]
    fn idle_floor_and_peak() {
        let m = SystemPowerModel::paper_default();
        assert!((m.power_at(0.0) - 2_415.0).abs() < 1.0);
        assert!((m.power_at(1.0) - 6_900.0).abs() < 1e-9);
        assert!(m.power_at(0.5) > m.power_at(0.0));
    }

    #[test]
    fn long_context_costs_more_energy_per_token() {
        let m = SystemPowerModel::paper_default();
        let cfg = SimConfig::paper_default();
        assert!(m.energy_per_token_j(&cfg, 262_144) > 3.0 * m.energy_per_token_j(&cfg, 2_048));
    }

    #[test]
    fn workload_energy_integrates_power() {
        let m = SystemPowerModel::paper_default();
        let cfg = SimConfig::paper_default();
        let reqs: Vec<Request> = (0..216).map(|_| Request::new(0, 16, 500)).collect();
        let rep = BatchScheduler::new(cfg, 2048).run(&reqs);
        let e = m.workload_energy(&rep);
        assert!(e.energy_j > 0.0);
        assert!(e.avg_power_w > m.power_at(0.0) && e.avg_power_w <= m.peak_w);
        // Near-saturated decode: ~1/36 J per token, give or take occupancy.
        assert!(
            e.joules_per_token > 0.015 && e.joules_per_token < 0.06,
            "J/token = {}",
            e.joules_per_token
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn occupancy_validated() {
        SystemPowerModel::paper_default().power_at(1.5);
    }
}
