//! The full Table 3: 3-year TCO, HNLPU vs equivalently-provisioned H100
//! cluster, at low (1 node / 2,000 GPUs) and high (50 nodes / 100,000 GPUs)
//! deployment volume, under static and annually-updated model policies.

use crate::assumptions::Assumptions;
use crate::capex::{h100_capex_usd, infrastructure_usd};
use crate::carbon::total_tco2e;
use crate::opex::{h100_maintenance_usd, hnlpu_maintenance};
use hnlpu_baselines::H100Cluster;
use hnlpu_litho::nre::{NreScenario, NreSummary};
use hnlpu_litho::{CostRange, WaferPricing};

/// Deployment volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentScale {
    /// One HNLPU node ≙ 2,000 H100s.
    Low,
    /// OpenAI-scale: 50 HNLPU nodes ≙ 100,000 H100s.
    High,
}

impl DeploymentScale {
    /// HNLPU systems at this scale.
    pub fn hnlpu_systems(self) -> u32 {
        match self {
            DeploymentScale::Low => 1,
            DeploymentScale::High => 50,
        }
    }

    /// Equivalent-throughput H100 count (Appendix B note 1).
    pub fn h100_gpus(self) -> u32 {
        match self {
            DeploymentScale::Low => 2_000,
            DeploymentScale::High => 100_000,
        }
    }
}

/// Weight-update policy over the 3-year horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// No updates (static model).
    Static,
    /// Annual updates: two re-spins within the horizon.
    AnnualUpdates,
}

impl UpdatePolicy {
    /// Re-spins incurred.
    pub fn respins(self) -> u32 {
        match self {
            UpdatePolicy::Static => 0,
            UpdatePolicy::AnnualUpdates => 2,
        }
    }
}

/// One system's TCO summary (a Table 3 column).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemTco {
    /// System label.
    pub name: &'static str,
    /// Facility power, watts.
    pub facility_power_w: f64,
    /// Node/hardware price.
    pub node_price: CostRange,
    /// Datacenter infrastructure.
    pub infrastructure: CostRange,
    /// Update re-spin cost (dynamic policy total).
    pub respin_cost: CostRange,
    /// Electricity over the horizon.
    pub electricity: CostRange,
    /// Maintenance & support over the horizon.
    pub maintenance: CostRange,
    /// Total emissions, tCO2e (static policy).
    pub tco2e_static: f64,
    /// Total emissions, tCO2e (with annual updates).
    pub tco2e_dynamic: f64,
}

impl SystemTco {
    /// Initial CapEx (node + infrastructure).
    pub fn initial_capex(&self) -> CostRange {
        self.node_price + self.infrastructure
    }

    /// 3-year TCO under `policy`.
    pub fn tco(&self, policy: UpdatePolicy) -> CostRange {
        let mut t = self.initial_capex() + self.electricity + self.maintenance;
        if policy == UpdatePolicy::AnnualUpdates {
            t += self.respin_cost;
        }
        t
    }

    /// Emissions under `policy`.
    pub fn tco2e(&self, policy: UpdatePolicy) -> f64 {
        match policy {
            UpdatePolicy::Static => self.tco2e_static,
            UpdatePolicy::AnnualUpdates => self.tco2e_dynamic,
        }
    }
}

/// The assembled Table 3 at one deployment scale.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Scale analyzed.
    pub scale: DeploymentScale,
    /// HNLPU column.
    pub hnlpu: SystemTco,
    /// H100 column.
    pub h100: SystemTco,
}

impl Table3 {
    /// Build Table 3 with the paper's assumptions. `hnlpu_chip_power_w` is
    /// the per-chip power from the Table 1 model (308.39 W).
    pub fn paper(scale: DeploymentScale) -> Self {
        Self::build(scale, &Assumptions::paper(), 308.39)
    }

    /// Build with explicit assumptions.
    pub fn build(scale: DeploymentScale, a: &Assumptions, hnlpu_chip_power_w: f64) -> Self {
        let systems = scale.hnlpu_systems();
        let chips = systems * 16;

        // --- HNLPU column ---
        let nre = NreSummary::price(NreScenario::gpt_oss(systems));
        // Chip power plus module overhead (HBM devices, VRs, fans) gives
        // the 6.9 kW Table 2 system power; PUE gives the 0.010 MW Table 3
        // datacenter power.
        let it_power_w = chips as f64 * hnlpu_chip_power_w * 1.4;
        let facility_w = it_power_w * a.pue;
        let infra = infrastructure_usd(chips, facility_w, a);
        let recurring_per_chip = WaferPricing::n5().recurring_per_chip(827.08, 192.0).total();
        let spares = match scale {
            DeploymentScale::Low => a.hnlpu_spares_low,
            DeploymentScale::High => a.hnlpu_spares_high,
        };
        let maintenance = hnlpu_maintenance(spares, 16, recurring_per_chip);
        let respins = UpdatePolicy::AnnualUpdates.respins();
        let modules = chips + spares * 16;
        let hnlpu = SystemTco {
            name: "HNLPU",
            facility_power_w: facility_w,
            node_price: nre.initial_build(),
            infrastructure: CostRange::exact(infra),
            respin_cost: nre.respin() * respins as f64,
            electricity: CostRange::exact(a.electricity_usd(facility_w)),
            maintenance,
            tco2e_static: total_tco2e(facility_w, modules, 0, a),
            tco2e_dynamic: total_tco2e(facility_w, modules, respins * chips, a),
        };

        // --- H100 column ---
        let cluster = H100Cluster::new(scale.h100_gpus());
        let (hw, infra) = h100_capex_usd(&cluster, a);
        let facility_w = cluster.facility_power_w();
        let capex_total = hw + infra;
        let h100 = SystemTco {
            name: "H100",
            facility_power_w: facility_w,
            node_price: CostRange::exact(hw),
            infrastructure: CostRange::exact(infra),
            respin_cost: CostRange::zero(),
            electricity: CostRange::exact(a.electricity_usd(facility_w)),
            maintenance: CostRange::exact(h100_maintenance_usd(cluster.gpus, capex_total, a)),
            tco2e_static: total_tco2e(facility_w, cluster.gpus, 0, a),
            tco2e_dynamic: total_tco2e(facility_w, cluster.gpus, 0, a),
        };

        Table3 { scale, hnlpu, h100 }
    }

    /// TCO advantage of HNLPU over H100 under `policy`: `(low, high)`
    /// reduction factors (H100 mid ÷ HNLPU bounds, as the paper quotes).
    pub fn tco_advantage(&self, policy: UpdatePolicy) -> (f64, f64) {
        let h = self.h100.tco(policy).mid();
        let n = self.hnlpu.tco(policy);
        (h / n.high, h / n.low)
    }

    /// Carbon advantage under `policy`.
    pub fn carbon_advantage(&self, policy: UpdatePolicy) -> f64 {
        self.h100.tco2e(policy) / self.hnlpu.tco2e(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_volume_hnlpu_capex_matches_table3() {
        // Table 3: total initial CapEx $59.46M – $123.5M.
        let t = Table3::paper(DeploymentScale::Low);
        let c = t.hnlpu.initial_capex();
        assert!((c.low - 59.46e6).abs() / 59.46e6 < 0.01, "low = {}", c.low);
        assert!(
            (c.high - 123.5e6).abs() / 123.5e6 < 0.01,
            "high = {}",
            c.high
        );
    }

    #[test]
    fn high_volume_hnlpu_capex_matches_table3() {
        // Table 3: $73.13M – $140.2M.
        let t = Table3::paper(DeploymentScale::High);
        let c = t.hnlpu.initial_capex();
        assert!((c.low - 73.13e6).abs() / 73.13e6 < 0.01, "low = {}", c.low);
        assert!(
            (c.high - 140.2e6).abs() / 140.2e6 < 0.01,
            "high = {}",
            c.high
        );
    }

    #[test]
    fn h100_tco_matches_table3() {
        let low = Table3::paper(DeploymentScale::Low);
        let t = low.h100.tco(UpdatePolicy::Static);
        assert!(
            (t.mid() - 191.2e6).abs() / 191.2e6 < 0.01,
            "low = {}",
            t.mid()
        );
        let high = Table3::paper(DeploymentScale::High);
        let t = high.h100.tco(UpdatePolicy::Static);
        assert!(
            (t.mid() - 9_563.0e6).abs() / 9_563.0e6 < 0.01,
            "high = {}",
            t.mid()
        );
    }

    #[test]
    fn hnlpu_static_tco_matches_table3() {
        // Table 3: low $59.56M–$123.7M; high $74.70M–$142.1M.
        let low = Table3::paper(DeploymentScale::Low)
            .hnlpu
            .tco(UpdatePolicy::Static);
        assert!((low.low - 59.56e6).abs() / 59.56e6 < 0.01, "{}", low.low);
        assert!((low.high - 123.7e6).abs() / 123.7e6 < 0.01, "{}", low.high);
        let high = Table3::paper(DeploymentScale::High)
            .hnlpu
            .tco(UpdatePolicy::Static);
        assert!((high.low - 74.70e6).abs() / 74.70e6 < 0.02, "{}", high.low);
        assert!(
            (high.high - 142.1e6).abs() / 142.1e6 < 0.02,
            "{}",
            high.high
        );
    }

    #[test]
    fn hnlpu_dynamic_tco_matches_table3() {
        // Table 3: low $96.62M–$197.8M; high $118.9M–$229.4M.
        let low = Table3::paper(DeploymentScale::Low)
            .hnlpu
            .tco(UpdatePolicy::AnnualUpdates);
        assert!((low.low - 96.62e6).abs() / 96.62e6 < 0.01, "{}", low.low);
        assert!((low.high - 197.8e6).abs() / 197.8e6 < 0.01, "{}", low.high);
        let high = Table3::paper(DeploymentScale::High)
            .hnlpu
            .tco(UpdatePolicy::AnnualUpdates);
        assert!((high.low - 118.9e6).abs() / 118.9e6 < 0.02, "{}", high.low);
        assert!(
            (high.high - 229.4e6).abs() / 229.4e6 < 0.02,
            "{}",
            high.high
        );
    }

    #[test]
    fn high_volume_tco_advantage_is_41_to_80x() {
        // Abstract / §7.5: 41.7x – 80.4x with annual updates.
        let t = Table3::paper(DeploymentScale::High);
        let (lo, hi) = t.tco_advantage(UpdatePolicy::AnnualUpdates);
        assert!((lo - 41.7).abs() / 41.7 < 0.05, "lo = {lo:.1}");
        assert!((hi - 80.4).abs() / 80.4 < 0.05, "hi = {hi:.1}");
    }

    #[test]
    fn carbon_advantage_is_357x() {
        let t = Table3::paper(DeploymentScale::Low);
        let f = t.carbon_advantage(UpdatePolicy::AnnualUpdates);
        assert!((f - 357.0).abs() / 357.0 < 0.06, "f = {f:.0}");
    }

    #[test]
    fn facility_power_anchors() {
        let low = Table3::paper(DeploymentScale::Low);
        assert!((low.hnlpu.facility_power_w - 10_000.0).abs() < 1_000.0);
        assert!((low.h100.facility_power_w - 3.64e6).abs() / 3.64e6 < 0.01);
        let high = Table3::paper(DeploymentScale::High);
        assert!((high.hnlpu.facility_power_w - 483_000.0).abs() / 483_000.0 < 0.1);
        assert!((high.h100.facility_power_w - 182.0e6).abs() / 182.0e6 < 0.01);
    }

    #[test]
    fn electricity_matches_table3() {
        let low = Table3::paper(DeploymentScale::Low);
        assert!((low.hnlpu.electricity.mid() - 0.025e6).abs() / 0.025e6 < 0.1);
        assert!((low.h100.electricity.mid() - 9.088e6).abs() / 9.088e6 < 0.01);
        let high = Table3::paper(DeploymentScale::High);
        assert!((high.hnlpu.electricity.mid() - 1.206e6).abs() / 1.206e6 < 0.1);
        assert!((high.h100.electricity.mid() - 454.4e6).abs() / 454.4e6 < 0.01);
    }
}
