//! Sensitivity analysis over the Appendix-B assumptions.
//!
//! The paper quotes optimistic–pessimistic ranges precisely because the TCO
//! conclusion must survive assumption drift. This module sweeps the
//! assumptions the conclusion could plausibly hinge on — electricity price,
//! PUE, H100 node price, maintenance rate — and reports how the high-volume
//! TCO advantage moves.

use crate::assumptions::Assumptions;
use crate::scenario::{DeploymentScale, Table3, UpdatePolicy};
use serde::Serialize;

/// One sensitivity sweep point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SensitivityPoint {
    /// Parameter label.
    pub parameter: String,
    /// Multiplier applied to the baseline value.
    pub multiplier: f64,
    /// Resulting TCO advantage `(low, high)` bounds, annual updates,
    /// high volume.
    pub advantage: (f64, f64),
}

/// Which assumption a sweep perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Knob {
    /// $/kWh.
    ElectricityPrice,
    /// Facility PUE (clamped at ≥ 1.0).
    Pue,
    /// H100 maintenance fraction per year.
    MaintenanceRate,
    /// Embodied carbon per module (affects the carbon factor, not TCO).
    EmbodiedCarbon,
}

/// Sweep `knob` over `multipliers` at high volume with annual updates.
pub fn sweep(knob: Knob, multipliers: &[f64]) -> Vec<SensitivityPoint> {
    multipliers
        .iter()
        .map(|&m| {
            let mut a = Assumptions::paper();
            let label = match knob {
                Knob::ElectricityPrice => {
                    a.electricity_usd_per_kwh *= m;
                    "electricity $/kWh"
                }
                Knob::Pue => {
                    a.pue = (a.pue * m).max(1.0);
                    "PUE"
                }
                Knob::MaintenanceRate => {
                    a.hw_maintenance_frac_per_year *= m;
                    "maintenance %/yr"
                }
                Knob::EmbodiedCarbon => {
                    a.embodied_kg_per_module *= m;
                    "embodied kgCO2e"
                }
            };
            let t = Table3::build(DeploymentScale::High, &a, 308.39);
            SensitivityPoint {
                parameter: label.to_string(),
                multiplier: m,
                advantage: t.tco_advantage(UpdatePolicy::AnnualUpdates),
            }
        })
        .collect()
}

/// The conclusion-robustness check: across ±50% swings on every knob, the
/// high-volume TCO advantage stays above `floor`.
pub fn advantage_floor_over_knobs() -> f64 {
    let mut floor = f64::INFINITY;
    for knob in [
        Knob::ElectricityPrice,
        Knob::Pue,
        Knob::MaintenanceRate,
        Knob::EmbodiedCarbon,
    ] {
        for p in sweep(knob, &[0.5, 1.0, 1.5]) {
            floor = floor.min(p.advantage.0);
        }
    }
    floor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_multiplier_reproduces_table3() {
        let p = &sweep(Knob::ElectricityPrice, &[1.0])[0];
        assert!((p.advantage.0 - 41.7).abs() < 1.0, "{:?}", p.advantage);
        assert!((p.advantage.1 - 80.4).abs() < 1.0);
    }

    #[test]
    fn pricier_electricity_helps_hnlpu() {
        // H100's OpEx is electricity-heavy; HNLPU's is not.
        let pts = sweep(Knob::ElectricityPrice, &[0.5, 1.0, 2.0]);
        assert!(pts[2].advantage.0 > pts[0].advantage.0);
    }

    #[test]
    fn maintenance_rate_moves_the_needle() {
        let pts = sweep(Knob::MaintenanceRate, &[0.0, 1.0, 2.0]);
        assert!(pts[2].advantage.0 > pts[0].advantage.0);
    }

    #[test]
    fn embodied_carbon_does_not_change_tco() {
        let pts = sweep(Knob::EmbodiedCarbon, &[0.5, 2.0]);
        assert!((pts[0].advantage.0 - pts[1].advantage.0).abs() < 1e-9);
    }

    #[test]
    fn conclusion_survives_half_to_150_percent_swings() {
        // The paper's qualitative claim ("orders of magnitude cheaper")
        // must not hinge on any single Appendix-B knob.
        let floor = advantage_floor_over_knobs();
        assert!(floor > 25.0, "advantage floor = {floor:.1}");
    }
}
