//! Total Cost of Ownership and carbon-footprint analysis (Table 3,
//! Appendix B).
//!
//! * [`assumptions`] — every Appendix-B constant in one place.
//! * [`capex`] — node prices and datacenter infrastructure.
//! * [`opex`] — electricity and maintenance & support.
//! * [`carbon`] — embodied + operational tCO2e.
//! * [`scenario`] — the full Table 3: low/high volume, static/dynamic
//!   model-update policies, HNLPU vs equivalently-provisioned H100 cluster.

#![warn(missing_docs)]
pub mod assumptions;
pub mod blue_green;
pub mod capex;
pub mod carbon;
pub mod opex;
pub mod scenario;
pub mod sensitivity;

pub use assumptions::Assumptions;
pub use blue_green::BlueGreenPlan;
pub use scenario::{DeploymentScale, SystemTco, Table3, UpdatePolicy};
pub use sensitivity::{sweep as sensitivity_sweep, Knob, SensitivityPoint};
