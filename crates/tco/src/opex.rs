//! Operational expenditure: electricity and maintenance & support.

use crate::assumptions::Assumptions;
use hnlpu_litho::CostRange;

/// H100 maintenance & support over the horizon: software licenses plus a
/// fraction of total CapEx per year (Appendix B note 7).
pub fn h100_maintenance_usd(gpus: u32, total_capex_usd: f64, a: &Assumptions) -> f64 {
    let sw = gpus as f64 * a.sw_license_usd_per_gpu_year * a.years;
    let hw = total_capex_usd * a.hw_maintenance_frac_per_year * a.years;
    sw + hw
}

/// HNLPU maintenance: spare nodes at the recurring per-chip cost
/// (Appendix B note 7: 1 spare low-volume, 5 high-volume).
pub fn hnlpu_maintenance(
    spares: u32,
    chips_per_system: u32,
    recurring_per_chip: CostRange,
) -> CostRange {
    recurring_per_chip * (spares * chips_per_system) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_low_volume_maintenance_matches_table3() {
        // Table 3: $47.24M for 2,000 GPUs on $134.9M CapEx.
        let a = Assumptions::paper();
        let m = h100_maintenance_usd(2000, 134.9e6, &a);
        assert!((m - 47.24e6).abs() / 47.24e6 < 0.01, "m = {m}");
    }

    #[test]
    fn h100_high_volume_maintenance_matches_table3() {
        // Table 3: $2,362M for 100,000 GPUs on $6,747M CapEx.
        let a = Assumptions::paper();
        let m = h100_maintenance_usd(100_000, 6_747.0e6, &a);
        assert!((m - 2_362.0e6).abs() / 2_362.0e6 < 0.005, "m = {m}");
    }

    #[test]
    fn hnlpu_spares_match_table3() {
        // Table 3: $0.0730M–$0.1353M (one spare 16-chip node).
        let per_chip = CostRange::new(4_560.0, 8_454.0);
        let m = hnlpu_maintenance(1, 16, per_chip);
        assert!((m.low - 0.073e6).abs() / 0.073e6 < 0.01);
        assert!((m.high - 0.1353e6).abs() / 0.1353e6 < 0.01);
        // High volume: 5 spares.
        let m5 = hnlpu_maintenance(5, 16, per_chip);
        assert!((m5.low - 0.365e6).abs() / 0.365e6 < 0.01);
        assert!((m5.high - 0.6765e6).abs() / 0.6765e6 < 0.01);
    }
}
