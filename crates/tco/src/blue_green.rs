//! Blue-green model updates (§8 "Model Updates"): when a new model is
//! validated on GPU testbeds, "green" HNLPUs are manufactured while the
//! "blue" fleet keeps serving; traffic cuts over when the green fleet is
//! ready. Estimated turnaround is 6–8 weeks per re-spin.

use crate::assumptions::Assumptions;
use hnlpu_litho::nre::{NreScenario, NreSummary};
use hnlpu_litho::CostRange;

/// One blue-green update cycle for a fleet of `systems` machines.
#[derive(Debug, Clone, PartialEq)]
pub struct BlueGreenPlan {
    /// Fleet size being updated.
    pub systems: u32,
    /// Re-spin manufacturing cost of the green fleet.
    pub respin_cost: CostRange,
    /// Turnaround from mask release to cut-over, weeks.
    pub turnaround_weeks: CostRange,
    /// Extra electricity while blue and green overlap during validation
    /// and ramp (the overlap window), USD.
    pub overlap_electricity: CostRange,
}

impl BlueGreenPlan {
    /// Plan one update for `systems` machines with the paper's 6–8-week
    /// turnaround and an `overlap_days` dual-running window.
    ///
    /// `facility_w_per_system` is one machine's datacenter power
    /// (~10 kW for the gpt-oss HNLPU).
    pub fn plan(
        systems: u32,
        overlap_days: f64,
        facility_w_per_system: f64,
        a: &Assumptions,
    ) -> Self {
        let nre = NreSummary::price(NreScenario::gpt_oss(systems));
        let overlap_kwh = systems as f64 * facility_w_per_system / 1000.0 * overlap_days * 24.0;
        BlueGreenPlan {
            systems,
            respin_cost: nre.respin(),
            turnaround_weeks: CostRange::new(6.0, 8.0),
            overlap_electricity: CostRange::exact(overlap_kwh * a.electricity_usd_per_kwh),
        }
    }

    /// Total cost of the update cycle.
    pub fn total(&self) -> CostRange {
        self.respin_cost + self.overlap_electricity
    }

    /// Service downtime: zero by construction — that is the point of
    /// blue-green.
    pub fn downtime_s(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_volume_update_is_respin_dominated() {
        let a = Assumptions::paper();
        let plan = BlueGreenPlan::plan(1, 14.0, 10_000.0, &a);
        // Two weeks of 10 kW dual-running: ~$320 of electricity —
        // negligible against the ~$18.5M–$37M re-spin.
        assert!(plan.overlap_electricity.mid() < 1_000.0);
        assert!(plan.total().low > 18.0e6);
        assert_eq!(plan.downtime_s(), 0.0);
    }

    #[test]
    fn turnaround_matches_paper() {
        let a = Assumptions::paper();
        let plan = BlueGreenPlan::plan(1, 7.0, 10_000.0, &a);
        assert_eq!(plan.turnaround_weeks, CostRange::new(6.0, 8.0));
    }

    #[test]
    fn fleet_scale_raises_cost_sublinearly() {
        let a = Assumptions::paper();
        let one = BlueGreenPlan::plan(1, 7.0, 10_000.0, &a).total().mid();
        let fifty = BlueGreenPlan::plan(50, 7.0, 10_000.0, &a).total().mid();
        // Masks are shared; only wafers scale.
        assert!(fifty < 50.0 * one / 10.0, "one={one} fifty={fifty}");
        assert!(fifty > one);
    }
}
