//! Capital expenditure: nodes plus datacenter infrastructure.

use crate::assumptions::Assumptions;
use hnlpu_litho::CostRange;

/// Datacenter infrastructure cost: inter-node networking (scaled per
/// device) plus facility construction (scaled per MW of total datacenter
/// power — the basis the paper's Table 3 numbers use).
pub fn infrastructure_usd(devices: u32, facility_power_w: f64, a: &Assumptions) -> f64 {
    devices as f64 * a.network_usd_per_gpu + facility_power_w / 1e6 * a.facility_usd_per_mw
}

/// H100 cluster CapEx: hardware + infrastructure.
pub fn h100_capex_usd(cluster: &hnlpu_baselines::H100Cluster, a: &Assumptions) -> (f64, f64) {
    let hw = cluster.hardware_usd();
    let infra = infrastructure_usd(cluster.gpus, cluster.facility_power_w(), a);
    (hw, infra)
}

/// HNLPU CapEx given the node price (from the litho NRE model) and the
/// chip count/power of the deployment.
pub fn hnlpu_capex(
    node_price: CostRange,
    total_chips: u32,
    it_power_w: f64,
    a: &Assumptions,
) -> (CostRange, f64) {
    let infra = infrastructure_usd(total_chips, it_power_w, a);
    (node_price, infra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnlpu_baselines::H100Cluster;

    #[test]
    fn h100_low_volume_infra_matches_table3() {
        // Table 3: $54.93M for the 2,000-GPU cluster.
        let a = Assumptions::paper();
        let (_, infra) = h100_capex_usd(&H100Cluster::new(2000), &a);
        assert!((infra - 54.93e6).abs() / 54.93e6 < 0.01, "infra = {infra}");
    }

    #[test]
    fn h100_high_volume_infra_matches_table3() {
        // Table 3: $2,747M for 100,000 GPUs.
        let a = Assumptions::paper();
        let (hw, infra) = h100_capex_usd(&H100Cluster::new(100_000), &a);
        assert!((hw - 4_000.0e6).abs() < 1.0);
        assert!(
            (infra - 2_747.0e6).abs() / 2_747.0e6 < 0.01,
            "infra = {infra}"
        );
    }

    #[test]
    fn hnlpu_low_volume_infra_matches_table3() {
        // Table 3: $0.21M for one 16-chip node at ~9.7 kW IT load.
        let a = Assumptions::paper();
        let infra = infrastructure_usd(16, 9_660.0, &a);
        assert!((infra - 0.21e6).abs() / 0.21e6 < 0.05, "infra = {infra}");
    }

    #[test]
    fn hnlpu_high_volume_infra_matches_table3() {
        // Table 3: $10.30M for 50 nodes (800 chips, 483 kW).
        let a = Assumptions::paper();
        let infra = infrastructure_usd(800, 483_000.0, &a);
        assert!((infra - 10.30e6).abs() / 10.30e6 < 0.01, "infra = {infra}");
    }
}
