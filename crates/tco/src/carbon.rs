//! Carbon footprint: embodied manufacturing plus operational emissions
//! (Appendix B note 8).

use crate::assumptions::Assumptions;

/// Total emissions of a deployment over the horizon, tCO2e.
///
/// `modules` counts H100 cards or HNLPU chip modules, including spares;
/// `respin_modules` counts modules re-manufactured by weight-update
/// re-spins under the dynamic policy.
pub fn total_tco2e(facility_w: f64, modules: u32, respin_modules: u32, a: &Assumptions) -> f64 {
    let embodied = (modules + respin_modules) as f64 * a.embodied_kg_per_module / 1000.0;
    embodied + a.operational_tco2e(facility_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_low_volume_matches_table3() {
        // Table 3: 36,600 tCO2e for 2,000 GPUs at 3.64 MW.
        let c = total_tco2e(3.64e6, 2000, 0, &Assumptions::paper());
        assert!((c - 36_600.0).abs() / 36_600.0 < 0.01, "c = {c}");
    }

    #[test]
    fn h100_high_volume_matches_table3() {
        // Table 3: 1,830,000 tCO2e for 100,000 GPUs at 182 MW.
        let c = total_tco2e(182.0e6, 100_000, 0, &Assumptions::paper());
        assert!((c - 1_830_000.0).abs() / 1_830_000.0 < 0.01, "c = {c}");
    }

    #[test]
    fn hnlpu_low_volume_matches_table3() {
        // Table 3: 102.0 static / 106.0 dynamic for one node (+1 spare)
        // at ~10 kW facility power.
        let a = Assumptions::paper();
        let stat = total_tco2e(10_000.0, 17, 0, &a);
        assert!((stat - 102.0).abs() < 3.0, "static = {stat}");
        let dynamic = total_tco2e(10_000.0, 17, 32, &a);
        assert!((dynamic - 106.0).abs() < 3.0, "dynamic = {dynamic}");
    }

    #[test]
    fn hnlpu_high_volume_matches_table3() {
        // Table 3: 4,924 static / 5,124 dynamic for 50 nodes + 5 spares.
        let a = Assumptions::paper();
        let stat = total_tco2e(483_000.0, 805, 0, &a);
        assert!((stat - 4_924.0).abs() / 4_924.0 < 0.02, "static = {stat}");
        let dynamic = total_tco2e(483_000.0, 805, 1600, &a);
        assert!(
            (dynamic - 5_124.0).abs() / 5_124.0 < 0.02,
            "dynamic = {dynamic}"
        );
    }

    #[test]
    fn carbon_reduction_factor_is_357x() {
        // §7.5: HNLPU is ~357x lower than the H100 cluster (dynamic).
        let a = Assumptions::paper();
        let h100 = total_tco2e(3.64e6, 2000, 0, &a);
        let hnlpu = total_tco2e(10_000.0, 17, 32, &a);
        let factor = h100 / hnlpu;
        assert!(
            (factor - 357.0).abs() / 357.0 < 0.05,
            "factor = {factor:.0}"
        );
    }
}
