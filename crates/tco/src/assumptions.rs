//! Every Appendix-B constant, with its provenance note.

/// The paper's TCO/carbon assumptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assumptions {
    /// Analysis horizon, years (3-year lifecycle).
    pub years: f64,
    /// Hours per year used in the paper's energy arithmetic (8,760).
    pub hours_per_year: f64,
    /// Industrial electricity, USD/kWh (note 6: $0.095).
    pub electricity_usd_per_kwh: f64,
    /// Facility PUE (note 2: 1.4).
    pub pue: f64,
    /// Facility construction, USD per MW of critical IT load
    /// (note 4: $12 M/MW).
    pub facility_usd_per_mw: f64,
    /// Inter-node networking per H100 node (note 4: ~$45 K/node;
    /// HNLPU networking scales per chip at the same per-device rate).
    pub network_usd_per_gpu: f64,
    /// NVIDIA AI Enterprise software, USD per GPU per year (note 7).
    pub sw_license_usd_per_gpu_year: f64,
    /// Hardware maintenance as a fraction of CapEx per year (note 7: 5%).
    pub hw_maintenance_frac_per_year: f64,
    /// Embodied manufacturing emissions per H100 card or HNLPU module,
    /// kgCO2e (note 8: 124.9).
    pub embodied_kg_per_module: f64,
    /// Grid carbon intensity, kgCO2e/kWh (note 8: 0.38).
    pub grid_kg_per_kwh: f64,
    /// Spare HNLPU nodes provisioned for maintenance: low volume (note 7).
    pub hnlpu_spares_low: u32,
    /// Spare HNLPU nodes provisioned for maintenance: high volume.
    pub hnlpu_spares_high: u32,
}

impl Assumptions {
    /// The paper's values.
    pub fn paper() -> Self {
        Assumptions {
            years: 3.0,
            hours_per_year: 8_760.0,
            electricity_usd_per_kwh: 0.095,
            pue: 1.4,
            facility_usd_per_mw: 12.0e6,
            network_usd_per_gpu: 45_000.0 / 8.0,
            sw_license_usd_per_gpu_year: 4_500.0,
            hw_maintenance_frac_per_year: 0.05,
            embodied_kg_per_module: 124.9,
            grid_kg_per_kwh: 0.38,
            hnlpu_spares_low: 1,
            hnlpu_spares_high: 5,
        }
    }

    /// Hours in the full horizon.
    pub fn horizon_hours(&self) -> f64 {
        self.years * self.hours_per_year
    }

    /// Electricity cost of `facility_w` watts over the horizon, USD.
    pub fn electricity_usd(&self, facility_w: f64) -> f64 {
        facility_w / 1000.0 * self.horizon_hours() * self.electricity_usd_per_kwh
    }

    /// Operational carbon of `facility_w` watts over the horizon, tCO2e.
    pub fn operational_tco2e(&self, facility_w: f64) -> f64 {
        facility_w / 1000.0 * self.horizon_hours() * self.grid_kg_per_kwh / 1000.0
    }
}

impl Default for Assumptions {
    fn default() -> Self {
        Assumptions::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_is_three_years() {
        assert_eq!(Assumptions::paper().horizon_hours(), 26_280.0);
    }

    #[test]
    fn electricity_anchor_364mw() {
        // Table 3: 3.64 MW for 3 years = $9.088M.
        let e = Assumptions::paper().electricity_usd(3.64e6);
        assert!((e - 9.088e6).abs() / 9.088e6 < 0.005, "e = {e}");
    }

    #[test]
    fn operational_carbon_anchor() {
        // 3.64 MW over 3 years at 0.38 kg/kWh ≈ 36,356 tCO2e.
        let c = Assumptions::paper().operational_tco2e(3.64e6);
        assert!((c - 36_356.0).abs() < 100.0, "c = {c}");
    }
}
