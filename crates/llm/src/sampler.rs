//! Logit sampling (the VEX's multinomial sampling unit, §4.3).

use crate::ops::softmax;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampling strategy (the VEX sampling unit is programmable — §8's
/// "conditional decoding" future work — so all of these are hardware-
/// realizable policies).
#[derive(Debug, Clone)]
pub enum Sampler {
    /// Argmax (deterministic).
    Greedy,
    /// Seeded multinomial with temperature.
    Multinomial {
        /// Softmax temperature (> 0).
        temperature: f32,
        /// Deterministic RNG state.
        rng: StdRng,
    },
    /// Multinomial restricted to the `k` most likely tokens.
    TopK {
        /// Candidate count.
        k: usize,
        /// Softmax temperature (> 0).
        temperature: f32,
        /// Deterministic RNG state.
        rng: StdRng,
    },
    /// Nucleus sampling: the smallest candidate set with cumulative
    /// probability >= `p`.
    TopP {
        /// Cumulative-probability threshold in (0, 1].
        p: f32,
        /// Softmax temperature (> 0).
        temperature: f32,
        /// Deterministic RNG state.
        rng: StdRng,
    },
}

impl Sampler {
    /// A seeded multinomial sampler.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0`.
    pub fn multinomial(temperature: f32, seed: u64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        Sampler::Multinomial {
            temperature,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A seeded top-k sampler.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0` or `k == 0`.
    pub fn top_k(k: usize, temperature: f32, seed: u64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(k > 0, "k must be positive");
        Sampler::TopK {
            k,
            temperature,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A seeded nucleus (top-p) sampler.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0` or `p` is outside `(0, 1]`.
    pub fn top_p(p: f32, temperature: f32, seed: u64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        Sampler::TopP {
            p,
            temperature,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Pick a token id from `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty.
    pub fn sample(&mut self, logits: &[f32]) -> u32 {
        assert!(!logits.is_empty(), "cannot sample from empty logits");
        match self {
            Sampler::Greedy => argmax(logits),
            Sampler::Multinomial { temperature, rng } => {
                let scaled: Vec<f32> = logits.iter().map(|&l| l / *temperature).collect();
                let probs = softmax(&scaled);
                draw(&probs, &(0..probs.len()).collect::<Vec<_>>(), rng)
            }
            Sampler::TopK {
                k,
                temperature,
                rng,
            } => {
                let scaled: Vec<f32> = logits.iter().map(|&l| l / *temperature).collect();
                let candidates = crate::ops::topk(&scaled, (*k).min(scaled.len()));
                let cand_logits: Vec<f32> = candidates.iter().map(|&i| scaled[i]).collect();
                let probs = softmax(&cand_logits);
                draw(&probs, &candidates, rng)
            }
            Sampler::TopP {
                p,
                temperature,
                rng,
            } => {
                let scaled: Vec<f32> = logits.iter().map(|&l| l / *temperature).collect();
                let order = crate::ops::topk(&scaled, scaled.len());
                let probs = softmax(&scaled);
                // Smallest prefix of the sorted order with cumulative
                // probability >= p.
                let mut cum = 0.0f32;
                let mut cut = order.len();
                for (n, &i) in order.iter().enumerate() {
                    cum += probs[i];
                    if cum >= *p {
                        cut = n + 1;
                        break;
                    }
                }
                let candidates = &order[..cut];
                let cand_probs: Vec<f32> = {
                    let total: f32 = candidates.iter().map(|&i| probs[i]).sum();
                    candidates.iter().map(|&i| probs[i] / total).collect()
                };
                draw(&cand_probs, candidates, rng)
            }
        }
    }
}

/// Draw from `probs` (a distribution over `candidates`).
fn draw(probs: &[f32], candidates: &[usize], rng: &mut StdRng) -> u32 {
    let mut u: f32 = rng.gen_range(0.0..1.0);
    for (&cand, &p) in candidates.iter().zip(probs.iter()) {
        if u < p {
            return cand as u32;
        }
        u -= p;
    }
    candidates.last().map(|&c| c as u32).unwrap_or(0)
}

/// Deterministic argmax (lowest index wins ties).
pub fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_picks_max() {
        assert_eq!(Sampler::Greedy.sample(&[0.1, 2.0, 1.0]), 1);
    }

    #[test]
    fn greedy_tie_breaks_low() {
        assert_eq!(Sampler::Greedy.sample(&[5.0, 5.0]), 0);
    }

    #[test]
    fn multinomial_is_deterministic_per_seed() {
        let logits = vec![0.0f32; 64];
        let mut a = Sampler::multinomial(1.0, 9);
        let mut b = Sampler::multinomial(1.0, 9);
        for _ in 0..10 {
            assert_eq!(a.sample(&logits), b.sample(&logits));
        }
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let logits = [0.0, 3.0, 1.0];
        let mut s = Sampler::multinomial(0.01, 3);
        for _ in 0..20 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn top_k_restricts_support() {
        // With k=2 only the two best tokens can ever be produced.
        let logits = [0.0f32, 5.0, 4.0, -1.0];
        let mut s = Sampler::top_k(2, 1.0, 11);
        for _ in 0..200 {
            let t = s.sample(&logits);
            assert!(t == 1 || t == 2, "sampled {t}");
        }
    }

    #[test]
    fn top_k_one_is_greedy() {
        let logits = [0.3f32, 2.0, 1.0];
        let mut s = Sampler::top_k(1, 1.0, 5);
        for _ in 0..20 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn top_p_tiny_threshold_is_greedy() {
        let logits = [0.0f32, 3.0, 1.0];
        let mut s = Sampler::top_p(0.01, 1.0, 5);
        for _ in 0..20 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn top_p_one_covers_support() {
        let logits = [1.0f32, 1.0, 1.0];
        let mut s = Sampler::top_p(1.0, 1.0, 17);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[s.sample(&logits) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn top_p_excludes_tail() {
        // Token 0 has ~88% probability; p=0.5 keeps only it.
        let logits = [3.0f32, 1.0, 0.0];
        let mut s = Sampler::top_p(0.5, 1.0, 23);
        for _ in 0..100 {
            assert_eq!(s.sample(&logits), 0);
        }
    }

    #[test]
    fn multinomial_covers_support() {
        let logits = [1.0f32, 1.0];
        let mut s = Sampler::multinomial(1.0, 5);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.sample(&logits) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
