//! A byte-level (7-bit ASCII) tokenizer.
//!
//! The HNLPU's "instruction set" is the token stream (§2.1: prompts replace
//! the binary ISA). This minimal tokenizer closes the text↔token loop for
//! demos and tests: one token per ASCII byte, so it works with any model
//! whose vocabulary is at least 128 entries.

/// Byte-level tokenizer over 7-bit ASCII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AsciiTokenizer;

/// Replacement token for non-ASCII input ( `?` ).
pub const REPLACEMENT: u32 = b'?' as u32;

impl AsciiTokenizer {
    /// The tokenizer.
    pub fn new() -> Self {
        AsciiTokenizer
    }

    /// Vocabulary size (the 128 ASCII codes).
    pub fn vocab_size(&self) -> usize {
        128
    }

    /// Encode text: one token per byte; non-ASCII bytes become `?`.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.bytes()
            .map(|b| if b < 128 { b as u32 } else { REPLACEMENT })
            .collect()
    }

    /// Decode tokens back to text; out-of-range ids render as `?`,
    /// non-printable control codes as `·`.
    pub fn decode(&self, tokens: &[u32]) -> String {
        tokens
            .iter()
            .map(|&t| match t {
                9 | 10 | 13 => char::from(t as u8),
                32..=126 => char::from(t as u8),
                0..=127 => '·',
                _ => '?',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trips() {
        let tk = AsciiTokenizer::new();
        let text = "Ask me anything: 2+2?";
        assert_eq!(tk.decode(&tk.encode(text)), text);
    }

    #[test]
    fn non_ascii_becomes_replacement() {
        let tk = AsciiTokenizer::new();
        let toks = tk.encode("héllo");
        assert!(toks.contains(&REPLACEMENT));
        // Every token stays in the 128-entry vocabulary.
        assert!(toks.iter().all(|&t| t < 128));
    }

    #[test]
    fn control_codes_render_visibly() {
        let tk = AsciiTokenizer::new();
        assert_eq!(tk.decode(&[7, 65]), "·A");
        assert_eq!(tk.decode(&[999]), "?");
    }

    #[test]
    fn newlines_survive() {
        let tk = AsciiTokenizer::new();
        assert_eq!(tk.decode(&tk.encode("a\nb\tc")), "a\nb\tc");
    }

    #[test]
    fn fits_the_dataflow_test_model_vocabulary() {
        let tk = AsciiTokenizer::new();
        let vocab = hnlpu_model::zoo::dataflow_test_model().config.vocab_size;
        assert!(tk.vocab_size() <= vocab);
    }
}
