//! The 4×4-chip HNLPU dataflow executor (Figure 10 / Appendix A).
//!
//! Every tensor is computed the way the machine computes it: chips hold
//! weight *slices*, produce partial sums, and exchange them through explicit
//! collectives whose invocations and byte counts are recorded. Attention
//! follows the FlashAttention-style flow (§4.3): each chip reduces its
//! quarter of the context with running max/sum statistics, and the column
//! group combines the partials exactly.
//!
//! Weight slices stay in their resident packed-FP4 form: a chip's partial
//! product is a [`crate::kernels::matvec_block_into`] over its block of the
//! packed matrix, so nothing is ever dequantized. All per-step
//! intermediates live in a caller-provided [`Scratch`] arena
//! ([`step_with`](DataflowExecutor::step_with)); the allocating entry
//! points remain as wrappers.
//!
//! The executor is verified token-for-token against
//! [`crate::reference::Transformer`].

use crate::kernels::{
    matmul_block_into, matmul_into, matvec_block_into, matvec_into, matvec_rows_split_into,
    ROW_SPLITS,
};
use crate::kv_cache::{KvCache, PagePool, PageRef, BLOCK_POSITIONS, PAGE_SLOTS};
use crate::lora::LoraAdapter;
use crate::ops::{rmsnorm_into, softmax, softmax_in_place, swiglu_in_place, topk_into};
use crate::reference::PrefillStats;
use crate::sampler::Sampler;
use crate::scratch::{Scratch, MAX_PREFILL_PANEL};
use crate::tensor::{add_assign, dot};
use hnlpu_model::{ModelWeights, PackedFp4Matrix, TransformerConfig};

/// Chip-grid dimension (the paper's 4×4 fabric).
pub const GRID: usize = 4;

// `col_project` models the four chips of a column with the row-partitioned
// matvec kernel; its fixed split count must equal the grid dimension for
// the split boundaries to be the chips' row slices.
const _: () = assert!(ROW_SPLITS == GRID, "row splits must match the chip grid");

/// Collective-communication counters, per executor run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommCounters {
    /// Column- or row-group all-reduces.
    pub all_reduces: u64,
    /// All-chip (16-way) all-reduces.
    pub all_chip_all_reduces: u64,
    /// Reduces to a single chip.
    pub reduces: u64,
    /// All-gathers.
    pub all_gathers: u64,
    /// Total payload bytes exchanged (fp32 accounting).
    pub bytes: u64,
}

impl std::ops::Add for CommCounters {
    type Output = CommCounters;

    fn add(mut self, rhs: CommCounters) -> CommCounters {
        self += rhs;
        self
    }
}

impl std::ops::AddAssign for CommCounters {
    fn add_assign(&mut self, rhs: CommCounters) {
        self.all_reduces += rhs.all_reduces;
        self.all_chip_all_reduces += rhs.all_chip_all_reduces;
        self.reduces += rhs.reduces;
        self.all_gathers += rhs.all_gathers;
        self.bytes += rhs.bytes;
    }
}

impl std::iter::Sum for CommCounters {
    fn sum<I: Iterator<Item = CommCounters>>(iter: I) -> CommCounters {
        iter.fold(CommCounters::default(), |a, b| a + b)
    }
}

/// Liveness of the 16 hardwired chips, as a bitmask (chip `r * GRID + c`
/// is bit `r * GRID + c`). Hardwired chips cannot be repaired, so bits
/// only ever clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridHealth {
    alive: u16,
}

impl GridHealth {
    /// All 16 chips alive.
    pub fn full() -> Self {
        GridHealth { alive: u16::MAX }
    }

    /// Mark `chip` dead. Returns `true` when this changed the grid
    /// (false for an already-dead or out-of-range chip).
    pub fn fail(&mut self, chip: usize) -> bool {
        if chip >= GRID * GRID || !self.is_alive(chip) {
            return false;
        }
        self.alive &= !(1u16 << chip);
        true
    }

    /// Is `chip` alive? Out-of-range chips are dead.
    pub fn is_alive(&self, chip: usize) -> bool {
        chip < GRID * GRID && self.alive & (1u16 << chip) != 0
    }

    /// Live chips remaining.
    pub fn survivors(&self) -> usize {
        self.alive.count_ones() as usize
    }

    /// True once any chip has died.
    pub fn is_degraded(&self) -> bool {
        self.alive != u16::MAX
    }
}

impl Default for GridHealth {
    fn default() -> Self {
        GridHealth::full()
    }
}

/// A degraded grid has no survivors left to host work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridError {
    /// Every chip is dead.
    NoSurvivors,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::NoSurvivors => write!(f, "no surviving chips to host the grid's work"),
        }
    }
}

impl std::error::Error for GridError {}

/// Hosting map for a degraded grid: logical shard `r` of column `c`
/// (its home is chip `r * GRID + c`) → the surviving physical chip that
/// hosts its row-partition and KV shard.
///
/// Relocation changes *hosting only*, never numerics:
/// [`matvec_rows_split_into`] always computes the four logical
/// row-partition partials — whichever chip (or worker thread) hosts
/// each one — and its `reduce_partials` step sums them in fixed
/// logical block order. The reduction order is a property of the
/// logical shard index, not of the hosting chip, so a degraded layout's
/// results are bit-identical for *any* survivor set
/// (`degraded_hosting_is_bit_exact` below pins this).
///
/// Placement policy, deterministic: prefer the same column (cyclically
/// next live row, keeping the relocated KV shard inside the column
/// group that consumes it), else the first live chip scanning row-major
/// from the home chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedLayout {
    /// `host[col * GRID + shard]` = physical chip hosting that shard.
    host: [u8; GRID * GRID],
    survivors: usize,
}

impl DegradedLayout {
    /// Compute the hosting map for `health`.
    ///
    /// # Errors
    ///
    /// [`GridError::NoSurvivors`] when every chip is dead.
    pub fn for_health(health: &GridHealth) -> Result<Self, GridError> {
        if health.survivors() == 0 {
            return Err(GridError::NoSurvivors);
        }
        let mut host = [0u8; GRID * GRID];
        for col in 0..GRID {
            for shard in 0..GRID {
                let home = shard * GRID + col;
                let same_col = (0..GRID)
                    .map(|dr| ((shard + dr) % GRID) * GRID + col)
                    .find(|&c| health.is_alive(c));
                let anywhere = || {
                    (0..GRID * GRID)
                        .map(|d| (home + d) % (GRID * GRID))
                        .find(|&c| health.is_alive(c))
                };
                match same_col.or_else(anywhere) {
                    Some(chip) => host[col * GRID + shard] = chip as u8,
                    None => return Err(GridError::NoSurvivors),
                }
            }
        }
        Ok(DegradedLayout {
            host,
            survivors: health.survivors(),
        })
    }

    /// The physical chip hosting logical shard `shard` of column `col`.
    pub fn host_of(&self, col: usize, shard: usize) -> usize {
        self.host[col * GRID + shard] as usize
    }

    /// Live chips underlying this layout.
    pub fn survivors(&self) -> usize {
        self.survivors
    }

    /// Shards hosted away from their home chip.
    pub fn relocated(&self) -> usize {
        (0..GRID * GRID)
            .filter(|&i| {
                let (col, shard) = (i / GRID, i % GRID);
                self.host[i] as usize != shard * GRID + col
            })
            .count()
    }

    /// True when every shard sits on its home chip (healthy grid).
    pub fn is_identity(&self) -> bool {
        self.relocated() == 0
    }

    /// Concurrent-sequence capacity scaled to the surviving compute:
    /// `slots * survivors / 16`, floored, but never below one (a single
    /// surviving chip still serves, slowly).
    pub fn effective_slots(&self, slots: usize) -> usize {
        (slots * self.survivors / (GRID * GRID)).max(1)
    }
}

/// Mutable per-sequence execution state.
#[derive(Debug, Clone)]
pub struct DataflowState {
    /// `kv[col][chip_in_col]`: KV cache shard holding positions
    /// `p % 4 == chip_in_col` of the column's KV heads.
    kv: Vec<Vec<KvCache>>,
    /// Tokens consumed so far.
    position: usize,
    /// Communication counters.
    pub comm: CommCounters,
}

impl DataflowState {
    /// Tokens consumed so far.
    pub fn position(&self) -> usize {
        self.position
    }

    /// The KV shard held by chip `chip_in_col` of column `col` (positions
    /// `p % 4 == chip_in_col`).
    pub fn kv_shard(&self, col: usize, chip_in_col: usize) -> &KvCache {
        &self.kv[col][chip_in_col]
    }

    /// Total KV-cache footprint across all 16 shards at fp16 storage.
    pub fn kv_bytes_fp16(&self) -> u64 {
        self.kv
            .iter()
            .flat_map(|col| col.iter())
            .map(KvCache::bytes_fp16)
            .sum()
    }

    /// Forget every cached position and rewind to position zero, keeping
    /// the KV allocations — the fault-recovery path re-prefills an
    /// evicted sequence's history into the same buffers. Communication
    /// counters are zeroed too; the caller harvests them before the
    /// reset.
    pub fn reset_context(&mut self) {
        for col in &mut self.kv {
            for shard in col {
                shard.clear();
            }
        }
        self.position = 0;
        self.comm = CommCounters::default();
    }

    /// Pre-size every KV shard for sequences up to `positions` tokens
    /// (positions stripe `p % 4` across a column's shards), so
    /// steady-state decode appends without reallocating — held by the
    /// zero-allocation sentinel in `tests/tests/zero_alloc_decode.rs`.
    pub fn reserve_context(&mut self, positions: usize) {
        let per_shard = positions.div_ceil(GRID);
        for col in &mut self.kv {
            for shard in col {
                shard.reserve(per_shard);
            }
        }
    }

    /// Physically private KV bytes across all shards — pages shared
    /// through a [`PagePool`] are charged once to the pool, so the gap
    /// between this and [`kv_bytes_fp16`](Self::kv_bytes_fp16) is the
    /// effective capacity gained by prefix reuse.
    pub fn kv_owned_bytes_fp16(&self) -> u64 {
        self.kv
            .iter()
            .flat_map(|col| col.iter())
            .map(KvCache::owned_bytes_fp16)
            .fold(0u64, u64::saturating_add)
    }

    /// Attach a matched prompt prefix of `matched` global positions so
    /// they are read through shared pages instead of being re-prefilled.
    ///
    /// `blocks[b]` holds the pool page ids of global block `b` in shard
    /// order `col * GRID + chip_in_col`; when `matched` ends mid-block,
    /// the final set is the copy-on-write boundary — each shard with
    /// positions in the partial block takes a private copy of that page,
    /// so divergent appends never touch the committed original.
    ///
    /// # Panics
    ///
    /// Panics if the state is not fresh or `blocks` does not cover
    /// `matched` positions.
    pub fn attach_prefix(&mut self, matched: usize, blocks: &[Box<[u32]>], pool: &PagePool) {
        assert_eq!(self.position, 0, "attach_prefix requires a fresh state");
        assert_eq!(
            blocks.len(),
            matched.div_ceil(BLOCK_POSITIONS),
            "covering blocks"
        );
        let full = matched / BLOCK_POSITIONS;
        for (c, col) in self.kv.iter_mut().enumerate() {
            for (chip, shard) in col.iter_mut().enumerate() {
                let idx = c * GRID + chip;
                // Positions `p < matched` with `p % 4 == chip`.
                let local_len = (matched + GRID - 1 - chip) / GRID;
                let shared: Vec<PageRef> = blocks[..full]
                    .iter()
                    .map(|b| std::sync::Arc::clone(pool.page(b[idx])))
                    .collect();
                let boundary_slots = local_len.saturating_sub(full * PAGE_SLOTS);
                let boundary = if boundary_slots > 0 {
                    Some(pool.page(blocks[full][idx]))
                } else {
                    None
                };
                shard.attach_shared(&shared, boundary, local_len);
            }
        }
        self.position = matched;
    }

    /// Freeze global block `block` across all 16 shards and hand out
    /// its pages in shard order `col * GRID + chip_in_col`, ready to
    /// commit into a shared prefix tree. Owned pages are handed over
    /// without copying the floats; the state keeps reading them through
    /// the shared handles.
    pub fn share_block(&mut self, block: usize) -> Vec<PageRef> {
        let mut out = Vec::with_capacity(GRID * GRID);
        for col in &mut self.kv {
            for shard in col {
                out.push(shard.share_page(block));
            }
        }
        out
    }
}

/// The dataflow executor.
#[derive(Debug, Clone)]
pub struct DataflowExecutor {
    weights: ModelWeights,
    /// LoRA side-channel adapters (field-programmable HNs beside the
    /// hardwired array), one optional slot per layer on `Wq`.
    q_adapters: Vec<Option<LoraAdapter>>,
}

impl DataflowExecutor {
    /// Wrap materialized weights.
    ///
    /// # Panics
    ///
    /// Panics unless the architecture is 4×4-mappable: hidden size, KV
    /// heads, and query heads divisible by 4, experts divisible by 16
    /// (use [`hnlpu_model::zoo::dataflow_test_model`] for tests).
    pub fn new(weights: ModelWeights) -> Self {
        let c = &weights.config;
        assert!(
            c.hidden_size.is_multiple_of(GRID),
            "hidden size must split 4 ways"
        );
        assert!(
            c.attention.num_kv_heads.is_multiple_of(GRID),
            "KV heads must split across 4 columns"
        );
        assert!(
            c.attention.num_query_heads.is_multiple_of(GRID),
            "query heads must split across 4 columns"
        );
        assert!(
            c.moe.num_experts.is_multiple_of(GRID * GRID),
            "experts must split across 16 chips"
        );
        let layers = weights.config.num_layers;
        DataflowExecutor {
            weights,
            q_adapters: vec![None; layers],
        }
    }

    /// Install a LoRA adapter on `layer`'s query projection. The adapter
    /// weights live in the ~1% field-programmable side-channel; the delta
    /// is computed once per layer (the seed computed the identical value
    /// redundantly on every chip) and each column adds its slice — no
    /// extra communication.
    ///
    /// # Panics
    ///
    /// Panics if the adapter shape does not match `Wq`.
    pub fn set_q_adapter(&mut self, layer: usize, adapter: LoraAdapter) {
        let c = self.config();
        assert_eq!(adapter.rows, c.hidden_size, "adapter rows");
        assert_eq!(adapter.cols, c.attention.q_width(), "adapter cols");
        self.q_adapters[layer] = Some(adapter);
    }

    /// The architecture.
    pub fn config(&self) -> &TransformerConfig {
        &self.weights.config
    }

    /// Fresh execution state.
    pub fn new_state(&self) -> DataflowState {
        let c = self.config();
        let kv_heads_per_col = c.attention.num_kv_heads / GRID;
        DataflowState {
            kv: (0..GRID)
                .map(|_| {
                    (0..GRID)
                        .map(|_| KvCache::new(c.num_layers, kv_heads_per_col, c.attention.head_dim))
                        .collect()
                })
                .collect(),
            position: 0,
            comm: CommCounters::default(),
        }
    }

    /// A scratch arena sized for this model (reusable across steps and
    /// sequences).
    pub fn new_scratch(&self) -> Scratch {
        Scratch::new(self.config())
    }

    /// One decode step through the 16-chip machine.
    pub fn step(&self, token: u32, state: &mut DataflowState) -> Vec<f32> {
        let mut scratch = self.new_scratch();
        self.step_with(token, state, &mut scratch);
        scratch.logits
    }

    /// Allocation-free [`step`](Self::step): the logits land in
    /// `scratch.logits()`.
    // analyze: hot
    pub fn step_with(&self, token: u32, state: &mut DataflowState, scratch: &mut Scratch) {
        self.hidden_step_with(token, state, scratch);
        // Unembedding: each chip produces a vocabulary shard, all-gathered.
        let c = self.config();
        let h = c.hidden_size;
        let chips = GRID * GRID;
        let shard = c.vocab_size.div_ceil(chips);
        let Scratch { xn, logits, .. } = scratch;
        for chip in 0..chips {
            let lo = chip * shard;
            let hi = ((chip + 1) * shard).min(c.vocab_size);
            for (t, logit) in logits[lo..hi]
                .iter_mut()
                .enumerate()
                .map(|(i, l)| (lo + i, l))
            {
                *logit = dot(xn, &self.weights.embedding[t * h..(t + 1) * h]);
            }
        }
        state.comm.all_gathers += 1;
        state.comm.bytes += c.vocab_size as u64 * 4;
    }

    /// As [`step`](Self::step), but return the final normalized hidden
    /// state (replicated on all chips after the last all-reduce).
    pub fn hidden_step(&self, token: u32, state: &mut DataflowState) -> Vec<f32> {
        let mut scratch = self.new_scratch();
        self.hidden_step_with(token, state, &mut scratch);
        scratch.xn
    }

    /// Allocation-free [`hidden_step`](Self::hidden_step): the normalized
    /// hidden state lands in `scratch.hidden()`.
    // analyze: hot
    pub fn hidden_step_with(&self, token: u32, state: &mut DataflowState, scratch: &mut Scratch) {
        let c = *self.config();
        let h = c.hidden_size;
        assert!((token as usize) < c.vocab_size, "token out of vocabulary");
        // Embedding lookup is local on every chip (replicated dictionary).
        scratch
            .x
            .copy_from_slice(&self.weights.embedding[token as usize * h..(token as usize + 1) * h]);
        for layer in 0..c.num_layers {
            self.block_with(layer, state, scratch);
        }
        state.position += 1;
        let Scratch { x, xn, .. } = scratch;
        rmsnorm_into(x, xn);
    }

    /// Sequence scoring (§8 future work 3) on the 16-chip machine.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` has fewer than two entries.
    pub fn score_sequence(&self, tokens: &[u32]) -> f64 {
        assert!(tokens.len() >= 2, "need at least two tokens to score");
        let mut state = self.new_state();
        let mut scratch = self.new_scratch();
        let mut total = 0.0f64;
        self.step_with(tokens[0], &mut state, &mut scratch);
        for &next in &tokens[1..] {
            let probs = softmax(scratch.logits());
            total += (probs[next as usize].max(f32::MIN_POSITIVE) as f64).ln();
            self.step_with(next, &mut state, &mut scratch);
        }
        total
    }

    /// Text embedding (§8 future work 3): mean-pooled hidden states.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn text_embedding(&self, tokens: &[u32]) -> Vec<f32> {
        assert!(!tokens.is_empty(), "need at least one token to embed");
        let mut state = self.new_state();
        let mut scratch = self.new_scratch();
        let mut pooled = vec![0.0f32; self.config().hidden_size];
        for &t in tokens {
            self.hidden_step_with(t, &mut state, &mut scratch);
            add_assign(&mut pooled, scratch.hidden());
        }
        let inv = 1.0 / tokens.len() as f32;
        for v in &mut pooled {
            *v *= inv;
        }
        pooled
    }

    /// One transformer block: reads the residual from `scratch.x`, writes
    /// the updated residual back into it.
    // analyze: hot
    fn block_with(&self, layer: usize, state: &mut DataflowState, scratch: &mut Scratch) {
        let c = *self.config();
        let w = &self.weights.layers[layer];
        let h = c.hidden_size;
        let hd = c.attention.head_dim;
        let qw = c.attention.q_width();
        let kvw = c.attention.kv_width();
        let q_per_col = qw / GRID;
        let kv_per_col = kvw / GRID;
        let kv_heads_per_col = c.attention.num_kv_heads / GRID;
        let q_heads_per_col = c.attention.num_query_heads / GRID;
        let group = c.attention.group_size();
        let row_slice = h / GRID;
        let DataflowState { kv, position, comm } = state;
        let position = *position;
        let Scratch {
            x,
            xn,
            xo,
            y,
            q,
            k,
            v,
            attn,
            partial,
            scores,
            flash_acc,
            numer,
            router_logits,
            chosen,
            expert_w,
            up,
            gate,
            down,
            delta,
            lora_hidden,
            rope,
            partials,
            ..
        } = scratch;

        rmsnorm_into(x, xn);

        // Field-programmable side-channel: the rank-r delta is computed
        // once (every chip would hold the identical value) and sliced per
        // column below.
        let has_adapter = match &self.q_adapters[layer] {
            Some(adapter) => {
                adapter.delta_into(xn, lora_hidden, delta);
                true
            }
            None => false,
        };

        // (II) Query projection: chip (r, c) computes a partial over its
        // row slice of X and its column's slice of Wq; column all-reduce.
        for col in 0..GRID {
            let q_col = &mut q[col * q_per_col..(col + 1) * q_per_col];
            col_project(xn, &w.wq, col, q_per_col, partials, q_col, comm);
            if has_adapter {
                for (qv, d) in q_col
                    .iter_mut()
                    .zip(delta[col * q_per_col..(col + 1) * q_per_col].iter())
                {
                    *qv += d;
                }
            }
            let k_col = &mut k[col * kv_per_col..(col + 1) * kv_per_col];
            col_project(xn, &w.wk, col, kv_per_col, partials, k_col, comm);
            let v_col = &mut v[col * kv_per_col..(col + 1) * kv_per_col];
            col_project(xn, &w.wv, col, kv_per_col, partials, v_col, comm);
        }
        // K and V land on chip (position mod 4) of each column ((III)).
        rope.prepare(position);
        for col in 0..GRID {
            comm.reduces += 2;
            comm.bytes += 2 * (kv_per_col as u64) * 4;
            // RoPE on the VEX before caching.
            for head in 0..q_heads_per_col {
                rope.apply(&mut q[col * q_per_col + head * hd..][..hd]);
            }
            for head in 0..kv_heads_per_col {
                rope.apply(&mut k[col * kv_per_col + head * hd..][..hd]);
            }
            let owner = position % GRID;
            kv[col][owner].append(
                layer,
                &k[col * kv_per_col..(col + 1) * kv_per_col],
                &v[col * kv_per_col..(col + 1) * kv_per_col],
            );
        }

        // (IV, V) Attention per column with flash-style partial combine.
        for col in 0..GRID {
            column_attention(
                &q[col * q_per_col..(col + 1) * q_per_col],
                layer,
                &kv[col],
                position + 1,
                q_heads_per_col,
                group,
                hd,
                scores,
                flash_acc,
                numer,
                &mut attn[col * q_per_col..(col + 1) * q_per_col],
                comm,
            );
        }

        // (VI) Output projection: Wo rows are the column's head block,
        // columns sliced by row index; row all-reduce + column all-gather.
        for r in 0..GRID {
            let slice = &mut xo[r * row_slice..(r + 1) * row_slice];
            slice.fill(0.0);
            let part = &mut partial[..row_slice];
            for col in 0..GRID {
                // The column's `attn` block indexes rows of Wo at the
                // block's head offset.
                matvec_block_into(
                    &attn[col * q_per_col..(col + 1) * q_per_col],
                    &w.wo,
                    col * q_per_col,
                    r * row_slice..(r + 1) * row_slice,
                    part,
                );
                add_assign(slice, part);
            }
            // Row all-reduce of the four column partials.
            comm.all_reduces += 1;
            comm.bytes += row_slice as u64 * 4;
        }
        // Column all-gather so every chip holds the full Xo.
        comm.all_gathers += 1;
        comm.bytes += h as u64 * 4;
        add_assign(xo, x); // first residual (local on every chip)

        // (VII) Router: weights replicated on all chips, no communication.
        rmsnorm_into(xo, xn);
        matvec_into(xn, &w.router, router_logits);
        topk_into(router_logits, c.moe.experts_per_token, chosen);
        expert_w.clear();
        expert_w.extend(chosen.iter().map(|&e| router_logits[e]));
        softmax_in_place(expert_w);

        // (VIII, IX) Experts: chip i owns experts [i*E/16, (i+1)*E/16);
        // partial outputs summed by an all-chip all-reduce. Only the
        // packed bytes of the ≤ experts_per_token chosen experts are ever
        // touched.
        let experts_per_chip = c.moe.num_experts / (GRID * GRID);
        y.fill(0.0);
        for chip in 0..GRID * GRID {
            let lo = chip * experts_per_chip;
            let hi = lo + experts_per_chip;
            for (&expert, &ew) in chosen.iter().zip(expert_w.iter()) {
                if expert < lo || expert >= hi {
                    continue;
                }
                matvec_into(xn, &w.up[expert], up);
                matvec_into(xn, &w.gate[expert], gate);
                swiglu_in_place(gate, up);
                matvec_into(gate, &w.down[expert], down);
                for (yo, &d) in y.iter_mut().zip(down.iter()) {
                    *yo += ew * d;
                }
            }
        }
        comm.all_chip_all_reduces += 1;
        comm.bytes += h as u64 * 4;
        add_assign(y, xo); // second residual
        x.copy_from_slice(y);
    }

    /// Prefill `prompt` then greedily decode `n` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_greedy(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        self.generate_with_report(prompt, n, &mut Sampler::Greedy).0
    }

    /// Generate and return the communication counters alongside the tokens.
    /// One scratch arena serves the whole sequence, so the loop never
    /// allocates.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_with_report(
        &self,
        prompt: &[u32],
        n: usize,
        sampler: &mut Sampler,
    ) -> (Vec<u32>, CommCounters) {
        assert!(!prompt.is_empty(), "prompt must contain at least one token");
        let mut state = self.new_state();
        let mut scratch = self.new_scratch();
        self.prefill_with(prompt, &mut state, &mut scratch, true);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = sampler.sample(scratch.logits());
            out.push(next);
            if out.len() == n {
                break;
            }
            self.step_with(next, &mut state, &mut scratch);
        }
        (out, state.comm)
    }

    /// Prefill `tokens` through the 16-chip machine in matmul panels of up
    /// to [`MAX_PREFILL_PANEL`] tokens. The KV shards, residuals, and
    /// (when `want_logits`) final logits are bit-identical to a
    /// [`step_with`](Self::step_with) loop; the communication schedule is
    /// identical except that only the last panel's final token is
    /// unembedded (one vocabulary all-gather per prefill instead of one
    /// per token).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an out-of-vocabulary id.
    pub fn prefill_with(
        &self,
        tokens: &[u32],
        state: &mut DataflowState,
        scratch: &mut Scratch,
        want_logits: bool,
    ) -> PrefillStats {
        self.prefill_chunked(tokens, state, scratch, MAX_PREFILL_PANEL, want_logits)
    }

    /// As [`prefill_with`](Self::prefill_with) with an explicit panel
    /// width `panel` (clamped to `1..=MAX_PREFILL_PANEL`).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an out-of-vocabulary id.
    pub fn prefill_chunked(
        &self,
        tokens: &[u32],
        state: &mut DataflowState,
        scratch: &mut Scratch,
        panel: usize,
        want_logits: bool,
    ) -> PrefillStats {
        assert!(!tokens.is_empty(), "prompt must contain at least one token");
        let panel = panel.clamp(1, MAX_PREFILL_PANEL);
        let mut stats = PrefillStats::default();
        let mut consumed = 0;
        while consumed < tokens.len() {
            let end = (consumed + panel).min(tokens.len());
            let chunk = &tokens[consumed..end];
            consumed = end;
            let logits_now = want_logits && consumed == tokens.len();
            self.prefill_panel_with(chunk, state, scratch, logits_now);
            stats.panels += 1;
            stats.max_panel = stats.max_panel.max(chunk.len());
        }
        stats
    }

    /// Run one panel of ≤ [`MAX_PREFILL_PANEL`] tokens through every layer
    /// of the machine.
    // analyze: hot
    fn prefill_panel_with(
        &self,
        tokens: &[u32],
        state: &mut DataflowState,
        scratch: &mut Scratch,
        want_logits: bool,
    ) {
        let c = *self.config();
        let h = c.hidden_size;
        let t = tokens.len();
        debug_assert!(t <= MAX_PREFILL_PANEL);
        // Embedding lookup is local on every chip (replicated dictionary).
        for (tt, &tok) in tokens.iter().enumerate() {
            assert!((tok as usize) < c.vocab_size, "token out of vocabulary");
            scratch.xp[tt * h..(tt + 1) * h]
                .copy_from_slice(&self.weights.embedding[tok as usize * h..(tok as usize + 1) * h]);
        }
        let base = state.position;
        for layer in 0..c.num_layers {
            self.panel_block_with(layer, base, t, &mut state.kv, &mut state.comm, scratch);
        }
        state.position += t;
        if want_logits {
            // Unembed only the panel's last token: each chip produces its
            // vocabulary shard, all-gathered once.
            let Scratch { xp, xn, logits, .. } = scratch;
            rmsnorm_into(&xp[(t - 1) * h..t * h], xn);
            let chips = GRID * GRID;
            let shard = c.vocab_size.div_ceil(chips);
            for chip in 0..chips {
                let lo = chip * shard;
                let hi = ((chip + 1) * shard).min(c.vocab_size);
                for (tok, logit) in logits[lo..hi]
                    .iter_mut()
                    .enumerate()
                    .map(|(i, l)| (lo + i, l))
                {
                    *logit = dot(xn, &self.weights.embedding[tok * h..(tok + 1) * h]);
                }
            }
            state.comm.all_gathers += 1;
            state.comm.bytes += c.vocab_size as u64 * 4;
        }
    }

    /// One transformer block over a `t`-token panel starting at context
    /// position `base`: reads the residual panel from `scratch.xp`, writes
    /// the updated panel back into it. Per token this performs exactly the
    /// chip-level operations of [`block_with`](Self::block_with) — each
    /// chip's partial product goes through the bit-identical matmul
    /// kernels, the column reductions add partials in the same chip
    /// order, and attention/RoPE/MoE math runs per token on the same
    /// values — so KV shards and residuals are bit-equal to a per-token
    /// loop, for every chunking. Communication counters advance by the
    /// per-token schedule times `t`.
    // analyze: hot
    #[allow(clippy::too_many_arguments)]
    fn panel_block_with(
        &self,
        layer: usize,
        base: usize,
        t: usize,
        kv: &mut [Vec<KvCache>],
        comm: &mut CommCounters,
        scratch: &mut Scratch,
    ) {
        let c = *self.config();
        let w = &self.weights.layers[layer];
        let h = c.hidden_size;
        let hd = c.attention.head_dim;
        let qw = c.attention.q_width();
        let kvw = c.attention.kv_width();
        let q_per_col = qw / GRID;
        let kv_per_col = kvw / GRID;
        let kv_heads_per_col = c.attention.num_kv_heads / GRID;
        let q_heads_per_col = c.attention.num_query_heads / GRID;
        let group = c.attention.group_size();
        let row_slice = h / GRID;
        let inter = c.moe.intermediate_size;
        let n_experts = c.moe.num_experts;
        let k_experts = c.moe.experts_per_token;
        let Scratch {
            y,
            scores,
            flash_acc,
            numer,
            chosen,
            expert_w,
            delta,
            lora_hidden,
            rope,
            xp,
            xnp,
            xop,
            qp,
            kp,
            vp,
            attnp,
            partp,
            routerp,
            chosenp,
            expertwp,
            gatherp,
            upp,
            gatep,
            stagep,
            gidx,
            ..
        } = scratch;

        for tt in 0..t {
            rmsnorm_into(&xp[tt * h..(tt + 1) * h], &mut xnp[tt * h..(tt + 1) * h]);
        }

        // (II) Projections: chip (r, col) runs one T-wide matmul over its
        // row slice of the panel; per token the column all-reduces the
        // four partials in chip order.
        for col in 0..GRID {
            col_project_panel(
                xnp, h, t, &w.wq, col, q_per_col, row_slice, partp, qp, qw, comm,
            );
        }
        if let Some(adapter) = &self.q_adapters[layer] {
            // Field-programmable side-channel: the rank-r delta is computed
            // once per token (every chip would hold the identical value)
            // and each column adds its slice — no extra communication.
            for tt in 0..t {
                adapter.delta_into(&xnp[tt * h..(tt + 1) * h], lora_hidden, delta);
                add_assign(&mut qp[tt * qw..(tt + 1) * qw], delta);
            }
        }
        for col in 0..GRID {
            col_project_panel(
                xnp, h, t, &w.wk, col, kv_per_col, row_slice, partp, kp, kvw, comm,
            );
            col_project_panel(
                xnp, h, t, &w.wv, col, kv_per_col, row_slice, partp, vp, kvw, comm,
            );
        }

        // (III) RoPE + KV landing: token `base + tt` lands on chip
        // ((base + tt) mod 4) of each column, exactly as in decode.
        for tt in 0..t {
            rope.prepare(base + tt);
            for col in 0..GRID {
                comm.reduces += 2;
                comm.bytes += 2 * (kv_per_col as u64) * 4;
                for head in 0..q_heads_per_col {
                    rope.apply(&mut qp[tt * qw + col * q_per_col + head * hd..][..hd]);
                }
                for head in 0..kv_heads_per_col {
                    rope.apply(&mut kp[tt * kvw + col * kv_per_col + head * hd..][..hd]);
                }
                let owner = (base + tt) % GRID;
                kv[col][owner].append(
                    layer,
                    &kp[tt * kvw + col * kv_per_col..][..kv_per_col],
                    &vp[tt * kvw + col * kv_per_col..][..kv_per_col],
                );
            }
        }

        // (IV, V) Attention: the whole panel's KV is cached, so each
        // token masks itself to its causal prefix via `ctx`.
        for tt in 0..t {
            for col in 0..GRID {
                column_attention(
                    &qp[tt * qw + col * q_per_col..][..q_per_col],
                    layer,
                    &kv[col],
                    base + tt + 1,
                    q_heads_per_col,
                    group,
                    hd,
                    scores,
                    flash_acc,
                    numer,
                    &mut attnp[tt * qw + col * q_per_col..][..q_per_col],
                    comm,
                );
            }
        }

        // (VI) Output projection: per token, row all-reduces in chip
        // order then a column all-gather — the per-token schedule × t.
        for r in 0..GRID {
            for tt in 0..t {
                xop[tt * h + r * row_slice..][..row_slice].fill(0.0);
            }
            let part = &mut partp[..t * row_slice];
            for col in 0..GRID {
                matmul_block_into(
                    &attnp[col * q_per_col..],
                    qw,
                    t,
                    &w.wo,
                    col * q_per_col,
                    q_per_col,
                    r * row_slice..(r + 1) * row_slice,
                    part,
                    row_slice,
                );
                for tt in 0..t {
                    add_assign(
                        &mut xop[tt * h + r * row_slice..][..row_slice],
                        &part[tt * row_slice..(tt + 1) * row_slice],
                    );
                }
            }
            comm.all_reduces += t as u64;
            comm.bytes += (t * row_slice) as u64 * 4;
        }
        comm.all_gathers += t as u64;
        comm.bytes += (t * h) as u64 * 4;
        for tt in 0..t {
            // first residual (local on every chip)
            add_assign(&mut xop[tt * h..(tt + 1) * h], &xp[tt * h..(tt + 1) * h]);
        }

        // (VII) Router: weights replicated on all chips, no communication.
        for tt in 0..t {
            rmsnorm_into(&xop[tt * h..(tt + 1) * h], &mut xnp[tt * h..(tt + 1) * h]);
        }
        matmul_into(xnp, h, t, &w.router, routerp, n_experts);
        for tt in 0..t {
            topk_into(
                &routerp[tt * n_experts..(tt + 1) * n_experts],
                k_experts,
                chosen,
            );
            expert_w.clear();
            expert_w.extend(
                chosen
                    .iter()
                    .map(|&e| routerp[tt * n_experts..(tt + 1) * n_experts][e]),
            );
            softmax_in_place(expert_w);
            chosenp[tt * k_experts..(tt + 1) * k_experts].copy_from_slice(chosen);
            expertwp[tt * k_experts..(tt + 1) * k_experts].copy_from_slice(expert_w);
        }

        // (VIII) Experts, grouped: every token routed to expert `e` is
        // gathered into one panel so the owning chip runs three matmuls
        // per touched expert instead of three matvecs per (token, slot).
        for e in 0..n_experts {
            gidx.clear();
            for tt in 0..t {
                for s in 0..k_experts {
                    if chosenp[tt * k_experts + s] == e {
                        gidx.push(tt * k_experts + s);
                    }
                }
            }
            if gidx.is_empty() {
                continue;
            }
            let g = gidx.len();
            for (gi, &slot) in gidx.iter().enumerate() {
                let tt = slot / k_experts;
                gatherp[gi * h..(gi + 1) * h].copy_from_slice(&xnp[tt * h..(tt + 1) * h]);
            }
            matmul_into(&gatherp[..g * h], h, g, &w.up[e], upp, inter);
            matmul_into(&gatherp[..g * h], h, g, &w.gate[e], gatep, inter);
            for gi in 0..g {
                let (gate_row, up_row) = (
                    &mut gatep[gi * inter..(gi + 1) * inter],
                    &upp[gi * inter..(gi + 1) * inter],
                );
                swiglu_in_place(gate_row, up_row);
            }
            matmul_into(&gatep[..g * inter], inter, g, &w.down[e], gatherp, h);
            for (gi, &slot) in gidx.iter().enumerate() {
                stagep[slot * h..(slot + 1) * h].copy_from_slice(&gatherp[gi * h..(gi + 1) * h]);
            }
        }
        // (IX) Replay each token's mixture in chip order (chip i owns
        // experts [i*E/16, (i+1)*E/16)), slot order within a chip —
        // the exact accumulation order of the per-token all-chip
        // all-reduce, bit for bit.
        let experts_per_chip = n_experts / (GRID * GRID);
        for tt in 0..t {
            y.fill(0.0);
            for chip in 0..GRID * GRID {
                let lo = chip * experts_per_chip;
                let hi = lo + experts_per_chip;
                for s in 0..k_experts {
                    let slot = tt * k_experts + s;
                    let e = chosenp[slot];
                    if e < lo || e >= hi {
                        continue;
                    }
                    let ew = expertwp[slot];
                    for (yo, &d) in y.iter_mut().zip(stagep[slot * h..(slot + 1) * h].iter()) {
                        *yo += ew * d;
                    }
                }
            }
            add_assign(y, &xop[tt * h..(tt + 1) * h]); // second residual
            xp[tt * h..(tt + 1) * h].copy_from_slice(y);
        }
        comm.all_chip_all_reduces += t as u64;
        comm.bytes += (t * h) as u64 * 4;
    }
}

/// Column projection with partial sums: each of the 4 chips of `col`
/// multiplies its row slice of `x` against its block of the packed matrix;
/// the column all-reduce sums the partials. The four chips are the four
/// fixed splits of [`matvec_rows_split_into`], so on large models the
/// `parallel` build runs them on real worker threads — and the
/// deterministic zero-then-add reduction keeps the result bit-identical
/// to the serial chip loop either way.
// analyze: hot
fn col_project(
    x: &[f32],
    m: &PackedFp4Matrix,
    col: usize,
    per_col: usize,
    partials: &mut [f32],
    acc: &mut [f32],
    comm: &mut CommCounters,
) {
    matvec_rows_split_into(x, m, col * per_col..(col + 1) * per_col, acc, partials);
    comm.all_reduces += 1;
    comm.bytes += per_col as u64 * 4;
}

/// Panel variant of [`col_project`]: chip `(r, col)` runs one T-wide
/// matmul over its row slice of the activation panel, and each token's
/// four partial rows are summed in chip order — the same
/// zero-then-add-in-order reduction as the per-token column all-reduce,
/// so every token's output is bit-equal to [`col_project`]'s.
// analyze: hot
#[allow(clippy::too_many_arguments)]
fn col_project_panel(
    xs: &[f32],
    x_stride: usize,
    t: usize,
    m: &PackedFp4Matrix,
    col: usize,
    per_col: usize,
    row_slice: usize,
    partp: &mut [f32],
    outs: &mut [f32],
    out_stride: usize,
    comm: &mut CommCounters,
) {
    for tt in 0..t {
        outs[tt * out_stride + col * per_col..tt * out_stride + (col + 1) * per_col].fill(0.0);
    }
    let part = &mut partp[..t * per_col];
    for r in 0..GRID {
        matmul_block_into(
            &xs[r * row_slice..],
            x_stride,
            t,
            m,
            r * row_slice,
            row_slice,
            col * per_col..(col + 1) * per_col,
            part,
            per_col,
        );
        for tt in 0..t {
            add_assign(
                &mut outs[tt * out_stride + col * per_col..][..per_col],
                &part[tt * per_col..(tt + 1) * per_col],
            );
        }
    }
    comm.all_reduces += t as u64;
    comm.bytes += (t * per_col) as u64 * 4;
}

/// Flash-style column attention: each chip computes running-max statistics
/// over its quarter of the context into its `flash_acc` block; the column
/// all-reduce combines them exactly, in chip order.
///
/// `ctx` is the number of context positions the query may see (causal:
/// `position + 1`). Chip `chip` holds positions `p % 4 == chip`, so it
/// contributes `ceil((ctx - chip) / 4)` of them — during panel prefill
/// the whole panel's KV is already cached, and `ctx` is what masks each
/// token down to its causal prefix.
// analyze: hot
#[allow(clippy::too_many_arguments)]
fn column_attention(
    q_col: &[f32],
    layer: usize,
    col_kv: &[KvCache],
    ctx: usize,
    q_heads_per_col: usize,
    group: usize,
    hd: usize,
    scores: &mut Vec<f32>,
    flash_acc: &mut [f32],
    numer: &mut [f32],
    out: &mut [f32],
    comm: &mut CommCounters,
) {
    let scale = 1.0 / (hd as f32).sqrt();
    for head in 0..q_heads_per_col {
        let kv_head = head / group; // within the column's head block
        let qv = &q_col[head * hd..(head + 1) * hd];
        // Per-chip flash partials (running max, exp-sum, value accumulator).
        let mut ms = [f32::NEG_INFINITY; GRID];
        let mut sums = [0.0f32; GRID];
        let mut present = [false; GRID];
        for (chip, cache) in col_kv.iter().enumerate() {
            let positions = if ctx > chip {
                (ctx - chip).div_ceil(GRID)
            } else {
                0
            };
            debug_assert!(positions <= cache.len());
            if positions == 0 {
                continue;
            }
            present[chip] = true;
            let mut m = f32::NEG_INFINITY;
            scores.clear();
            for p in 0..positions {
                let s = dot(qv, cache.key(layer, p, kv_head)) * scale;
                m = m.max(s);
                scores.push(s);
            }
            let mut sum = 0.0f32;
            let acc = &mut flash_acc[chip * hd..(chip + 1) * hd];
            acc.fill(0.0);
            for (p, &s) in scores.iter().enumerate() {
                let e = (s - m).exp();
                sum += e;
                let v = cache.value(layer, p, kv_head);
                for (a, &vv) in acc.iter_mut().zip(v.iter()) {
                    *a += e * vv;
                }
            }
            ms[chip] = m;
            sums[chip] = sum;
        }
        // Exact combine across the column group, in chip order (absent
        // chips hold −∞ max, so they do not move the global max).
        let gm = ms.iter().fold(f32::NEG_INFINITY, |a, &m| a.max(m));
        let mut denom = 0.0f32;
        numer.fill(0.0);
        for chip in 0..GRID {
            if !present[chip] {
                continue;
            }
            let w = (ms[chip] - gm).exp();
            denom += sums[chip] * w;
            for (n, &a) in numer
                .iter_mut()
                .zip(flash_acc[chip * hd..(chip + 1) * hd].iter())
            {
                *n += a * w;
            }
        }
        let o = &mut out[head * hd..(head + 1) * hd];
        for (oo, &n) in o.iter_mut().zip(numer.iter()) {
            *oo = n / denom;
        }
    }
    comm.all_reduces += 1;
    comm.bytes += (q_heads_per_col * hd) as u64 * 4;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Transformer;
    use hnlpu_model::{zoo, WeightGenerator};

    fn weights() -> ModelWeights {
        let card = zoo::dataflow_test_model();
        ModelWeights::materialize(&card.config, &WeightGenerator::new(2026))
    }

    #[test]
    fn logits_match_reference_within_tolerance() {
        let w = weights();
        let reference = Transformer::new(w.clone());
        let hnlpu = DataflowExecutor::new(w);
        let mut rc = reference.new_cache();
        let mut ds = hnlpu.new_state();
        for &t in &[1u32, 9, 17, 33] {
            let lr = reference.step(t, &mut rc);
            let ld = hnlpu.step(t, &mut ds);
            assert_eq!(lr.len(), ld.len());
            for (i, (&a, &b)) in lr.iter().zip(ld.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-4 * (1.0 + a.abs()),
                    "token {t} logit {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn greedy_tokens_match_reference() {
        let w = weights();
        let reference = Transformer::new(w.clone());
        let hnlpu = DataflowExecutor::new(w);
        for prompt in [[1u32, 5, 9].as_slice(), &[100, 2], &[64]] {
            assert_eq!(
                reference.generate_greedy(prompt, 12),
                hnlpu.generate_greedy(prompt, 12),
                "prompt {prompt:?}"
            );
        }
    }

    #[test]
    fn fresh_and_reused_scratch_agree_bitwise() {
        let hnlpu = DataflowExecutor::new(weights());
        let mut dirty = hnlpu.new_scratch();
        let mut warm = hnlpu.new_state();
        for t in [40u32, 3, 77] {
            hnlpu.step_with(t, &mut warm, &mut dirty);
        }
        let mut s1 = hnlpu.new_state();
        let mut s2 = hnlpu.new_state();
        for t in [1u32, 9, 17] {
            let fresh = hnlpu.step(t, &mut s1);
            hnlpu.step_with(t, &mut s2, &mut dirty);
            assert_eq!(fresh.as_slice(), dirty.logits());
        }
    }

    #[test]
    fn comm_counters_match_dataflow_schedule() {
        let w = weights();
        let layers = w.config.num_layers as u64;
        let hnlpu = DataflowExecutor::new(w);
        let (_, comm) = hnlpu.generate_with_report(&[1], 1, &mut Sampler::Greedy);
        // One step: per layer per column group: 3 projection ARs + 1
        // attention AR + (per row) 4 Wo row-ARs; 2 KV reduces per column;
        // 1 Xo all-gather; 1 all-chip Y all-reduce; plus the final
        // unembedding all-gather.
        let per_layer_ar = 4 * 3 + 4 + 4; // 4 cols x (q,k,v) + 4 attn + 4 wo rows
        assert_eq!(comm.all_reduces, layers * per_layer_ar);
        assert_eq!(comm.reduces, layers * 8);
        assert_eq!(comm.all_gathers, layers + 1);
        assert_eq!(comm.all_chip_all_reduces, layers);
        assert!(comm.bytes > 0);
    }

    #[test]
    fn kv_shards_by_position_mod_4() {
        let w = weights();
        let hnlpu = DataflowExecutor::new(w);
        let mut state = hnlpu.new_state();
        for t in 0..6 {
            hnlpu.step(t, &mut state);
        }
        // Positions 0..6: chips 0,1 in each column hold 2; chips 2,3 hold 1.
        for col in 0..GRID {
            assert_eq!(state.kv[col][0].len(), 2);
            assert_eq!(state.kv[col][1].len(), 2);
            assert_eq!(state.kv[col][2].len(), 1);
            assert_eq!(state.kv[col][3].len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "KV heads must split")]
    fn unmappable_model_rejected() {
        let card = zoo::test_model(); // 2 KV heads: not divisible by 4
        let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(1));
        DataflowExecutor::new(w);
    }

    #[test]
    fn sequence_scoring_matches_reference() {
        let w = weights();
        let reference = Transformer::new(w.clone());
        let hnlpu = DataflowExecutor::new(w);
        let seq = [1u32, 5, 9, 2, 40];
        let a = reference.score_sequence(&seq);
        let b = hnlpu.score_sequence(&seq);
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn text_embedding_matches_reference() {
        let w = weights();
        let reference = Transformer::new(w.clone());
        let hnlpu = DataflowExecutor::new(w);
        let a = reference.text_embedding(&[3, 1, 4, 1, 5]);
        let b = hnlpu.text_embedding(&[3, 1, 4, 1, 5]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn lora_adapted_machines_agree() {
        use crate::lora::LoraAdapter;
        let w = weights();
        let c = w.config;
        let adapter = LoraAdapter::seeded(c.hidden_size, c.attention.q_width(), 4, 6.0, 5);
        let mut reference = Transformer::new(w.clone());
        let mut hnlpu = DataflowExecutor::new(w);
        for layer in 0..c.num_layers {
            reference.set_q_adapter(layer, adapter.clone());
            hnlpu.set_q_adapter(layer, adapter.clone());
        }
        let a = reference.generate_greedy(&[7, 11], 10);
        let b = hnlpu.generate_greedy(&[7, 11], 10);
        assert_eq!(a, b, "LoRA-adapted machines must still agree");
    }

    #[test]
    fn panel_prefill_is_bitwise_per_token_loop() {
        let hnlpu = DataflowExecutor::new(weights());
        let prompt: Vec<u32> = (0..19u32).map(|i| (i * 11 + 3) % 100).collect();
        let mut ls = hnlpu.new_state();
        let mut lscratch = hnlpu.new_scratch();
        for &t in &prompt {
            hnlpu.step_with(t, &mut ls, &mut lscratch);
        }
        let mut ps = hnlpu.new_state();
        let mut pscratch = hnlpu.new_scratch();
        let stats = hnlpu.prefill_with(&prompt, &mut ps, &mut pscratch, true);
        assert_eq!(stats.panels, 1);
        assert_eq!(stats.max_panel, prompt.len());
        assert_eq!(lscratch.logits(), pscratch.logits());
        assert_eq!(ps.position(), prompt.len());
        // Every KV shard is bit-identical.
        let layers = hnlpu.config().num_layers;
        let heads_per_col = hnlpu.config().attention.num_kv_heads / GRID;
        for col in 0..GRID {
            for chip in 0..GRID {
                let (a, b) = (ls.kv_shard(col, chip), ps.kv_shard(col, chip));
                assert_eq!(a.len(), b.len(), "shard ({col},{chip}) length");
                for layer in 0..layers {
                    for p in 0..a.len() {
                        for head in 0..heads_per_col {
                            assert_eq!(a.key(layer, p, head), b.key(layer, p, head));
                            assert_eq!(a.value(layer, p, head), b.value(layer, p, head));
                        }
                    }
                }
            }
        }
        // The comm schedule is the per-token one, except the unembedding
        // all-gather fires once per prefill instead of once per token.
        let p = prompt.len() as u64;
        assert_eq!(ls.comm.all_reduces, ps.comm.all_reduces);
        assert_eq!(ls.comm.reduces, ps.comm.reduces);
        assert_eq!(ls.comm.all_chip_all_reduces, ps.comm.all_chip_all_reduces);
        let vocab = hnlpu.config().vocab_size as u64;
        assert_eq!(ls.comm.all_gathers, ps.comm.all_gathers + p - 1);
        assert_eq!(ls.comm.bytes, ps.comm.bytes + (p - 1) * vocab * 4);
    }

    #[test]
    fn prefill_is_chunking_invariant() {
        let hnlpu = DataflowExecutor::new(weights());
        let prompt: Vec<u32> = (0..27u32).map(|i| (i * 5 + 2) % 100).collect();
        let mut want: Option<Vec<f32>> = None;
        for panel in [1usize, 4, 64] {
            let mut state = hnlpu.new_state();
            let mut scratch = hnlpu.new_scratch();
            let stats = hnlpu.prefill_chunked(&prompt, &mut state, &mut scratch, panel, true);
            assert_eq!(stats.panels as usize, prompt.len().div_ceil(panel));
            match &want {
                None => want = Some(scratch.logits().to_vec()),
                Some(w) => assert_eq!(w.as_slice(), scratch.logits(), "panel {panel}"),
            }
        }
    }

    #[test]
    fn lora_adapted_panel_prefill_matches_step_loop() {
        use crate::lora::LoraAdapter;
        let w = weights();
        let c = w.config;
        let mut hnlpu = DataflowExecutor::new(w);
        hnlpu.set_q_adapter(
            1,
            LoraAdapter::seeded(c.hidden_size, c.attention.q_width(), 4, 6.0, 5),
        );
        let prompt = [7u32, 11, 13, 17, 19, 23];
        let mut ls = hnlpu.new_state();
        let mut lscratch = hnlpu.new_scratch();
        for &t in &prompt {
            hnlpu.step_with(t, &mut ls, &mut lscratch);
        }
        let mut ps = hnlpu.new_state();
        let mut pscratch = hnlpu.new_scratch();
        hnlpu.prefill_with(&prompt, &mut ps, &mut pscratch, true);
        assert_eq!(lscratch.logits(), pscratch.logits());
    }

    #[test]
    fn healthy_grid_layout_is_identity() {
        let health = GridHealth::full();
        assert_eq!(health.survivors(), GRID * GRID);
        assert!(!health.is_degraded());
        let layout = DegradedLayout::for_health(&health).expect("survivors exist");
        assert!(layout.is_identity());
        assert_eq!(layout.relocated(), 0);
        assert_eq!(layout.effective_slots(216), 216);
        for col in 0..GRID {
            for shard in 0..GRID {
                assert_eq!(layout.host_of(col, shard), shard * GRID + col);
            }
        }
    }

    #[test]
    fn every_survivor_set_hosts_every_shard_on_a_live_chip() {
        // Exhaustive over all 2^16 - 1 non-empty survivor sets: every
        // logical shard lands on a live chip, dead-chip shards relocate,
        // and capacity scales with survivors but never reaches zero.
        for alive_mask in 1u32..(1 << (GRID * GRID)) {
            let mut health = GridHealth::full();
            for chip in 0..GRID * GRID {
                if alive_mask & (1 << chip) == 0 {
                    health.fail(chip);
                }
            }
            let layout = DegradedLayout::for_health(&health).expect("non-empty survivor set");
            for col in 0..GRID {
                for shard in 0..GRID {
                    assert!(
                        health.is_alive(layout.host_of(col, shard)),
                        "mask {alive_mask:#06x}: shard ({col},{shard}) hosted on a dead chip"
                    );
                }
            }
            assert_eq!(layout.relocated(), GRID * GRID - health.survivors());
            assert!(layout.effective_slots(216) >= 1);
            assert_eq!(
                layout.effective_slots(216),
                (216 * health.survivors() / (GRID * GRID)).max(1)
            );
        }
    }

    #[test]
    fn single_failure_relocates_within_the_column() {
        // Chip (r=1, c=2) dies: its shard moves to the next live row of
        // column 2, keeping the relocated KV inside the column group.
        let mut health = GridHealth::full();
        assert!(health.fail(GRID + 2));
        assert!(!health.fail(GRID + 2), "double-kill is a no-op");
        let layout = DegradedLayout::for_health(&health).expect("15 survivors");
        assert_eq!(layout.host_of(2, 1), 2 * GRID + 2);
        assert_eq!(layout.relocated(), 1);
        assert!(!layout.is_identity());
    }

    #[test]
    fn dead_grid_is_a_typed_error() {
        let mut health = GridHealth::full();
        for chip in 0..GRID * GRID {
            health.fail(chip);
        }
        assert_eq!(health.survivors(), 0);
        assert_eq!(
            DegradedLayout::for_health(&health),
            Err(GridError::NoSurvivors)
        );
    }

    /// The bit-exactness argument for degraded grids, pinned: the four
    /// row-partition partials of `matvec_rows_split_into` are reduced in
    /// fixed logical block order, independent of which host computes
    /// them, so relocating a dead chip's partition changes hosting and
    /// accounting only — every projection stays bit-identical to the
    /// healthy grid's.
    #[test]
    fn degraded_hosting_is_bit_exact() {
        use crate::kernels::matvec_block_into;
        use crate::tensor::add_assign;
        let hnlpu = DataflowExecutor::new(weights());
        let w = &hnlpu.weights.layers[0].wq;
        let rows = w.rows();
        let x: Vec<f32> = (0..rows)
            .map(|i| ((i * 7 + 3) % 13) as f32 * 0.25 - 1.5)
            .collect();
        let per_col = w.cols() / GRID;
        let mut healthy = vec![0.0f32; per_col];
        let mut partials = vec![0.0f32; ROW_SPLITS * per_col];
        matvec_rows_split_into(&x, w, 0..per_col, &mut healthy, &mut partials);
        // "Degraded execution": compute the same four logical partials in
        // an arbitrary hosting order (survivors pick up dead chips'
        // partitions), then reduce in logical order — bitwise equal.
        for hosting_order in [[3usize, 1, 0, 2], [2, 3, 1, 0], [1, 1, 1, 1]] {
            let mut parts = vec![0.0f32; ROW_SPLITS * per_col];
            for &s in &hosting_order {
                // Host assignment does not appear anywhere in the math:
                // each logical split s writes its own partial block.
                matvec_block_into(
                    &x[s * rows / ROW_SPLITS..(s + 1) * rows / ROW_SPLITS],
                    w,
                    s * rows / ROW_SPLITS,
                    0..per_col,
                    &mut parts[s * per_col..(s + 1) * per_col],
                );
            }
            // Splits absent from a hosting order (e.g. all-host-1) are
            // recomputed by the fallback host.
            for s in 0..ROW_SPLITS {
                if !hosting_order.contains(&s) {
                    matvec_block_into(
                        &x[s * rows / ROW_SPLITS..(s + 1) * rows / ROW_SPLITS],
                        w,
                        s * rows / ROW_SPLITS,
                        0..per_col,
                        &mut parts[s * per_col..(s + 1) * per_col],
                    );
                }
            }
            let mut degraded = vec![0.0f32; per_col];
            for s in 0..ROW_SPLITS {
                add_assign(&mut degraded, &parts[s * per_col..(s + 1) * per_col]);
            }
            assert_eq!(healthy, degraded, "order {hosting_order:?}");
        }
    }

    #[test]
    fn reset_context_forgets_positions_and_counters() {
        let hnlpu = DataflowExecutor::new(weights());
        let mut state = hnlpu.new_state();
        let mut scratch = hnlpu.new_scratch();
        for t in [5u32, 9, 2] {
            hnlpu.step_with(t, &mut state, &mut scratch);
        }
        assert!(state.kv_bytes_fp16() > 0);
        state.reset_context();
        assert_eq!(state.position(), 0);
        assert_eq!(state.kv_bytes_fp16(), 0);
        assert_eq!(state.comm, CommCounters::default());
        // A reset state replays a fresh one bit-for-bit.
        let mut fresh = hnlpu.new_state();
        let mut fresh_scratch = hnlpu.new_scratch();
        for t in [8u32, 1] {
            hnlpu.step_with(t, &mut state, &mut scratch);
            hnlpu.step_with(t, &mut fresh, &mut fresh_scratch);
        }
        assert_eq!(scratch.logits(), fresh_scratch.logits());
    }

    #[test]
    fn multinomial_paths_agree_given_same_seed() {
        let w = weights();
        let reference = Transformer::new(w.clone());
        let hnlpu = DataflowExecutor::new(w);
        let mut s1 = Sampler::multinomial(0.7, 99);
        let mut s2 = Sampler::multinomial(0.7, 99);
        let a = reference.generate(&[3, 1, 4], 10, &mut s1);
        let (b, _) = hnlpu.generate_with_report(&[3, 1, 4], 10, &mut s2);
        assert_eq!(a, b);
    }

    /// Prefill a donor state, freeze its prompt blocks into a pool, and
    /// attach them to a fresh state: the attached sequence must produce
    /// bit-identical logits and decode tokens while skipping the
    /// matched prefill entirely — for both a block-aligned match and a
    /// mid-block (copy-on-write boundary) match.
    #[test]
    fn attached_prefix_decodes_bit_identically() {
        let w = weights();
        let hnlpu = DataflowExecutor::new(w);
        let vocab = hnlpu.config().vocab_size as u32;
        let prompt: Vec<u32> = (0..37u32).map(|i| (i * 13 + 5) % vocab).collect();

        // Donor: full prefill, then freeze the two full prompt blocks.
        let mut donor = hnlpu.new_state();
        let mut scratch = hnlpu.new_scratch();
        for &t in &prompt {
            hnlpu.step_with(t, &mut donor, &mut scratch);
        }
        let mut pool = PagePool::default();
        let blocks: Vec<Box<[u32]>> = (0..2)
            .map(|b| {
                donor
                    .share_block(b)
                    .into_iter()
                    .map(|r| pool.register(r))
                    .collect()
            })
            .collect();

        for matched in [32usize, 30] {
            // Baseline: a fresh state prefilled token by token.
            let mut base = hnlpu.new_state();
            let mut base_scratch = hnlpu.new_scratch();
            for &t in &prompt {
                hnlpu.step_with(t, &mut base, &mut base_scratch);
            }
            let covering = matched.div_ceil(BLOCK_POSITIONS);
            let mut state = hnlpu.new_state();
            let mut s = hnlpu.new_scratch();
            state.attach_prefix(matched, &blocks[..covering], &pool);
            assert_eq!(state.position(), matched);
            assert_eq!(state.kv_bytes_fp16(), {
                let mut probe = hnlpu.new_state();
                for &t in &prompt[..matched] {
                    hnlpu.step_with(t, &mut probe, &mut scratch);
                }
                probe.kv_bytes_fp16()
            });
            // The unmatched suffix is the only prefill work left.
            for &t in &prompt[matched..] {
                hnlpu.step_with(t, &mut state, &mut s);
            }
            assert_eq!(
                s.logits(),
                base_scratch.logits(),
                "matched {matched}: prompt logits"
            );
            // Greedy decode stays bit-identical for a while.
            let mut a = state.clone();
            let mut b = base.clone();
            let mut tok_a = Sampler::Greedy.sample(s.logits());
            let mut tok_b = tok_a;
            for step in 0..8 {
                hnlpu.step_with(tok_a, &mut a, &mut s);
                hnlpu.step_with(tok_b, &mut b, &mut base_scratch);
                assert_eq!(s.logits(), base_scratch.logits(), "step {step}");
                tok_a = Sampler::Greedy.sample(s.logits());
                tok_b = Sampler::Greedy.sample(base_scratch.logits());
            }
        }

        // Shared pages mean most of the attached KV is not privately
        // owned: a fully attached 32-position prefix charges less
        // physical memory than the same fill prefilled densely.
        let mut dense = hnlpu.new_state();
        for &t in &prompt[..32] {
            hnlpu.step_with(t, &mut dense, &mut scratch);
        }
        let mut shared_state = hnlpu.new_state();
        shared_state.attach_prefix(32, &blocks, &pool);
        assert!(shared_state.kv_owned_bytes_fp16() < dense.kv_owned_bytes_fp16());
    }
}
