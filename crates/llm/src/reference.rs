//! The single-device reference transformer (pre-norm GQA + MoE + SwiGLU),
//! the functional ground truth the HNLPU dataflow is verified against.
//!
//! The hot path is allocation-free: all projections run the
//! region-accumulation kernels ([`crate::kernels`]) directly on packed FP4
//! weights, and every intermediate lives in a caller-provided [`Scratch`]
//! arena ([`step_with`](Transformer::step_with)). The allocating entry
//! points ([`step`](Transformer::step) etc.) remain as thin wrappers.

use crate::kernels::{matmul_into, matvec_into, matvec_rows_parallel_into};
use crate::kv_cache::KvCache;
use crate::lora::LoraAdapter;
use crate::ops::{rmsnorm_into, softmax, softmax_in_place, swiglu_in_place, topk_into};
use crate::sampler::{argmax, Sampler};
use crate::scratch::{Scratch, MAX_PREFILL_PANEL};
use crate::tensor::{add_assign, dot};
use hnlpu_model::{ModelWeights, TransformerConfig};

/// How a prompt was consumed by a panel-prefill call: how many matmul
/// panels ran and the widest one. Aggregated into
/// [`crate::batch::BatchRunReport`] so degenerate T=1 panel streams are
/// observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefillStats {
    /// Matmul panels executed.
    pub panels: u64,
    /// Tokens in the widest panel.
    pub max_panel: usize,
}

impl PrefillStats {
    /// Fold another chunk run into this one.
    pub fn merge(&mut self, other: PrefillStats) {
        self.panels += other.panels;
        self.max_panel = self.max_panel.max(other.max_panel);
    }
}

/// The reference decoder.
#[derive(Debug, Clone)]
pub struct Transformer {
    weights: ModelWeights,
    /// Optional LoRA side-channel adapters on the query projection,
    /// one slot per layer (§8 future work 4).
    q_adapters: Vec<Option<LoraAdapter>>,
}

impl Transformer {
    /// Wrap materialized weights.
    pub fn new(weights: ModelWeights) -> Self {
        let layers = weights.config.num_layers;
        Transformer {
            weights,
            q_adapters: vec![None; layers],
        }
    }

    /// Install a LoRA adapter on `layer`'s query projection.
    ///
    /// # Panics
    ///
    /// Panics if the adapter shape does not match `Wq` or the layer index
    /// is out of range.
    pub fn set_q_adapter(&mut self, layer: usize, adapter: LoraAdapter) {
        let c = self.config();
        assert_eq!(adapter.rows, c.hidden_size, "adapter rows");
        assert_eq!(adapter.cols, c.attention.q_width(), "adapter cols");
        self.q_adapters[layer] = Some(adapter);
    }

    /// The architecture.
    pub fn config(&self) -> &TransformerConfig {
        &self.weights.config
    }

    /// An empty KV cache for this model.
    pub fn new_cache(&self) -> KvCache {
        let c = self.config();
        KvCache::new(c.num_layers, c.attention.num_kv_heads, c.attention.head_dim)
    }

    /// A scratch arena sized for this model (reusable across steps and
    /// sequences).
    pub fn new_scratch(&self) -> Scratch {
        Scratch::new(self.config())
    }

    /// Embedding lookup for `token`.
    ///
    /// # Panics
    ///
    /// Panics if `token` exceeds the vocabulary.
    pub fn embed(&self, token: u32) -> Vec<f32> {
        let c = self.config();
        assert!((token as usize) < c.vocab_size, "token out of vocabulary");
        let h = c.hidden_size;
        self.weights.embedding[token as usize * h..(token as usize + 1) * h].to_vec()
    }

    /// Run one decode step: consume `token` at the cache's current position,
    /// append its KV, and return the next-token logits.
    pub fn step(&self, token: u32, cache: &mut KvCache) -> Vec<f32> {
        let mut scratch = self.new_scratch();
        self.step_with(token, cache, &mut scratch);
        scratch.logits
    }

    /// Allocation-free [`step`](Self::step): the logits land in
    /// `scratch.logits()`.
    pub fn step_with(&self, token: u32, cache: &mut KvCache, scratch: &mut Scratch) {
        self.hidden_step_with(token, cache, scratch);
        let c = self.config();
        let h = c.hidden_size;
        // Unembedding (weight-tied): logits over the vocabulary.
        let Scratch { xn, logits, .. } = scratch;
        for (t, l) in logits.iter_mut().enumerate() {
            *l = dot(xn, &self.weights.embedding[t * h..(t + 1) * h]);
        }
    }

    /// As [`step`](Self::step), but return the final normalized hidden
    /// state instead of logits (the representation text-embedding uses).
    pub fn hidden_step(&self, token: u32, cache: &mut KvCache) -> Vec<f32> {
        let mut scratch = self.new_scratch();
        self.hidden_step_with(token, cache, &mut scratch);
        scratch.xn
    }

    /// Allocation-free [`hidden_step`](Self::hidden_step): the normalized
    /// hidden state lands in `scratch.hidden()`.
    pub fn hidden_step_with(&self, token: u32, cache: &mut KvCache, scratch: &mut Scratch) {
        let c = *self.config();
        assert!((token as usize) < c.vocab_size, "token out of vocabulary");
        let h = c.hidden_size;
        let position = cache.len();
        scratch
            .x
            .copy_from_slice(&self.weights.embedding[token as usize * h..(token as usize + 1) * h]);
        for layer in 0..c.num_layers {
            self.block_with(layer, position, cache, scratch);
        }
        let Scratch { x, xn, .. } = scratch;
        rmsnorm_into(x, xn);
    }

    /// Sequence scoring (§8 future work 3): total log-probability the model
    /// assigns to `tokens[1..]` given the growing prefix.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` has fewer than two entries.
    pub fn score_sequence(&self, tokens: &[u32]) -> f64 {
        assert!(tokens.len() >= 2, "need at least two tokens to score");
        let mut cache = self.new_cache();
        let mut scratch = self.new_scratch();
        let mut total = 0.0f64;
        self.step_with(tokens[0], &mut cache, &mut scratch);
        for &next in &tokens[1..] {
            let probs = softmax(scratch.logits());
            total += (probs[next as usize].max(f32::MIN_POSITIVE) as f64).ln();
            self.step_with(next, &mut cache, &mut scratch);
        }
        total
    }

    /// Text embedding (§8 future work 3): mean-pooled normalized hidden
    /// states over the sequence.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn text_embedding(&self, tokens: &[u32]) -> Vec<f32> {
        assert!(!tokens.is_empty(), "need at least one token to embed");
        let mut cache = self.new_cache();
        let mut scratch = self.new_scratch();
        let mut pooled = vec![0.0f32; self.config().hidden_size];
        for &t in tokens {
            self.hidden_step_with(t, &mut cache, &mut scratch);
            add_assign(&mut pooled, scratch.hidden());
        }
        let inv = 1.0 / tokens.len() as f32;
        for v in &mut pooled {
            *v *= inv;
        }
        pooled
    }

    /// Panel prefill: consume `tokens` through the multi-token matmul
    /// kernels, chunked into panels of at most
    /// [`MAX_PREFILL_PANEL`] tokens. Appends every token's KV exactly as a
    /// [`step_with`](Self::step_with) loop would — **bit-identically**, see
    /// [`crate::kernels::matmul_block_into`] — but reads each packed weight
    /// byte once per panel instead of once per token, and computes logits
    /// (into `scratch.logits()`) only for the final token, and only when
    /// `want_logits` is set.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an out-of-vocabulary id.
    pub fn prefill_with(
        &self,
        tokens: &[u32],
        cache: &mut KvCache,
        scratch: &mut Scratch,
        want_logits: bool,
    ) -> PrefillStats {
        self.prefill_chunked(tokens, cache, scratch, MAX_PREFILL_PANEL, want_logits)
    }

    /// As [`prefill_with`](Self::prefill_with) with an explicit panel
    /// width `panel` (clamped to `1..=MAX_PREFILL_PANEL`) — the knob the
    /// prefill-throughput sweep in `hnlpu-bench` turns.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an out-of-vocabulary id.
    pub fn prefill_chunked(
        &self,
        tokens: &[u32],
        cache: &mut KvCache,
        scratch: &mut Scratch,
        panel: usize,
        want_logits: bool,
    ) -> PrefillStats {
        assert!(!tokens.is_empty(), "prompt must contain at least one token");
        let panel = panel.clamp(1, MAX_PREFILL_PANEL);
        let mut stats = PrefillStats::default();
        let mut consumed = 0;
        while consumed < tokens.len() {
            let end = (consumed + panel).min(tokens.len());
            let chunk = &tokens[consumed..end];
            consumed = end;
            let logits_now = want_logits && consumed == tokens.len();
            self.prefill_panel_with(chunk, cache, scratch, logits_now);
            stats.panels += 1;
            stats.max_panel = stats.max_panel.max(chunk.len());
        }
        stats
    }

    /// Run one panel of ≤ `MAX_PREFILL_PANEL` tokens through every layer.
    // analyze: hot
    fn prefill_panel_with(
        &self,
        tokens: &[u32],
        cache: &mut KvCache,
        scratch: &mut Scratch,
        want_logits: bool,
    ) {
        let c = *self.config();
        let h = c.hidden_size;
        let t = tokens.len();
        debug_assert!(t <= MAX_PREFILL_PANEL);
        for (tt, &tok) in tokens.iter().enumerate() {
            assert!((tok as usize) < c.vocab_size, "token out of vocabulary");
            scratch.xp[tt * h..(tt + 1) * h]
                .copy_from_slice(&self.weights.embedding[tok as usize * h..(tok as usize + 1) * h]);
        }
        let base = cache.len();
        for layer in 0..c.num_layers {
            self.panel_block_with(layer, base, t, cache, scratch);
        }
        if want_logits {
            let Scratch { xp, xn, logits, .. } = scratch;
            rmsnorm_into(&xp[(t - 1) * h..t * h], xn);
            for (tok, l) in logits.iter_mut().enumerate() {
                *l = dot(xn, &self.weights.embedding[tok * h..(tok + 1) * h]);
            }
        }
    }

    /// One transformer block over a `t`-token panel starting at context
    /// position `base`: reads the residual panel from `scratch.xp`, writes
    /// the updated panel back into it. Per token this performs exactly the
    /// operations of [`block_with`](Self::block_with) — projections go
    /// through the bit-identical matmul kernels, attention/RoPE/MoE math
    /// runs per token in the same order on the same values — so the KV
    /// entries and residuals it produces are bit-equal to a per-token
    /// loop, for every chunking.
    // analyze: hot
    fn panel_block_with(
        &self,
        layer: usize,
        base: usize,
        t: usize,
        cache: &mut KvCache,
        scratch: &mut Scratch,
    ) {
        let c = *self.config();
        let w = &self.weights.layers[layer];
        let h = c.hidden_size;
        let (hd, qh, kvh) = (
            c.attention.head_dim,
            c.attention.num_query_heads,
            c.attention.num_kv_heads,
        );
        let qw = c.attention.q_width();
        let kvw = c.attention.kv_width();
        let group = c.attention.group_size();
        let inter = c.moe.intermediate_size;
        let n_experts = c.moe.num_experts;
        let k_experts = c.moe.experts_per_token;
        let Scratch {
            y,
            scores,
            chosen,
            expert_w,
            delta,
            lora_hidden,
            rope,
            xp,
            xnp,
            xop,
            qp,
            kp,
            vp,
            attnp,
            routerp,
            chosenp,
            expertwp,
            gatherp,
            upp,
            gatep,
            stagep,
            gidx,
            ..
        } = scratch;

        // --- Attention ---
        for tt in 0..t {
            rmsnorm_into(&xp[tt * h..(tt + 1) * h], &mut xnp[tt * h..(tt + 1) * h]);
        }
        matmul_into(xnp, h, t, &w.wq, qp, qw);
        if let Some(adapter) = &self.q_adapters[layer] {
            for tt in 0..t {
                adapter.delta_into(&xnp[tt * h..(tt + 1) * h], lora_hidden, delta);
                add_assign(&mut qp[tt * qw..(tt + 1) * qw], delta);
            }
        }
        matmul_into(xnp, h, t, &w.wk, kp, kvw);
        matmul_into(xnp, h, t, &w.wv, vp, kvw);
        for tt in 0..t {
            rope.prepare(base + tt);
            for head in 0..qh {
                rope.apply(&mut qp[tt * qw + head * hd..][..hd]);
            }
            for head in 0..kvh {
                rope.apply(&mut kp[tt * kvw + head * hd..][..hd]);
            }
            cache.append(
                layer,
                &kp[tt * kvw..(tt + 1) * kvw],
                &vp[tt * kvw..(tt + 1) * kvw],
            );
        }
        let scale = 1.0 / (hd as f32).sqrt();
        attnp[..t * qw].fill(0.0);
        for tt in 0..t {
            // Causal: token `tt` sees positions `0 ..= base + tt`, even
            // though the whole panel's KV is already appended.
            let ctx = base + tt + 1;
            for head in 0..qh {
                let kv_head = head / group;
                let qh_vec = &qp[tt * qw + head * hd..][..hd];
                scores.clear();
                scores.extend((0..ctx).map(|p| dot(qh_vec, cache.key(layer, p, kv_head)) * scale));
                softmax_in_place(scores);
                let out = &mut attnp[tt * qw + head * hd..][..hd];
                for (p, &pr) in scores.iter().enumerate() {
                    let val = cache.value(layer, p, kv_head);
                    for (o, &vv) in out.iter_mut().zip(val.iter()) {
                        *o += pr * vv;
                    }
                }
            }
        }
        matmul_into(attnp, qw, t, &w.wo, xop, h);
        for tt in 0..t {
            add_assign(&mut xop[tt * h..(tt + 1) * h], &xp[tt * h..(tt + 1) * h]);
        }

        // --- MoE FFN ---
        for tt in 0..t {
            rmsnorm_into(&xop[tt * h..(tt + 1) * h], &mut xnp[tt * h..(tt + 1) * h]);
        }
        matmul_into(xnp, h, t, &w.router, routerp, n_experts);
        for tt in 0..t {
            topk_into(
                &routerp[tt * n_experts..(tt + 1) * n_experts],
                k_experts,
                chosen,
            );
            expert_w.clear();
            expert_w.extend(
                chosen
                    .iter()
                    .map(|&e| routerp[tt * n_experts..(tt + 1) * n_experts][e]),
            );
            softmax_in_place(expert_w);
            chosenp[tt * k_experts..(tt + 1) * k_experts].copy_from_slice(chosen);
            expertwp[tt * k_experts..(tt + 1) * k_experts].copy_from_slice(expert_w);
        }
        // Expert-grouped panels: gather every token routed to expert `e`,
        // run the expert's three projections as one matmul each, and stage
        // the down outputs per (token, chosen slot).
        for e in 0..n_experts {
            gidx.clear();
            for tt in 0..t {
                for s in 0..k_experts {
                    if chosenp[tt * k_experts + s] == e {
                        gidx.push(tt * k_experts + s);
                    }
                }
            }
            if gidx.is_empty() {
                continue;
            }
            let g = gidx.len();
            for (gi, &slot) in gidx.iter().enumerate() {
                let tt = slot / k_experts;
                gatherp[gi * h..(gi + 1) * h].copy_from_slice(&xnp[tt * h..(tt + 1) * h]);
            }
            matmul_into(&gatherp[..g * h], h, g, &w.up[e], upp, inter);
            matmul_into(&gatherp[..g * h], h, g, &w.gate[e], gatep, inter);
            for gi in 0..g {
                let (gate_row, up_row) = (
                    &mut gatep[gi * inter..(gi + 1) * inter],
                    &upp[gi * inter..(gi + 1) * inter],
                );
                swiglu_in_place(gate_row, up_row);
            }
            // The group's activations are no longer needed, so the down
            // outputs overwrite `gatherp` before scattering to the stage.
            matmul_into(&gatep[..g * inter], inter, g, &w.down[e], gatherp, h);
            for (gi, &slot) in gidx.iter().enumerate() {
                stagep[slot * h..(slot + 1) * h].copy_from_slice(&gatherp[gi * h..(gi + 1) * h]);
            }
        }
        // Replay each token's expert mixture in its original chosen order,
        // reproducing the per-token accumulation bit for bit.
        for tt in 0..t {
            y.fill(0.0);
            for s in 0..k_experts {
                let slot = tt * k_experts + s;
                let ew = expertwp[slot];
                for (yo, &d) in y.iter_mut().zip(stagep[slot * h..(slot + 1) * h].iter()) {
                    *yo += ew * d;
                }
            }
            add_assign(y, &xop[tt * h..(tt + 1) * h]);
            xp[tt * h..(tt + 1) * h].copy_from_slice(y);
        }
    }

    /// One transformer block: reads the residual from `scratch.x`, writes
    /// the updated residual back into it.
    fn block_with(
        &self,
        layer: usize,
        position: usize,
        cache: &mut KvCache,
        scratch: &mut Scratch,
    ) {
        let c = *self.config();
        let w = &self.weights.layers[layer];
        let (hd, qh, kvh) = (
            c.attention.head_dim,
            c.attention.num_query_heads,
            c.attention.num_kv_heads,
        );
        let group = c.attention.group_size();
        let Scratch {
            x,
            xn,
            xo,
            y,
            q,
            k,
            v,
            attn,
            scores,
            router_logits,
            chosen,
            expert_w,
            up,
            gate,
            down,
            delta,
            lora_hidden,
            rope,
            partials,
            ..
        } = scratch;

        // --- Attention ---
        rmsnorm_into(x, xn);
        matvec_rows_parallel_into(xn, &w.wq, q, partials);
        if let Some(adapter) = &self.q_adapters[layer] {
            adapter.delta_into(xn, lora_hidden, delta);
            add_assign(q, delta);
        }
        matvec_rows_parallel_into(xn, &w.wk, k, partials);
        matvec_rows_parallel_into(xn, &w.wv, v, partials);
        rope.prepare(position);
        for head in 0..qh {
            rope.apply(&mut q[head * hd..(head + 1) * hd]);
        }
        for head in 0..kvh {
            rope.apply(&mut k[head * hd..(head + 1) * hd]);
        }
        cache.append(layer, k, v);
        let ctx = cache.len();
        let scale = 1.0 / (hd as f32).sqrt();

        attn.fill(0.0);
        for head in 0..qh {
            let kv_head = head / group;
            let qh_vec = &q[head * hd..(head + 1) * hd];
            scores.clear();
            scores.extend((0..ctx).map(|p| dot(qh_vec, cache.key(layer, p, kv_head)) * scale));
            softmax_in_place(scores);
            let out = &mut attn[head * hd..(head + 1) * hd];
            for (p, &pr) in scores.iter().enumerate() {
                let val = cache.value(layer, p, kv_head);
                for (o, &vv) in out.iter_mut().zip(val.iter()) {
                    *o += pr * vv;
                }
            }
        }
        matvec_rows_parallel_into(attn, &w.wo, xo, partials);
        add_assign(xo, x); // first residual

        // --- MoE FFN ---
        rmsnorm_into(xo, xn);
        matvec_into(xn, &w.router, router_logits);
        topk_into(router_logits, c.moe.experts_per_token, chosen);
        expert_w.clear();
        expert_w.extend(chosen.iter().map(|&e| router_logits[e]));
        softmax_in_place(expert_w);

        y.fill(0.0);
        for (&expert, &ew) in chosen.iter().zip(expert_w.iter()) {
            matvec_rows_parallel_into(xn, &w.up[expert], up, partials);
            matvec_rows_parallel_into(xn, &w.gate[expert], gate, partials);
            swiglu_in_place(gate, up);
            matvec_rows_parallel_into(gate, &w.down[expert], down, partials);
            for (yo, &d) in y.iter_mut().zip(down.iter()) {
                *yo += ew * d;
            }
        }
        add_assign(y, xo); // second residual
        x.copy_from_slice(y);
    }

    /// Unembedding (weight-tied): logits over the vocabulary.
    pub fn unembed(&self, x: &[f32]) -> Vec<f32> {
        let c = self.config();
        let h = c.hidden_size;
        (0..c.vocab_size)
            .map(|t| dot(x, &self.weights.embedding[t * h..(t + 1) * h]))
            .collect()
    }

    /// Prefill `prompt` then greedily decode `n` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_greedy(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        self.generate(prompt, n, &mut Sampler::Greedy)
    }

    /// Prefill `prompt` then decode `n` tokens with `sampler`. One scratch
    /// arena serves the whole sequence, so the loop never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate(&self, prompt: &[u32], n: usize, sampler: &mut Sampler) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must contain at least one token");
        let mut cache = self.new_cache();
        let mut scratch = self.new_scratch();
        self.prefill_with(prompt, &mut cache, &mut scratch, true);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = sampler.sample(scratch.logits());
            out.push(next);
            if out.len() == n {
                break;
            }
            self.step_with(next, &mut cache, &mut scratch);
        }
        out
    }

    /// Greedy argmax of the current logits (exposed for sequence-scoring
    /// style uses).
    pub fn argmax_token(logits: &[f32]) -> u32 {
        argmax(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnlpu_model::{zoo, WeightGenerator};

    fn model() -> Transformer {
        let card = zoo::test_model();
        Transformer::new(ModelWeights::materialize(
            &card.config,
            &WeightGenerator::new(42),
        ))
    }

    #[test]
    fn step_produces_vocab_logits() {
        let m = model();
        let mut cache = m.new_cache();
        let logits = m.step(3, &mut cache);
        assert_eq!(logits.len(), m.config().vocab_size);
        assert_eq!(cache.len(), 1);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn fresh_and_reused_scratch_agree_bitwise() {
        // The arena must be a pure workspace: a scratch dirtied by other
        // sequences produces the same logits as a fresh one.
        let m = model();
        let mut dirty = m.new_scratch();
        let mut warm_cache = m.new_cache();
        for t in [9u32, 2, 5] {
            m.step_with(t, &mut warm_cache, &mut dirty);
        }
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        for t in [1u32, 2, 3] {
            let fresh = m.step(t, &mut c1);
            m.step_with(t, &mut c2, &mut dirty);
            assert_eq!(fresh.as_slice(), dirty.logits());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let a = m.generate_greedy(&[1, 2, 3], 6);
        let b = m.generate_greedy(&[1, 2, 3], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn different_prompts_diverge() {
        let m = model();
        let a = m.generate_greedy(&[1, 2, 3], 8);
        let b = m.generate_greedy(&[4, 5, 6], 8);
        assert_ne!(a, b);
    }

    #[test]
    fn context_affects_logits() {
        // Causal attention: the same token in different contexts produces
        // different logits.
        let m = model();
        let mut c1 = m.new_cache();
        m.step(1, &mut c1);
        let l1 = m.step(7, &mut c1);
        let mut c2 = m.new_cache();
        m.step(2, &mut c2);
        let l2 = m.step(7, &mut c2);
        assert_ne!(l1, l2);
    }

    #[test]
    fn multinomial_generation_runs() {
        let m = model();
        let mut s = Sampler::multinomial(0.8, 123);
        let out = m.generate(&[1], 5, &mut s);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&t| (t as usize) < m.config().vocab_size));
    }

    #[test]
    #[should_panic(expected = "token out of vocabulary")]
    fn oversized_token_rejected() {
        model().embed(u32::MAX);
    }

    #[test]
    fn sequence_scoring_prefers_model_output() {
        // A greedily generated continuation must score at least as high as
        // a perturbed one.
        let m = model();
        let prompt = [1u32, 2];
        let gen = m.generate_greedy(&prompt, 4);
        let mut good: Vec<u32> = prompt.to_vec();
        good.extend_from_slice(&gen);
        let mut bad = good.clone();
        let last = *bad.last().unwrap();
        *bad.last_mut().unwrap() = (last + 17) % m.config().vocab_size as u32;
        assert!(m.score_sequence(&good) >= m.score_sequence(&bad));
    }

    #[test]
    fn text_embedding_shape_and_sensitivity() {
        let m = model();
        let a = m.text_embedding(&[1, 2, 3]);
        let b = m.text_embedding(&[4, 5, 6]);
        assert_eq!(a.len(), m.config().hidden_size);
        assert_ne!(a, b);
        // Pooled RMS-normalized states have bounded magnitude.
        let rms = (a.iter().map(|v| v * v).sum::<f32>() / a.len() as f32).sqrt();
        assert!(rms < 2.0, "rms = {rms}");
    }

    #[test]
    fn lora_adapter_changes_generation() {
        use crate::lora::LoraAdapter;
        let mut m = model();
        let before = m.generate_greedy(&[1, 2, 3], 6);
        let c = *m.config();
        m.set_q_adapter(
            0,
            LoraAdapter::seeded(c.hidden_size, c.attention.q_width(), 4, 8.0, 3),
        );
        let after = m.generate_greedy(&[1, 2, 3], 6);
        assert_ne!(before, after, "a strong adapter must steer decoding");
    }

    #[test]
    fn zero_lora_adapter_is_identity() {
        use crate::lora::LoraAdapter;
        let mut m = model();
        let before = m.generate_greedy(&[1, 2, 3], 6);
        let c = *m.config();
        m.set_q_adapter(
            1,
            LoraAdapter::zeros(c.hidden_size, c.attention.q_width(), 4, 1.0),
        );
        assert_eq!(m.generate_greedy(&[1, 2, 3], 6), before);
    }

    #[test]
    #[should_panic(expected = "prompt must contain")]
    fn empty_prompt_rejected() {
        model().generate_greedy(&[], 3);
    }

    #[test]
    fn panel_prefill_is_bitwise_per_token_loop() {
        // The tentpole contract: the multi-token matmul prefill appends
        // the same KV and produces the same final logits as a step_with
        // loop, bit for bit.
        let m = model();
        let prompt: Vec<u32> = (0..23u32).map(|i| (i * 13 + 2) % 48).collect();
        let mut loop_cache = m.new_cache();
        let mut loop_scratch = m.new_scratch();
        for &t in &prompt {
            m.step_with(t, &mut loop_cache, &mut loop_scratch);
        }
        let mut panel_cache = m.new_cache();
        let mut panel_scratch = m.new_scratch();
        let stats = m.prefill_with(&prompt, &mut panel_cache, &mut panel_scratch, true);
        assert_eq!(stats.panels, 1);
        assert_eq!(stats.max_panel, prompt.len());
        assert_eq!(loop_scratch.logits(), panel_scratch.logits());
        assert_eq!(panel_cache.len(), prompt.len());
        let c = m.config();
        for layer in 0..c.num_layers {
            for p in 0..prompt.len() {
                for head in 0..c.attention.num_kv_heads {
                    assert_eq!(
                        loop_cache.key(layer, p, head),
                        panel_cache.key(layer, p, head),
                        "key layer {layer} pos {p} head {head}"
                    );
                    assert_eq!(
                        loop_cache.value(layer, p, head),
                        panel_cache.value(layer, p, head),
                        "value layer {layer} pos {p} head {head}"
                    );
                }
            }
        }
        // Decoding after either prefill yields identical continuations.
        let mut a = Vec::new();
        let mut tok = Sampler::Greedy.sample(loop_scratch.logits());
        for _ in 0..6 {
            a.push(tok);
            m.step_with(tok, &mut loop_cache, &mut loop_scratch);
            tok = Sampler::Greedy.sample(loop_scratch.logits());
        }
        let mut b = Vec::new();
        let mut tok = Sampler::Greedy.sample(panel_scratch.logits());
        for _ in 0..6 {
            b.push(tok);
            m.step_with(tok, &mut panel_cache, &mut panel_scratch);
            tok = Sampler::Greedy.sample(panel_scratch.logits());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn prefill_is_chunking_invariant() {
        // Any panel width yields bit-identical logits: the matmul is
        // bit-equal to the matvec loop per token, so chunk boundaries
        // cannot be observed.
        let m = model();
        let prompt: Vec<u32> = (0..41u32).map(|i| (i * 7 + 1) % 48).collect();
        let mut want: Option<Vec<f32>> = None;
        for panel in [1usize, 3, 16, 64] {
            let mut cache = m.new_cache();
            let mut scratch = m.new_scratch();
            let stats = m.prefill_chunked(&prompt, &mut cache, &mut scratch, panel, true);
            assert_eq!(stats.panels as usize, prompt.len().div_ceil(panel));
            assert_eq!(stats.max_panel, panel.min(prompt.len()));
            match &want {
                None => want = Some(scratch.logits().to_vec()),
                Some(w) => assert_eq!(w.as_slice(), scratch.logits(), "panel {panel}"),
            }
        }
    }

    #[test]
    fn panel_prefill_respects_lora_adapter() {
        use crate::lora::LoraAdapter;
        let mut m = model();
        let c = *m.config();
        m.set_q_adapter(
            0,
            LoraAdapter::seeded(c.hidden_size, c.attention.q_width(), 4, 8.0, 3),
        );
        let prompt = [1u32, 2, 3, 4, 5];
        let mut loop_cache = m.new_cache();
        let mut loop_scratch = m.new_scratch();
        for &t in &prompt {
            m.step_with(t, &mut loop_cache, &mut loop_scratch);
        }
        let mut cache = m.new_cache();
        let mut scratch = m.new_scratch();
        m.prefill_with(&prompt, &mut cache, &mut scratch, true);
        assert_eq!(loop_scratch.logits(), scratch.logits());
    }
}
