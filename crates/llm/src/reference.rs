//! The single-device reference transformer (pre-norm GQA + MoE + SwiGLU),
//! the functional ground truth the HNLPU dataflow is verified against.
//!
//! The hot path is allocation-free: all projections run the
//! region-accumulation kernels ([`crate::kernels`]) directly on packed FP4
//! weights, and every intermediate lives in a caller-provided [`Scratch`]
//! arena ([`step_with`](Transformer::step_with)). The allocating entry
//! points ([`step`](Transformer::step) etc.) remain as thin wrappers.

use crate::kernels::matvec_into;
use crate::kv_cache::KvCache;
use crate::lora::LoraAdapter;
use crate::ops::{rmsnorm_into, softmax, softmax_in_place, swiglu_in_place, topk_into};
use crate::sampler::{argmax, Sampler};
use crate::scratch::Scratch;
use crate::tensor::{add_assign, dot};
use hnlpu_model::{ModelWeights, TransformerConfig};

/// The reference decoder.
#[derive(Debug, Clone)]
pub struct Transformer {
    weights: ModelWeights,
    /// Optional LoRA side-channel adapters on the query projection,
    /// one slot per layer (§8 future work 4).
    q_adapters: Vec<Option<LoraAdapter>>,
}

impl Transformer {
    /// Wrap materialized weights.
    pub fn new(weights: ModelWeights) -> Self {
        let layers = weights.config.num_layers;
        Transformer {
            weights,
            q_adapters: vec![None; layers],
        }
    }

    /// Install a LoRA adapter on `layer`'s query projection.
    ///
    /// # Panics
    ///
    /// Panics if the adapter shape does not match `Wq` or the layer index
    /// is out of range.
    pub fn set_q_adapter(&mut self, layer: usize, adapter: LoraAdapter) {
        let c = self.config();
        assert_eq!(adapter.rows, c.hidden_size, "adapter rows");
        assert_eq!(adapter.cols, c.attention.q_width(), "adapter cols");
        self.q_adapters[layer] = Some(adapter);
    }

    /// The architecture.
    pub fn config(&self) -> &TransformerConfig {
        &self.weights.config
    }

    /// An empty KV cache for this model.
    pub fn new_cache(&self) -> KvCache {
        let c = self.config();
        KvCache::new(c.num_layers, c.attention.num_kv_heads, c.attention.head_dim)
    }

    /// A scratch arena sized for this model (reusable across steps and
    /// sequences).
    pub fn new_scratch(&self) -> Scratch {
        Scratch::new(self.config())
    }

    /// Embedding lookup for `token`.
    ///
    /// # Panics
    ///
    /// Panics if `token` exceeds the vocabulary.
    pub fn embed(&self, token: u32) -> Vec<f32> {
        let c = self.config();
        assert!((token as usize) < c.vocab_size, "token out of vocabulary");
        let h = c.hidden_size;
        self.weights.embedding[token as usize * h..(token as usize + 1) * h].to_vec()
    }

    /// Run one decode step: consume `token` at the cache's current position,
    /// append its KV, and return the next-token logits.
    pub fn step(&self, token: u32, cache: &mut KvCache) -> Vec<f32> {
        let mut scratch = self.new_scratch();
        self.step_with(token, cache, &mut scratch);
        scratch.logits
    }

    /// Allocation-free [`step`](Self::step): the logits land in
    /// `scratch.logits()`.
    pub fn step_with(&self, token: u32, cache: &mut KvCache, scratch: &mut Scratch) {
        self.hidden_step_with(token, cache, scratch);
        let c = self.config();
        let h = c.hidden_size;
        // Unembedding (weight-tied): logits over the vocabulary.
        let Scratch { xn, logits, .. } = scratch;
        for (t, l) in logits.iter_mut().enumerate() {
            *l = dot(xn, &self.weights.embedding[t * h..(t + 1) * h]);
        }
    }

    /// As [`step`](Self::step), but return the final normalized hidden
    /// state instead of logits (the representation text-embedding uses).
    pub fn hidden_step(&self, token: u32, cache: &mut KvCache) -> Vec<f32> {
        let mut scratch = self.new_scratch();
        self.hidden_step_with(token, cache, &mut scratch);
        scratch.xn
    }

    /// Allocation-free [`hidden_step`](Self::hidden_step): the normalized
    /// hidden state lands in `scratch.hidden()`.
    pub fn hidden_step_with(&self, token: u32, cache: &mut KvCache, scratch: &mut Scratch) {
        let c = *self.config();
        assert!((token as usize) < c.vocab_size, "token out of vocabulary");
        let h = c.hidden_size;
        let position = cache.len();
        scratch
            .x
            .copy_from_slice(&self.weights.embedding[token as usize * h..(token as usize + 1) * h]);
        for layer in 0..c.num_layers {
            self.block_with(layer, position, cache, scratch);
        }
        let Scratch { x, xn, .. } = scratch;
        rmsnorm_into(x, xn);
    }

    /// Sequence scoring (§8 future work 3): total log-probability the model
    /// assigns to `tokens[1..]` given the growing prefix.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` has fewer than two entries.
    pub fn score_sequence(&self, tokens: &[u32]) -> f64 {
        assert!(tokens.len() >= 2, "need at least two tokens to score");
        let mut cache = self.new_cache();
        let mut scratch = self.new_scratch();
        let mut total = 0.0f64;
        self.step_with(tokens[0], &mut cache, &mut scratch);
        for &next in &tokens[1..] {
            let probs = softmax(scratch.logits());
            total += (probs[next as usize].max(f32::MIN_POSITIVE) as f64).ln();
            self.step_with(next, &mut cache, &mut scratch);
        }
        total
    }

    /// Text embedding (§8 future work 3): mean-pooled normalized hidden
    /// states over the sequence.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn text_embedding(&self, tokens: &[u32]) -> Vec<f32> {
        assert!(!tokens.is_empty(), "need at least one token to embed");
        let mut cache = self.new_cache();
        let mut scratch = self.new_scratch();
        let mut pooled = vec![0.0f32; self.config().hidden_size];
        for &t in tokens {
            self.hidden_step_with(t, &mut cache, &mut scratch);
            add_assign(&mut pooled, scratch.hidden());
        }
        let inv = 1.0 / tokens.len() as f32;
        for v in &mut pooled {
            *v *= inv;
        }
        pooled
    }

    /// One transformer block: reads the residual from `scratch.x`, writes
    /// the updated residual back into it.
    fn block_with(
        &self,
        layer: usize,
        position: usize,
        cache: &mut KvCache,
        scratch: &mut Scratch,
    ) {
        let c = *self.config();
        let w = &self.weights.layers[layer];
        let (hd, qh, kvh) = (
            c.attention.head_dim,
            c.attention.num_query_heads,
            c.attention.num_kv_heads,
        );
        let group = c.attention.group_size();
        let Scratch {
            x,
            xn,
            xo,
            y,
            q,
            k,
            v,
            attn,
            scores,
            router_logits,
            chosen,
            expert_w,
            up,
            gate,
            down,
            delta,
            lora_hidden,
            rope,
            ..
        } = scratch;

        // --- Attention ---
        rmsnorm_into(x, xn);
        matvec_into(xn, &w.wq, q);
        if let Some(adapter) = &self.q_adapters[layer] {
            adapter.delta_into(xn, lora_hidden, delta);
            add_assign(q, delta);
        }
        matvec_into(xn, &w.wk, k);
        matvec_into(xn, &w.wv, v);
        rope.prepare(position);
        for head in 0..qh {
            rope.apply(&mut q[head * hd..(head + 1) * hd]);
        }
        for head in 0..kvh {
            rope.apply(&mut k[head * hd..(head + 1) * hd]);
        }
        cache.append(layer, k, v);
        let ctx = cache.len();
        let scale = 1.0 / (hd as f32).sqrt();

        attn.fill(0.0);
        for head in 0..qh {
            let kv_head = head / group;
            let qh_vec = &q[head * hd..(head + 1) * hd];
            scores.clear();
            scores.extend((0..ctx).map(|p| dot(qh_vec, cache.key(layer, p, kv_head)) * scale));
            softmax_in_place(scores);
            let out = &mut attn[head * hd..(head + 1) * hd];
            for (p, &pr) in scores.iter().enumerate() {
                let val = cache.value(layer, p, kv_head);
                for (o, &vv) in out.iter_mut().zip(val.iter()) {
                    *o += pr * vv;
                }
            }
        }
        matvec_into(attn, &w.wo, xo);
        add_assign(xo, x); // first residual

        // --- MoE FFN ---
        rmsnorm_into(xo, xn);
        matvec_into(xn, &w.router, router_logits);
        topk_into(router_logits, c.moe.experts_per_token, chosen);
        expert_w.clear();
        expert_w.extend(chosen.iter().map(|&e| router_logits[e]));
        softmax_in_place(expert_w);

        y.fill(0.0);
        for (&expert, &ew) in chosen.iter().zip(expert_w.iter()) {
            matvec_into(xn, &w.up[expert], up);
            matvec_into(xn, &w.gate[expert], gate);
            swiglu_in_place(gate, up);
            matvec_into(gate, &w.down[expert], down);
            for (yo, &d) in y.iter_mut().zip(down.iter()) {
                *yo += ew * d;
            }
        }
        add_assign(y, xo); // second residual
        x.copy_from_slice(y);
    }

    /// Unembedding (weight-tied): logits over the vocabulary.
    pub fn unembed(&self, x: &[f32]) -> Vec<f32> {
        let c = self.config();
        let h = c.hidden_size;
        (0..c.vocab_size)
            .map(|t| dot(x, &self.weights.embedding[t * h..(t + 1) * h]))
            .collect()
    }

    /// Prefill `prompt` then greedily decode `n` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_greedy(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        self.generate(prompt, n, &mut Sampler::Greedy)
    }

    /// Prefill `prompt` then decode `n` tokens with `sampler`. One scratch
    /// arena serves the whole sequence, so the loop never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate(&self, prompt: &[u32], n: usize, sampler: &mut Sampler) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must contain at least one token");
        let mut cache = self.new_cache();
        let mut scratch = self.new_scratch();
        for &t in prompt {
            self.step_with(t, &mut cache, &mut scratch);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = sampler.sample(scratch.logits());
            out.push(next);
            if out.len() == n {
                break;
            }
            self.step_with(next, &mut cache, &mut scratch);
        }
        out
    }

    /// Greedy argmax of the current logits (exposed for sequence-scoring
    /// style uses).
    pub fn argmax_token(logits: &[f32]) -> u32 {
        argmax(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnlpu_model::{zoo, WeightGenerator};

    fn model() -> Transformer {
        let card = zoo::test_model();
        Transformer::new(ModelWeights::materialize(
            &card.config,
            &WeightGenerator::new(42),
        ))
    }

    #[test]
    fn step_produces_vocab_logits() {
        let m = model();
        let mut cache = m.new_cache();
        let logits = m.step(3, &mut cache);
        assert_eq!(logits.len(), m.config().vocab_size);
        assert_eq!(cache.len(), 1);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn fresh_and_reused_scratch_agree_bitwise() {
        // The arena must be a pure workspace: a scratch dirtied by other
        // sequences produces the same logits as a fresh one.
        let m = model();
        let mut dirty = m.new_scratch();
        let mut warm_cache = m.new_cache();
        for t in [9u32, 2, 5] {
            m.step_with(t, &mut warm_cache, &mut dirty);
        }
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        for t in [1u32, 2, 3] {
            let fresh = m.step(t, &mut c1);
            m.step_with(t, &mut c2, &mut dirty);
            assert_eq!(fresh.as_slice(), dirty.logits());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let a = m.generate_greedy(&[1, 2, 3], 6);
        let b = m.generate_greedy(&[1, 2, 3], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn different_prompts_diverge() {
        let m = model();
        let a = m.generate_greedy(&[1, 2, 3], 8);
        let b = m.generate_greedy(&[4, 5, 6], 8);
        assert_ne!(a, b);
    }

    #[test]
    fn context_affects_logits() {
        // Causal attention: the same token in different contexts produces
        // different logits.
        let m = model();
        let mut c1 = m.new_cache();
        m.step(1, &mut c1);
        let l1 = m.step(7, &mut c1);
        let mut c2 = m.new_cache();
        m.step(2, &mut c2);
        let l2 = m.step(7, &mut c2);
        assert_ne!(l1, l2);
    }

    #[test]
    fn multinomial_generation_runs() {
        let m = model();
        let mut s = Sampler::multinomial(0.8, 123);
        let out = m.generate(&[1], 5, &mut s);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&t| (t as usize) < m.config().vocab_size));
    }

    #[test]
    #[should_panic(expected = "token out of vocabulary")]
    fn oversized_token_rejected() {
        model().embed(u32::MAX);
    }

    #[test]
    fn sequence_scoring_prefers_model_output() {
        // A greedily generated continuation must score at least as high as
        // a perturbed one.
        let m = model();
        let prompt = [1u32, 2];
        let gen = m.generate_greedy(&prompt, 4);
        let mut good: Vec<u32> = prompt.to_vec();
        good.extend_from_slice(&gen);
        let mut bad = good.clone();
        let last = *bad.last().unwrap();
        *bad.last_mut().unwrap() = (last + 17) % m.config().vocab_size as u32;
        assert!(m.score_sequence(&good) >= m.score_sequence(&bad));
    }

    #[test]
    fn text_embedding_shape_and_sensitivity() {
        let m = model();
        let a = m.text_embedding(&[1, 2, 3]);
        let b = m.text_embedding(&[4, 5, 6]);
        assert_eq!(a.len(), m.config().hidden_size);
        assert_ne!(a, b);
        // Pooled RMS-normalized states have bounded magnitude.
        let rms = (a.iter().map(|v| v * v).sum::<f32>() / a.len() as f32).sqrt();
        assert!(rms < 2.0, "rms = {rms}");
    }

    #[test]
    fn lora_adapter_changes_generation() {
        use crate::lora::LoraAdapter;
        let mut m = model();
        let before = m.generate_greedy(&[1, 2, 3], 6);
        let c = *m.config();
        m.set_q_adapter(
            0,
            LoraAdapter::seeded(c.hidden_size, c.attention.q_width(), 4, 8.0, 3),
        );
        let after = m.generate_greedy(&[1, 2, 3], 6);
        assert_ne!(before, after, "a strong adapter must steer decoding");
    }

    #[test]
    fn zero_lora_adapter_is_identity() {
        use crate::lora::LoraAdapter;
        let mut m = model();
        let before = m.generate_greedy(&[1, 2, 3], 6);
        let c = *m.config();
        m.set_q_adapter(
            1,
            LoraAdapter::zeros(c.hidden_size, c.attention.q_width(), 4, 1.0),
        );
        assert_eq!(m.generate_greedy(&[1, 2, 3], 6), before);
    }

    #[test]
    #[should_panic(expected = "prompt must contain")]
    fn empty_prompt_rejected() {
        model().generate_greedy(&[], 3);
    }
}
