//! Functional LLM inference: the reference transformer and the 16-chip
//! HNLPU dataflow executor.
//!
//! The paper's HNLPU is a *complete physical implementation* of gpt-oss
//! 120 B: token ids in, token ids out. This crate validates that the
//! partitioning/dataflow of §5 and Appendix A computes the same function as
//! a straightforward single-device transformer:
//!
//! * [`kernels`] — region-accumulation matvec kernels computing directly
//!   on packed FP4 codes (Figure 4's 16 POPCNT regions in software); both
//!   engines route every projection through them.
//! * [`tensor`] — minimal dense row-major matrix/vector kernels (the naive
//!   baseline path, LoRA, and dot products).
//! * [`ops`] — RMSNorm, softmax, SwiGLU, rotary embedding, top-k.
//! * [`scratch`] — the per-sequence [`Scratch`] arena + rotary table that
//!   make the steady-state decode step allocation-free.
//! * [`kv_cache`] — per-layer KV storage.
//! * [`sampler`] — greedy and seeded-multinomial logit sampling.
//! * [`mod@reference`] — the single-device decoder (GQA + MoE, pre-norm).
//! * [`dataflow`] — the 4×4-chip executor with explicit partial sums and
//!   collectives mirroring Figure 10, plus communication counters.
//! * [`batch`] — the batched engine: a KV-slot pool with continuous-
//!   batching admission/eviction executing `hnlpu-sim`'s round plans,
//!   parallel across sequences (feature `parallel`, on by default).
//! * [`naive`] — the pre-optimization dense-`f32`, allocating decoder kept
//!   as the benchmark baseline and semantic cross-check.
//! * [`serve`] — the online serving frontend: bounded-queue admission,
//!   incremental prefill/decode scheduling on a virtual clock, per-token
//!   streaming, cancellation, and p50/p99 TTFT/TPOT SLO reporting —
//!   bit-identical to offline plan replay by construction.
//! * [`fault`] — deterministic chaos: seeded [`fault::FaultPlan`]s (chip
//!   kills, stragglers, link faults, request deadlines) that the server
//!   consumes on its virtual clock, making every degraded-mode run exactly
//!   reproducible; hardwired chips cannot be re-flashed, so failures are
//!   survived by remapping ([`dataflow::DegradedLayout`]), not repair.
//!
//! # Example
//!
//! ```
//! use hnlpu_llm::reference::Transformer;
//! use hnlpu_llm::dataflow::DataflowExecutor;
//! use hnlpu_model::{zoo, ModelWeights, WeightGenerator};
//!
//! let card = zoo::dataflow_test_model();
//! let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(7));
//! let reference = Transformer::new(w.clone());
//! let hnlpu = DataflowExecutor::new(w);
//! let prompt = [1u32, 5, 9];
//! let a = reference.generate_greedy(&prompt, 8);
//! let b = hnlpu.generate_greedy(&prompt, 8);
//! assert_eq!(a, b); // same tokens out of both machines
//! ```

#![warn(missing_docs)]
pub mod batch;
pub mod dataflow;
pub mod fault;
pub mod kernels;
pub mod kv_cache;
pub mod lora;
pub mod naive;
pub mod ops;
pub mod reference;
pub mod sampler;
pub mod scratch;
pub mod serve;
pub mod tensor;
pub mod tokenizer;

pub use batch::{BatchRunReport, BatchedDataflowExecutor, RecoveryStats, SequenceRequest};
pub use dataflow::{CommCounters, DataflowExecutor, DegradedLayout, GridError, GridHealth};
pub use fault::{ChaosSpec, FaultError, FaultPlan};
pub use kv_cache::{
    KvCache, PageBuf, PagePool, PageRef, PrefixCache, PrefixCacheConfig, PrefixMatch, PrefixStats,
    BLOCK_POSITIONS, PAGE_SLOTS,
};
pub use lora::LoraAdapter;
pub use naive::NaiveTransformer;
pub use reference::Transformer;
pub use sampler::Sampler;
pub use scratch::Scratch;
pub use serve::{OnlineServer, SeqId, SeqState, ServeError, ServeEvent, SloReport};
pub use tokenizer::AsciiTokenizer;
