//! Deterministic fault injection for the serving stack.
//!
//! Hardwired-neuron chips cannot be re-flashed: a dead or degraded chip
//! in the 4×4 grid must be survived by remapping and rescheduling, never
//! by repair, so the serving stack needs a first-class description of
//! everything that can go wrong. A [`FaultPlan`] is that description —
//! injected chip failures, per-chip straggler slowdowns, transient link
//! faults on the modeled interconnect, and per-request deadlines — all
//! stamped in virtual microseconds so [`crate::serve::OnlineServer`] can
//! consume the plan on its virtual clock. A plan is pure data: two runs
//! of the same workload under the same plan are bit-identical, which is
//! what makes chaos runs property-testable
//! (`tests/tests/chaos_differential.rs`).
//!
//! Plans are either hand-built or drawn from a seeded RNG via
//! [`FaultPlan::seeded`]; both go through [`FaultPlan::validate`] before
//! a server will accept them, so malformed chaos input surfaces as a
//! typed [`FaultError`] instead of a panic mid-run.

use crate::dataflow::GRID;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;
use std::fmt;

/// Chips in the grid (the paper's 4×4 fabric).
pub const CHIPS: usize = GRID * GRID;

/// Largest modeled link-retransmission count per collective.
pub const MAX_LINK_RETRIES: u32 = 6;

/// Largest accepted straggler slowdown factor.
pub const MAX_SLOWDOWN: f64 = 64.0;

/// A permanent chip death at a point in virtual time. Hardwired chips
/// cannot be repaired or re-flashed, so failures never heal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChipFailure {
    /// When the chip dies, virtual microseconds.
    pub at_micros: u64,
    /// The dead chip, `0..CHIPS` (row-major over the 4×4 grid).
    pub chip: usize,
}

/// A transient per-chip slowdown window (thermal throttling, a marginal
/// voltage rail). The grid is lock-step, so the slowest live chip paces
/// every pipeline round in the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Straggler {
    /// The slow chip, `0..CHIPS`.
    pub chip: usize,
    /// Window start, virtual microseconds (inclusive).
    pub from_micros: u64,
    /// Window end, virtual microseconds (exclusive).
    pub until_micros: u64,
    /// Round-time multiplier while active, `1.0..=MAX_SLOWDOWN`.
    pub slowdown: f64,
}

/// A transient lossy-link window: collectives crossing the fabric must
/// be retried `retries` times before they land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LinkFault {
    /// Window start, virtual microseconds (inclusive).
    pub from_micros: u64,
    /// Window end, virtual microseconds (exclusive).
    pub until_micros: u64,
    /// Retransmissions per collective while active,
    /// `1..=MAX_LINK_RETRIES`.
    pub retries: u32,
}

/// An absolute completion deadline for one submission of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Deadline {
    /// Index of the submission in trace order (counting rejected
    /// submissions too).
    pub submission: usize,
    /// The deadline, virtual microseconds. A sequence still live when
    /// the clock passes this instant is terminated with a typed
    /// `ServeError::Deadline`.
    pub at_micros: u64,
}

/// A complete, reproducible description of every fault a serving run
/// will experience. Empty plans ([`FaultPlan::none`]) leave the server
/// bit-identical to the fault-free path.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Permanent chip deaths.
    pub chip_failures: Vec<ChipFailure>,
    /// Transient per-chip slowdown windows.
    pub stragglers: Vec<Straggler>,
    /// Transient lossy-link windows.
    pub link_faults: Vec<LinkFault>,
    /// Per-submission completion deadlines.
    pub deadlines: Vec<Deadline>,
}

/// Shape parameters for [`FaultPlan::seeded`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChaosSpec {
    /// Window (from t = 0) in which fault times are drawn, microseconds.
    pub horizon_micros: u64,
    /// Trace length, for deadline targeting.
    pub submissions: usize,
    /// Distinct chips to kill (clamped to `CHIPS - 1` so at least one
    /// chip always survives).
    pub chip_failures: usize,
    /// Straggler windows to draw.
    pub stragglers: usize,
    /// Lossy-link windows to draw.
    pub link_faults: usize,
    /// Distinct submissions given deadlines (clamped to `submissions`).
    pub deadlines: usize,
    /// Minimum slack added to every drawn deadline, microseconds.
    pub min_deadline_micros: u64,
}

/// Why a fault plan was rejected. Plans are external input to the
/// server, so malformed ones surface as typed errors, never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A fault referenced a chip outside `0..CHIPS`.
    ChipOutOfRange {
        /// The offending chip index.
        chip: usize,
    },
    /// Two `ChipFailure` entries name the same chip.
    DuplicateChipFailure {
        /// The doubly-killed chip.
        chip: usize,
    },
    /// The plan kills every chip — nothing would survive to host the
    /// remapped row-partitions.
    NoSurvivors,
    /// A straggler or link-fault window is empty (`until <= from`).
    EmptyWindow {
        /// Window start, microseconds.
        from_micros: u64,
        /// Window end, microseconds.
        until_micros: u64,
    },
    /// A straggler slowdown is not in `1.0..=MAX_SLOWDOWN` (or not
    /// finite).
    SlowdownOutOfRange,
    /// A link fault's retries are not in `1..=MAX_LINK_RETRIES`.
    RetriesOutOfRange {
        /// The offending retry count.
        retries: u32,
    },
    /// Two deadlines target the same submission.
    DuplicateDeadline {
        /// The doubly-constrained submission index.
        submission: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultError::ChipOutOfRange { chip } => {
                write!(f, "chip {chip} is outside the {CHIPS}-chip grid")
            }
            FaultError::DuplicateChipFailure { chip } => {
                write!(f, "chip {chip} is killed twice")
            }
            FaultError::NoSurvivors => {
                write!(f, "plan kills all {CHIPS} chips; at least one must survive")
            }
            FaultError::EmptyWindow {
                from_micros,
                until_micros,
            } => write!(f, "empty fault window [{from_micros}, {until_micros}) µs"),
            FaultError::SlowdownOutOfRange => {
                write!(
                    f,
                    "straggler slowdown must be finite in 1.0..={MAX_SLOWDOWN}"
                )
            }
            FaultError::RetriesOutOfRange { retries } => {
                write!(f, "link retries {retries} not in 1..={MAX_LINK_RETRIES}")
            }
            FaultError::DuplicateDeadline { submission } => {
                write!(f, "submission {submission} has two deadlines")
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl FaultPlan {
    /// The empty plan: a server given this plan is bit-identical to the
    /// fault-free path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.chip_failures.is_empty()
            && self.stragglers.is_empty()
            && self.link_faults.is_empty()
            && self.deadlines.is_empty()
    }

    /// Draw a valid plan from a seeded RNG: same seed and spec, same
    /// plan, forever. Chip kills target distinct chips (at most
    /// `CHIPS - 1`), deadlines target distinct submissions, and every
    /// drawn window and factor is inside the validated ranges.
    pub fn seeded(seed: u64, spec: &ChaosSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = spec.horizon_micros.max(1);
        let mut chips: Vec<usize> = Vec::new();
        while chips.len() < spec.chip_failures.min(CHIPS - 1) {
            let chip = rng.gen_range(0..CHIPS);
            if !chips.contains(&chip) {
                chips.push(chip);
            }
        }
        let chip_failures = chips
            .iter()
            .map(|&chip| ChipFailure {
                at_micros: rng.gen_range(0..horizon),
                chip,
            })
            .collect();
        let stragglers = (0..spec.stragglers)
            .map(|_| {
                let from_micros = rng.gen_range(0..horizon);
                Straggler {
                    chip: rng.gen_range(0..CHIPS),
                    from_micros,
                    until_micros: from_micros.saturating_add(rng.gen_range(1..=horizon)),
                    slowdown: 1.5 + rng.gen::<f64>() * 6.5,
                }
            })
            .collect();
        let link_faults = (0..spec.link_faults)
            .map(|_| {
                let from_micros = rng.gen_range(0..horizon);
                LinkFault {
                    from_micros,
                    until_micros: from_micros.saturating_add(rng.gen_range(1..=horizon)),
                    retries: rng.gen_range(1..=3u32),
                }
            })
            .collect();
        let mut targets: Vec<usize> = Vec::new();
        while targets.len() < spec.deadlines.min(spec.submissions) {
            let submission = rng.gen_range(0..spec.submissions);
            if !targets.contains(&submission) {
                targets.push(submission);
            }
        }
        let deadlines = targets
            .iter()
            .map(|&submission| Deadline {
                submission,
                at_micros: spec
                    .min_deadline_micros
                    .saturating_add(rng.gen_range(0..horizon)),
            })
            .collect();
        FaultPlan {
            chip_failures,
            stragglers,
            link_faults,
            deadlines,
        }
    }

    /// Check every entry against the grid and the modeled ranges.
    ///
    /// # Errors
    ///
    /// The first violated rule, as a typed [`FaultError`].
    pub fn validate(&self) -> Result<(), FaultError> {
        let mut failed: Vec<usize> = Vec::new();
        for fail in &self.chip_failures {
            if fail.chip >= CHIPS {
                return Err(FaultError::ChipOutOfRange { chip: fail.chip });
            }
            if failed.contains(&fail.chip) {
                return Err(FaultError::DuplicateChipFailure { chip: fail.chip });
            }
            failed.push(fail.chip);
        }
        if failed.len() >= CHIPS {
            return Err(FaultError::NoSurvivors);
        }
        for s in &self.stragglers {
            if s.chip >= CHIPS {
                return Err(FaultError::ChipOutOfRange { chip: s.chip });
            }
            if s.until_micros <= s.from_micros {
                return Err(FaultError::EmptyWindow {
                    from_micros: s.from_micros,
                    until_micros: s.until_micros,
                });
            }
            if !(s.slowdown.is_finite() && (1.0..=MAX_SLOWDOWN).contains(&s.slowdown)) {
                return Err(FaultError::SlowdownOutOfRange);
            }
        }
        for l in &self.link_faults {
            if l.until_micros <= l.from_micros {
                return Err(FaultError::EmptyWindow {
                    from_micros: l.from_micros,
                    until_micros: l.until_micros,
                });
            }
            if l.retries == 0 || l.retries > MAX_LINK_RETRIES {
                return Err(FaultError::RetriesOutOfRange { retries: l.retries });
            }
        }
        let mut constrained: Vec<usize> = Vec::new();
        for d in &self.deadlines {
            if constrained.contains(&d.submission) {
                return Err(FaultError::DuplicateDeadline {
                    submission: d.submission,
                });
            }
            constrained.push(d.submission);
        }
        Ok(())
    }

    /// Chip failures sorted by failure time (stable: equal times keep
    /// plan order) — the order the server applies them in.
    pub fn failures_sorted(&self) -> Vec<ChipFailure> {
        let mut sorted = self.chip_failures.clone();
        sorted.sort_by_key(|f| f.at_micros);
        sorted
    }

    /// Round-time multiplier at virtual time `t_s`: the largest active
    /// straggler slowdown among chips still alive (a dead chip cannot
    /// pace the grid), or `1.0` when none is active. The multiply by
    /// `1.0` on the fault-free path is exact in IEEE arithmetic, so an
    /// empty plan changes no timestamp bit.
    pub fn slowdown_at<F: Fn(usize) -> bool>(&self, t_s: f64, is_alive: F) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| is_alive(s.chip))
            .filter(|s| micros_to_s(s.from_micros) <= t_s && t_s < micros_to_s(s.until_micros))
            .map(|s| s.slowdown)
            .fold(1.0, f64::max)
    }

    /// Link retransmissions per collective at virtual time `t_s` (the
    /// largest active window), or 0 when the fabric is clean.
    pub fn link_retries_at(&self, t_s: f64) -> u32 {
        self.link_faults
            .iter()
            .filter(|l| micros_to_s(l.from_micros) <= t_s && t_s < micros_to_s(l.until_micros))
            .map(|l| l.retries)
            .fold(0, u32::max)
    }

    /// The deadline of submission `submission`, if any.
    pub fn deadline_of(&self, submission: usize) -> Option<u64> {
        self.deadlines
            .iter()
            .find(|d| d.submission == submission)
            .map(|d| d.at_micros)
    }
}

/// Virtual-time µs → seconds, for fault-window comparisons.
fn micros_to_s(micros: u64) -> f64 {
    // cast: fault windows are bounded by the plan horizon (< 2^53 µs), value-preserving in f64
    micros as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChaosSpec {
        ChaosSpec {
            horizon_micros: 2_000_000,
            submissions: 12,
            chip_failures: 2,
            stragglers: 2,
            link_faults: 1,
            deadlines: 3,
            min_deadline_micros: 50_000,
        }
    }

    #[test]
    fn seeded_plans_are_reproducible_and_valid() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded(seed, &spec());
            let b = FaultPlan::seeded(seed, &spec());
            assert_eq!(a, b, "seed {seed} not reproducible");
            a.validate().expect("seeded plan validates");
            assert_eq!(a.chip_failures.len(), 2);
            assert_eq!(a.deadlines.len(), 3);
        }
    }

    #[test]
    fn seeded_chip_kills_leave_a_survivor() {
        let mut greedy = spec();
        greedy.chip_failures = CHIPS + 5;
        let plan = FaultPlan::seeded(7, &greedy);
        assert_eq!(plan.chip_failures.len(), CHIPS - 1);
        plan.validate().expect("clamped kills validate");
    }

    #[test]
    fn validation_rejects_each_malformation() {
        let kill = |chip| ChipFailure { at_micros: 0, chip };
        let mut plan = FaultPlan::none();
        plan.chip_failures = vec![kill(CHIPS)];
        assert_eq!(
            plan.validate(),
            Err(FaultError::ChipOutOfRange { chip: CHIPS })
        );
        plan.chip_failures = vec![kill(3), kill(3)];
        assert_eq!(
            plan.validate(),
            Err(FaultError::DuplicateChipFailure { chip: 3 })
        );
        plan.chip_failures = (0..CHIPS).map(kill).collect();
        assert_eq!(plan.validate(), Err(FaultError::NoSurvivors));

        let mut plan = FaultPlan::none();
        plan.stragglers = vec![Straggler {
            chip: 0,
            from_micros: 10,
            until_micros: 10,
            slowdown: 2.0,
        }];
        assert_eq!(
            plan.validate(),
            Err(FaultError::EmptyWindow {
                from_micros: 10,
                until_micros: 10,
            })
        );
        plan.stragglers = vec![Straggler {
            chip: 0,
            from_micros: 0,
            until_micros: 10,
            slowdown: 0.5,
        }];
        assert_eq!(plan.validate(), Err(FaultError::SlowdownOutOfRange));

        let mut plan = FaultPlan::none();
        plan.link_faults = vec![LinkFault {
            from_micros: 0,
            until_micros: 10,
            retries: MAX_LINK_RETRIES + 1,
        }];
        assert_eq!(
            plan.validate(),
            Err(FaultError::RetriesOutOfRange {
                retries: MAX_LINK_RETRIES + 1,
            })
        );

        let mut plan = FaultPlan::none();
        plan.deadlines = vec![
            Deadline {
                submission: 4,
                at_micros: 100,
            },
            Deadline {
                submission: 4,
                at_micros: 200,
            },
        ];
        assert_eq!(
            plan.validate(),
            Err(FaultError::DuplicateDeadline { submission: 4 })
        );
    }

    #[test]
    fn slowdown_window_edges_are_half_open() {
        let mut plan = FaultPlan::none();
        plan.stragglers = vec![Straggler {
            chip: 5,
            from_micros: 1_000_000,
            until_micros: 2_000_000,
            slowdown: 4.0,
        }];
        let alive = |_| true;
        assert_eq!(plan.slowdown_at(0.999_999, alive), 1.0);
        assert_eq!(plan.slowdown_at(1.0, alive), 4.0);
        assert_eq!(plan.slowdown_at(1.999_999, alive), 4.0);
        assert_eq!(plan.slowdown_at(2.0, alive), 1.0);
        // A dead straggler cannot pace the grid.
        assert_eq!(plan.slowdown_at(1.5, |chip| chip != 5), 1.0);
    }

    #[test]
    fn link_retries_take_the_max_active_window() {
        let mut plan = FaultPlan::none();
        plan.link_faults = vec![
            LinkFault {
                from_micros: 0,
                until_micros: 3_000_000,
                retries: 1,
            },
            LinkFault {
                from_micros: 1_000_000,
                until_micros: 2_000_000,
                retries: 3,
            },
        ];
        assert_eq!(plan.link_retries_at(0.5), 1);
        assert_eq!(plan.link_retries_at(1.5), 3);
        assert_eq!(plan.link_retries_at(2.5), 1);
        assert_eq!(plan.link_retries_at(3.5), 0);
    }

    #[test]
    fn empty_plan_queries_are_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        plan.validate().expect("empty plan validates");
        assert_eq!(plan.slowdown_at(1.0, |_| true), 1.0);
        assert_eq!(plan.link_retries_at(1.0), 0);
        assert_eq!(plan.deadline_of(0), None);
        assert!(plan.failures_sorted().is_empty());
    }

    #[test]
    fn failures_sort_stably_by_time() {
        let mut plan = FaultPlan::none();
        plan.chip_failures = vec![
            ChipFailure {
                at_micros: 500,
                chip: 9,
            },
            ChipFailure {
                at_micros: 100,
                chip: 2,
            },
            ChipFailure {
                at_micros: 500,
                chip: 1,
            },
        ];
        let sorted = plan.failures_sorted();
        let chips: Vec<usize> = sorted.iter().map(|f| f.chip).collect();
        assert_eq!(chips, vec![2, 9, 1]);
    }
}
