//! Online serving frontend: admission, incremental scheduling, streaming.
//!
//! [`OnlineServer`] is the event-driven counterpart of the offline
//! [`BatchedDataflowExecutor::execute_plan`] replay: requests arrive
//! dynamically (a bounded admission queue applies backpressure as typed
//! [`ServeError::QueueFull`] rejections), mixed prefill/decode rounds are
//! scheduled *incrementally* with exactly the policy of
//! [`BatchScheduler::plan`], tokens stream out per sequence as
//! [`ServeEvent`]s, and sequences can be cancelled mid-flight (their KV
//! slot is freed exactly once).
//!
//! The loop is a deterministic discrete-event simulation: time is a
//! virtual clock advanced by [`BatchScheduler::round_s`] per pipeline
//! round (idle gaps jump straight to the next arrival), and no wall-clock
//! or ambient RNG exists anywhere on the path — the `hnlpu-analyze`
//! determinism gate audits this module. Because the per-round stepping is
//! the *same* [`crate::batch`] machinery the offline replay uses, and the
//! incremental scheduler reproduces the offline scheduler's decisions, an
//! online run of any workload yields bit-identical token streams — and
//! bit-identical [`RoundPlan`]s — to planning the whole trace up front
//! (`tests/tests/online_differential.rs` proves this by property testing).
//!
//! Per-request time-to-first-token (TTFT) and inter-token gaps are
//! recorded in virtual time and summarized as a p50/p99 [`SloReport`] —
//! the serving-side metrics the RPU memory-wall analysis motivates.
//!
//! Sequence lifecycle: `Queued → Prefilling → Decoding → Finished`, with
//! `Cancelled` reachable from every live state and `QueueFull` rejections
//! never entering the lifecycle at all.
//!
//! # Fault tolerance
//!
//! A validated [`FaultPlan`] (see [`crate::fault`]) injects chip
//! failures, straggler slowdowns, link faults, and per-request deadlines
//! onto the same virtual clock, so every chaos run replays exactly.
//! Hardwired chips cannot be re-flashed: a failure is survived, not
//! repaired. Because the KV cache shards every resident sequence across
//! all 16 chips (`position % 4` per column), a chip death evicts every
//! resident sequence; capacity shrinks to the survivor share
//! ([`DegradedLayout::effective_slots`]), evicted sequences park their
//! slots and re-admit with bounded exponential backoff (re-prefilling
//! `prompt ++ emitted` token-exactly — see
//! [`BatchedDataflowExecutor::recover_slot`]), queued requests are shed
//! before admitted ones when the backlog overflows, and expired deadlines
//! retire sequences with typed [`ServeError::Deadline`] outcomes.
//! Stragglers and link faults stretch round time
//! ([`hnlpu_sim::fabric::retry_round_factor`]); latencies sampled in
//! degraded rounds land in separate [`SloReport`] percentile rows. An
//! empty plan leaves every arithmetic operation of the loop bit-identical
//! to a fault-free server — the differential harnesses still hold.
//!
//! Extended lifecycle: `Recovering` (evicted, awaiting re-admission) is
//! live; `DeadlineMissed`, `Shed`, and `ChipLost` are terminal.

use crate::batch::{Action, BatchedDataflowExecutor, RecoveryStats, SeqSlot, SequenceRequest};
use crate::dataflow::{CommCounters, DegradedLayout, GridHealth};
use crate::fault::{ChipFailure, FaultError, FaultPlan};
use crate::kv_cache::{PrefixCache, PrefixStats};
use hnlpu_sim::fabric::retry_round_factor;
use hnlpu_sim::scheduler::{BatchScheduler, RoundPlan};
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt;

/// Handle for a submitted sequence: the `n`th accepted
/// [`OnlineServer::submit`] call returns `SeqId(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId(pub usize);

impl fmt::Display for SeqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq#{}", self.0)
    }
}

/// Why the serving frontend refused an operation. All admission-path
/// failures are typed — a malformed or over-limit request must never
/// abort a process serving hundreds of co-resident sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded admission queue is full (backpressure). Nothing was
    /// enqueued; the client may retry later.
    QueueFull {
        /// Admission-queue capacity.
        capacity: usize,
    },
    /// The request's prompt was empty.
    EmptyPrompt,
    /// Submissions must carry non-decreasing arrival times (the arrival
    /// process is a totally ordered virtual-time trace).
    ArrivalOutOfOrder {
        /// Latest previously submitted arrival, microseconds.
        last_micros: u64,
        /// Offending earlier arrival, microseconds.
        arrival_micros: u64,
    },
    /// The id does not name a submitted sequence.
    UnknownSequence {
        /// The unknown handle.
        id: SeqId,
    },
    /// Cancelling a sequence that already finished or was cancelled.
    AlreadyRetired {
        /// The retired handle.
        id: SeqId,
    },
    /// The scheduler plans more concurrent sequences than the engine's
    /// KV pool holds.
    SlotsExceedCapacity {
        /// Slots the scheduler schedules.
        scheduled: usize,
        /// Slots the engine pools.
        capacity: usize,
    },
    /// The per-request deadline passed before completion; the sequence
    /// was retired and any KV slot freed exactly once.
    Deadline {
        /// The retired handle.
        id: SeqId,
        /// The deadline that expired, microseconds of virtual time.
        deadline_micros: u64,
    },
    /// A chip failure evicted the sequence and recovery retries were
    /// exhausted before a slot freed up on the surviving grid.
    ChipLost {
        /// The abandoned handle.
        id: SeqId,
        /// The failed chip that evicted it.
        chip: usize,
    },
    /// The sequence was shed from the admission queue under fault
    /// pressure: queued requests are sacrificed before admitted ones.
    Shed {
        /// The shed handle.
        id: SeqId,
    },
    /// The fault plan handed to [`OnlineServer::with_faults`] failed
    /// validation.
    InvalidFaultPlan {
        /// The underlying validation failure.
        error: FaultError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} waiting); retry later")
            }
            ServeError::EmptyPrompt => {
                write!(f, "request prompt must contain at least one token")
            }
            ServeError::ArrivalOutOfOrder {
                last_micros,
                arrival_micros,
            } => write!(
                f,
                "arrival {arrival_micros} µs precedes an earlier submission at {last_micros} µs"
            ),
            ServeError::UnknownSequence { id } => {
                write!(f, "{id} was never submitted")
            }
            ServeError::AlreadyRetired { id } => {
                write!(f, "{id} already finished or was cancelled")
            }
            ServeError::SlotsExceedCapacity {
                scheduled,
                capacity,
            } => write!(
                f,
                "scheduler schedules {scheduled} slots but the engine pools {capacity}"
            ),
            ServeError::Deadline {
                id,
                deadline_micros,
            } => write!(f, "{id} missed its deadline at {deadline_micros} µs"),
            ServeError::ChipLost { id, chip } => {
                write!(f, "{id} lost to chip {chip} failure; recovery exhausted")
            }
            ServeError::Shed { id } => {
                write!(f, "{id} shed from the queue under fault pressure")
            }
            ServeError::InvalidFaultPlan { error } => {
                write!(f, "invalid fault plan: {error}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Lifecycle state of a submitted sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SeqState {
    /// Waiting in the bounded admission queue.
    Queued,
    /// Resident in a KV slot, consuming prompt tokens.
    Prefilling,
    /// Resident in a KV slot, prompt consumed, streaming output tokens.
    Decoding,
    /// Every requested token was streamed; the KV slot is freed.
    Finished,
    /// Cancelled before completion; any KV slot was freed.
    Cancelled,
    /// Evicted by a chip failure; the KV slot was freed and the sequence
    /// awaits re-admission onto the surviving grid (still live).
    Recovering,
    /// Terminal: the per-request deadline passed before completion.
    DeadlineMissed,
    /// Terminal: shed from the admission queue under fault pressure.
    Shed,
    /// Terminal: chip-failure recovery retries were exhausted.
    ChipLost,
}

/// One observable serving event, stamped with virtual time. Drained in
/// emission order via [`OnlineServer::poll_events`] — this is the
/// streaming interface: a `Token` event is visible as soon as the round
/// that produced it completes, long before the sequence finishes.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// The sequence left the admission queue and took a KV slot.
    Admitted {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// One streamed output token.
    Token {
        /// Sequence handle.
        id: SeqId,
        /// Position in the sequence's output stream (0-based).
        index: usize,
        /// The token id.
        token: u32,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// All requested tokens were streamed and the KV slot was freed.
    Finished {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// The sequence was cancelled; a resident sequence's KV slot was
    /// freed at this instant.
    Cancelled {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// An injected chip failure took effect; every resident sequence was
    /// evicted and slot capacity shrank to the survivor share.
    ChipFailed {
        /// The chip that died (row-major in the 4×4 grid).
        chip: usize,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// A resident sequence lost its KV to a chip failure; its slot was
    /// freed and it entered recovery.
    Evicted {
        /// Sequence handle.
        id: SeqId,
        /// The failed chip.
        chip: usize,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// An evicted sequence re-admitted: its retained prompt + emitted
    /// tokens re-prefill into a fresh slot, resuming token-exact.
    Recovered {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// The sequence's deadline expired; it was retired and any slot
    /// freed.
    DeadlineMissed {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// The sequence was shed from the queue under fault pressure.
    Shed {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// Recovery retries were exhausted; the sequence was abandoned.
    ChipLost {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
}

/// Per-request bookkeeping.
#[derive(Debug)]
struct SeqRecord {
    request: SequenceRequest,
    state: SeqState,
    /// Pool index while resident.
    slot: Option<usize>,
    arrival_s: f64,
    admitted_s: Option<f64>,
    first_token_s: Option<f64>,
    prev_token_s: Option<f64>,
    finish_s: Option<f64>,
    /// Tokens streamed so far (grown one per decode round).
    tokens: Vec<u32>,
    comm: CommCounters,
    /// Times this sequence's KV slot was released — exactly once per
    /// admission (`slot_frees == admissions` always holds at the end), 0
    /// for queue-only lifetimes.
    slot_frees: u32,
    /// Times this sequence took a KV slot (initial admission plus each
    /// post-eviction recovery).
    admissions: u32,
    /// Completion deadline in virtual microseconds, from the fault plan.
    deadline: Option<u64>,
    /// Recovery re-admission attempts since the last eviction.
    retries: u32,
    /// Earliest virtual time the next recovery attempt may run.
    retry_at_s: f64,
    /// True once a chip failure ever evicted this sequence: its latency
    /// samples land in the degraded SLO rows from then on.
    recovered: bool,
    /// The chip whose failure last evicted this sequence.
    evicted_by: Option<usize>,
    /// The evicted slot, parked between eviction and re-admission (keeps
    /// emitted tokens, sampler state, and warm buffers).
    parked: Option<SeqSlot>,
    /// The typed fault outcome for retired-by-fault sequences.
    error: Option<ServeError>,
}

/// Per-sequence outcome in a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct SequenceOutcome {
    /// Sequence handle (index in submission order).
    pub id: SeqId,
    /// Final lifecycle state.
    pub state: SeqState,
    /// Arrival time, virtual seconds.
    pub arrival_s: f64,
    /// When the sequence took a KV slot (None if never admitted).
    pub admitted_s: Option<f64>,
    /// Time to first token: first decode emission minus arrival.
    pub ttft_s: Option<f64>,
    /// When the sequence finished or was cancelled.
    pub finish_s: Option<f64>,
    /// The streamed token ids, in emission order.
    pub tokens: Vec<u32>,
    /// Collective-communication counters accumulated while resident.
    pub comm: CommCounters,
    /// KV-slot releases (exactly once per admission; see tests).
    pub slot_frees: u32,
    /// Times the sequence took a KV slot (1 + recoveries; equals
    /// `slot_frees` for every retired sequence).
    pub admissions: u32,
    /// Typed fault outcome when the sequence was retired by a deadline,
    /// shedding, or an unrecoverable chip loss.
    pub error: Option<ServeError>,
}

/// Aggregate service-level-objective statistics in virtual time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    /// Accepted submissions.
    pub submitted: usize,
    /// Sequences that streamed every requested token.
    pub completed: usize,
    /// Sequences cancelled before completion.
    pub cancelled: usize,
    /// Submissions rejected by queue backpressure.
    pub rejected: usize,
    /// Queued sequences shed under fault pressure.
    pub shed: usize,
    /// Sequences retired by an expired deadline.
    pub deadline_missed: usize,
    /// Sequences abandoned after exhausting chip-failure recovery.
    pub chip_lost: usize,
    /// Injected chip failures that took effect.
    pub chip_failures: usize,
    /// Eviction/re-prefill accounting for chip-failure recovery.
    pub recovery: RecoveryStats,
    /// Rounds run on a degraded grid or under a straggler/link stretch.
    pub degraded_rounds: u64,
    /// Rounds stretched by link-fault retransmissions.
    pub link_retry_rounds: u64,
    /// Pipeline rounds executed.
    pub rounds: u64,
    /// Prompt tokens prefilled.
    pub prefill_tokens: u64,
    /// Output tokens decoded.
    pub decoded_tokens: u64,
    /// Most sequences resident at once (KV slots in use).
    pub peak_resident: usize,
    /// Largest pooled KV footprint at fp16 storage, bytes (logical:
    /// shared pages counted once per referencing sequence).
    pub peak_kv_bytes_fp16: u64,
    /// Largest physically private KV footprint, bytes. The gap to
    /// `peak_kv_bytes_fp16` is capacity recovered by prefix sharing.
    pub peak_kv_owned_bytes_fp16: u64,
    /// Prefix-reuse counters (all zero for a dense engine).
    pub prefix: PrefixStats,
    /// Final virtual time, seconds.
    pub makespan_s: f64,
    /// Decode throughput in virtual time, tokens/s.
    pub decode_tokens_per_s_virtual: f64,
    /// Median time-to-first-token, seconds (healthy-mode samples only;
    /// degraded-mode samples get their own rows below).
    pub ttft_p50_s: f64,
    /// 99th-percentile time-to-first-token, seconds.
    pub ttft_p99_s: f64,
    /// Mean time-to-first-token, seconds.
    pub ttft_mean_s: f64,
    /// Median inter-token gap (time per output token), seconds.
    pub tpot_p50_s: f64,
    /// 99th-percentile inter-token gap, seconds.
    pub tpot_p99_s: f64,
    /// Mean inter-token gap, seconds.
    pub tpot_mean_s: f64,
    /// Median TTFT over degraded-mode samples (degraded round, or the
    /// sequence was ever evicted). `0.0` when no degraded sample exists.
    pub ttft_degraded_p50_s: f64,
    /// 99th-percentile degraded-mode TTFT, seconds.
    pub ttft_degraded_p99_s: f64,
    /// Median degraded-mode inter-token gap, seconds.
    pub tpot_degraded_p50_s: f64,
    /// 99th-percentile degraded-mode inter-token gap, seconds.
    pub tpot_degraded_p99_s: f64,
}

/// Full result of an online run: SLO summary, per-sequence outcomes, and
/// the recorded round log (for differential comparison against
/// [`BatchScheduler::plan`]).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Aggregate latency/throughput statistics.
    pub slo: SloReport,
    /// One outcome per accepted submission, indexed by [`SeqId`].
    pub outcomes: Vec<SequenceOutcome>,
    /// The per-round slot assignments the online loop produced.
    pub plans: Vec<RoundPlan>,
}

/// Result of driving a whole timed trace through [`OnlineServer::run_trace`].
#[derive(Debug)]
pub struct TraceOutcome {
    /// Per-submission result, in input order: the assigned [`SeqId`] or
    /// the typed rejection.
    pub submissions: Vec<Result<SeqId, ServeError>>,
    /// The final report after the server drained.
    pub report: ServeReport,
}

/// The event-driven online serving engine.
#[derive(Debug)]
pub struct OnlineServer {
    engine: BatchedDataflowExecutor,
    /// Virtual seconds per pipeline round (from [`BatchScheduler::round_s`]).
    round_s: f64,
    /// Concurrent-sequence capacity (the machine's pipeline slots).
    slots: usize,
    /// Bounded admission-queue capacity.
    queue_capacity: usize,
    /// The virtual clock, seconds.
    now_s: f64,
    last_arrival_micros: u64,
    /// Admission queue, FCFS.
    waiting: VecDeque<SeqId>,
    /// Resident sequences in admission order (the scheduler's iteration
    /// order; KV storage lives in `pool`).
    resident: Vec<SeqId>,
    /// Slot-indexed KV/scratch storage; `None` entries are free slots.
    pool: Vec<Option<SeqSlot>>,
    seqs: Vec<SeqRecord>,
    events: VecDeque<ServeEvent>,
    plans: Vec<RoundPlan>,
    rounds: u64,
    prefill_tokens: u64,
    decoded_tokens: u64,
    peak_resident: usize,
    peak_kv_bytes: u64,
    rejected: usize,
    /// Healthy-mode latency samples.
    ttfts: Vec<f64>,
    gaps: Vec<f64>,
    /// Degraded-mode latency samples (degraded round or evicted-ever).
    ttfts_degraded: Vec<f64>,
    gaps_degraded: Vec<f64>,
    /// The injected fault schedule (validated at construction).
    faults: FaultPlan,
    /// Chip failures sorted by time; `next_failure` indexes the first
    /// not-yet-applied entry.
    pending_failures: Vec<ChipFailure>,
    next_failure: usize,
    /// Survivor set of the 4×4 grid.
    health: GridHealth,
    /// Row-partition hosting for the current survivor set.
    layout: DegradedLayout,
    /// Slot capacity under the current survivor set.
    effective_slots: usize,
    /// Evicted sequences awaiting re-admission, FCFS.
    recovering: VecDeque<SeqId>,
    recovery: RecoveryStats,
    shed: usize,
    chip_failures_applied: usize,
    degraded_rounds: u64,
    link_retry_rounds: u64,
    /// Submission attempts (accepted or not) — the index the fault
    /// plan's deadlines key on, so a trace's deadline targets stay stable
    /// regardless of rejections.
    submit_attempts: usize,
    /// Shared prefix tree + page pool, when the engine was built with
    /// [`BatchedDataflowExecutor::with_prefix_cache`]. Unlike the offline
    /// path (which rebuilds its tree per run), this cache persists across
    /// the server's whole lifetime — and is flushed whole on chip death,
    /// since every committed page stripes across all 16 chips.
    prefix: Option<PrefixCache>,
    /// Largest physically private KV footprint observed, bytes.
    peak_kv_owned_bytes: u64,
}

impl OnlineServer {
    /// A server running `engine` with the slot count and round timing of
    /// `scheduler`, and an admission queue bounded at `queue_capacity`
    /// waiting requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SlotsExceedCapacity`] when the scheduler
    /// plans more concurrent sequences than the engine pools.
    pub fn new(
        engine: BatchedDataflowExecutor,
        scheduler: &BatchScheduler,
        queue_capacity: usize,
    ) -> Result<Self, ServeError> {
        Self::with_faults(engine, scheduler, queue_capacity, FaultPlan::none())
    }

    /// As [`new`](Self::new), with a fault schedule to inject on the
    /// virtual clock. An empty plan yields a server whose every
    /// arithmetic operation is bit-identical to [`new`](Self::new)'s.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidFaultPlan`] for a malformed plan (out-of-range
    /// chip, no survivors, empty windows, duplicate deadlines, …), or
    /// [`ServeError::SlotsExceedCapacity`] as for [`new`](Self::new).
    pub fn with_faults(
        engine: BatchedDataflowExecutor,
        scheduler: &BatchScheduler,
        queue_capacity: usize,
        faults: FaultPlan,
    ) -> Result<Self, ServeError> {
        faults
            .validate()
            .map_err(|error| ServeError::InvalidFaultPlan { error })?;
        let slots = scheduler.slots();
        if slots > engine.max_slots() {
            return Err(ServeError::SlotsExceedCapacity {
                scheduled: slots,
                capacity: engine.max_slots(),
            });
        }
        let pending_failures = faults.failures_sorted();
        let health = GridHealth::full();
        // A full grid always has survivors.
        let layout =
            DegradedLayout::for_health(&health).map_err(|_| ServeError::InvalidFaultPlan {
                error: FaultError::NoSurvivors,
            })?;
        let prefix = engine.prefix_config().map(PrefixCache::new);
        Ok(OnlineServer {
            round_s: scheduler.round_s(),
            slots,
            queue_capacity,
            engine,
            prefix,
            peak_kv_owned_bytes: 0,
            now_s: 0.0,
            last_arrival_micros: 0,
            waiting: VecDeque::new(),
            resident: Vec::new(),
            pool: Vec::new(),
            seqs: Vec::new(),
            events: VecDeque::new(),
            plans: Vec::new(),
            rounds: 0,
            prefill_tokens: 0,
            decoded_tokens: 0,
            peak_resident: 0,
            peak_kv_bytes: 0,
            rejected: 0,
            ttfts: Vec::new(),
            gaps: Vec::new(),
            ttfts_degraded: Vec::new(),
            gaps_degraded: Vec::new(),
            faults,
            pending_failures,
            next_failure: 0,
            health,
            layout,
            effective_slots: slots,
            recovering: VecDeque::new(),
            recovery: RecoveryStats::default(),
            shed: 0,
            chip_failures_applied: 0,
            degraded_rounds: 0,
            link_retry_rounds: 0,
            submit_attempts: 0,
        })
    }

    /// Recovery re-admission attempts before an evicted sequence is
    /// abandoned as [`SeqState::ChipLost`]. Backoff is exponential in
    /// round time, so the last attempt waits `2^6 = 64` rounds.
    pub const MAX_RECOVERY_RETRIES: u32 = 6;

    /// The survivor set of the 4×4 chip grid.
    pub fn grid_health(&self) -> GridHealth {
        self.health
    }

    /// The row-partition hosting for the current survivor set.
    pub fn degraded_layout(&self) -> &DegradedLayout {
        &self.layout
    }

    /// Concurrent-sequence capacity under the current survivor set.
    pub fn effective_slots(&self) -> usize {
        self.effective_slots
    }

    /// The injected fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Current virtual time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Requests waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Sequences currently holding a KV slot.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }

    /// Evicted sequences awaiting recovery re-admission.
    pub fn recovering(&self) -> usize {
        self.recovering.len()
    }

    /// Lifecycle state of a submitted sequence.
    pub fn state_of(&self, id: SeqId) -> Option<SeqState> {
        self.seqs.get(id.0).map(|r| r.state)
    }

    /// Tokens streamed so far for a sequence.
    pub fn tokens_of(&self, id: SeqId) -> Option<&[u32]> {
        self.seqs.get(id.0).map(|r| r.tokens.as_slice())
    }

    /// The wrapped batched engine.
    pub fn engine(&self) -> &BatchedDataflowExecutor {
        &self.engine
    }

    /// The server's shared prefix cache, when the engine enables one —
    /// exposed so harnesses can check refcount-ledger invariants (every
    /// page freed exactly once) after a run drains.
    pub fn prefix_cache(&self) -> Option<&PrefixCache> {
        self.prefix.as_ref()
    }

    /// Submit a request to the admission queue. The request's
    /// `arrival_s_micros` stamps its place in the virtual arrival
    /// process; submissions must be fed in non-decreasing arrival order
    /// (as [`run_trace`](Self::run_trace) does).
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyPrompt`] for an empty prompt,
    /// [`ServeError::ArrivalOutOfOrder`] for a time-travelling arrival,
    /// and [`ServeError::QueueFull`] when backpressure rejects the
    /// request (nothing is enqueued; the rejection is counted).
    pub fn submit(&mut self, request: SequenceRequest) -> Result<SeqId, ServeError> {
        // Deadlines key on the submission *attempt* index (counted even
        // for rejected calls), so a fault plan's deadline targets line up
        // with trace positions regardless of backpressure.
        let attempt = self.submit_attempts;
        self.submit_attempts += 1;
        if request.prompt.is_empty() {
            return Err(ServeError::EmptyPrompt);
        }
        if request.arrival_s_micros < self.last_arrival_micros {
            return Err(ServeError::ArrivalOutOfOrder {
                last_micros: self.last_arrival_micros,
                arrival_micros: request.arrival_s_micros,
            });
        }
        if self.waiting.len() >= self.queue_capacity {
            self.rejected += 1;
            return Err(ServeError::QueueFull {
                capacity: self.queue_capacity,
            });
        }
        self.last_arrival_micros = request.arrival_s_micros;
        let id = SeqId(self.seqs.len());
        self.seqs.push(SeqRecord {
            arrival_s: micros_to_s(request.arrival_s_micros),
            request,
            state: SeqState::Queued,
            slot: None,
            admitted_s: None,
            first_token_s: None,
            prev_token_s: None,
            finish_s: None,
            tokens: Vec::new(),
            comm: CommCounters::default(),
            slot_frees: 0,
            admissions: 0,
            deadline: self.faults.deadline_of(attempt),
            retries: 0,
            retry_at_s: 0.0,
            recovered: false,
            evicted_by: None,
            parked: None,
            error: None,
        });
        self.waiting.push_back(id);
        Ok(id)
    }

    /// Cancel a sequence. A queued sequence leaves the admission queue; a
    /// resident one releases its KV slot immediately (exactly once). In
    /// either case a [`ServeEvent::Cancelled`] is emitted and no further
    /// tokens will stream.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSequence`] for a handle never issued,
    /// [`ServeError::AlreadyRetired`] when the sequence already finished
    /// or was cancelled.
    pub fn cancel(&mut self, id: SeqId) -> Result<(), ServeError> {
        let Some(rec) = self.seqs.get_mut(id.0) else {
            return Err(ServeError::UnknownSequence { id });
        };
        match rec.state {
            SeqState::Queued => {
                rec.state = SeqState::Cancelled;
                rec.finish_s = Some(self.now_s);
                self.waiting.retain(|&w| w != id);
            }
            SeqState::Prefilling | SeqState::Decoding => {
                rec.state = SeqState::Cancelled;
                rec.finish_s = Some(self.now_s);
                if let Some(idx) = rec.slot.take() {
                    if let Some(mut gone) = self.pool.get_mut(idx).and_then(Option::take) {
                        if let Some(cache) = self.prefix.as_mut() {
                            cache.release_grant(&mut gone.grant);
                        }
                        rec.comm += gone.state.comm;
                        rec.slot_frees += 1;
                    }
                }
                self.resident.retain(|&r| r != id);
            }
            SeqState::Recovering => {
                // The slot was already freed at eviction; just drop the
                // parked carcass and leave the recovery queue.
                rec.state = SeqState::Cancelled;
                rec.finish_s = Some(self.now_s);
                rec.parked = None;
                self.recovering.retain(|&r| r != id);
            }
            SeqState::Finished
            | SeqState::Cancelled
            | SeqState::DeadlineMissed
            | SeqState::Shed
            | SeqState::ChipLost => {
                return Err(ServeError::AlreadyRetired { id });
            }
        }
        self.events.push_back(ServeEvent::Cancelled {
            id,
            t_s: self.now_s,
        });
        Ok(())
    }

    /// Drain pending events (admissions, streamed tokens, completions,
    /// cancellations) in emission order.
    pub fn poll_events(&mut self) -> Vec<ServeEvent> {
        self.events.drain(..).collect()
    }

    /// Run rounds until no sequence is queued, recovering, or resident.
    /// Idle gaps jump the virtual clock to the next wake event (queued
    /// arrival, recovery retry, pending chip failure, or live deadline).
    pub fn run_until_idle(&mut self) {
        loop {
            self.apply_due_faults();
            self.enforce_deadlines();
            self.admit_waiting();
            if !self.resident.is_empty() {
                self.round();
                continue;
            }
            let Some(wake) = self.next_wake() else { return };
            self.now_s = wake;
        }
    }

    /// Advance the virtual clock to `t_s`: run rounds while work is
    /// resident; once idle, hop wake event by wake event up to `t_s`.
    fn advance_to(&mut self, t_s: f64) {
        loop {
            self.apply_due_faults();
            self.enforce_deadlines();
            self.admit_waiting();
            if !self.resident.is_empty() {
                if self.now_s >= t_s {
                    return;
                }
                self.round();
                continue;
            }
            match self.next_wake() {
                Some(wake) if wake <= t_s => self.now_s = wake,
                _ => {
                    self.now_s = self.now_s.max(t_s);
                    return;
                }
            }
        }
    }

    /// The next instant strictly after `now_s` at which an idle server
    /// must act: the front queued arrival, a recovery retry, a pending
    /// chip failure, or the deadline of a non-resident live sequence.
    /// `None` means the server is fully drained (fault-free servers
    /// reduce to the front-arrival rule the differential harness pins).
    fn next_wake(&self) -> Option<f64> {
        let mut candidates: Vec<f64> = Vec::new();
        if let Some(r) = self.waiting.front().and_then(|id| self.seqs.get(id.0)) {
            candidates.push(r.arrival_s);
        }
        for r in self.recovering.iter().filter_map(|id| self.seqs.get(id.0)) {
            if r.state == SeqState::Recovering {
                candidates.push(r.retry_at_s);
            }
        }
        if let Some(f) = self.pending_failures.get(self.next_failure) {
            candidates.push(micros_to_s(f.at_micros));
        }
        for r in &self.seqs {
            if matches!(r.state, SeqState::Queued | SeqState::Recovering) {
                if let Some(d) = r.deadline {
                    candidates.push(micros_to_s(d));
                }
            }
        }
        candidates
            .into_iter()
            .filter(|&t| t > self.now_s)
            .min_by(f64::total_cmp)
    }

    /// Drive a complete timed trace: each request is submitted when the
    /// virtual clock reaches its `arrival_s_micros` (requests must be
    /// sorted by arrival; out-of-order entries surface as typed errors in
    /// the result), `cancels` are `(at_micros, request index)` pairs
    /// applied at their times, and the server then runs until drained.
    ///
    /// Submissions at the same instant as a cancellation are delivered
    /// first. Cancels aimed at rejected or not-yet-submitted requests are
    /// ignored; cancelling an already-finished sequence is a no-op.
    pub fn run_trace(
        &mut self,
        requests: &[SequenceRequest],
        cancels: &[(u64, usize)],
    ) -> TraceOutcome {
        let mut cancels: Vec<(u64, usize)> = cancels.to_vec();
        cancels.sort_by_key(|&(t, _)| t);
        let mut submissions: Vec<Result<SeqId, ServeError>> = Vec::with_capacity(requests.len());
        let mut ids: Vec<Option<SeqId>> = vec![None; requests.len()];
        let mut si = 0usize;
        let mut ci = 0usize;
        loop {
            let next_sub = requests.get(si).map(|r| r.arrival_s_micros);
            let next_cancel = cancels.get(ci).map(|&(t, _)| t);
            let (t_micros, is_submit) = match (next_sub, next_cancel) {
                (Some(s), Some(c)) if s <= c => (s, true),
                (Some(s), None) => (s, true),
                (None, Some(c)) | (Some(_), Some(c)) => (c, false),
                (None, None) => break,
            };
            self.advance_to(micros_to_s(t_micros));
            if is_submit {
                if let Some(req) = requests.get(si) {
                    let res = self.submit(req.clone());
                    if let (Ok(id), Some(entry)) = (&res, ids.get_mut(si)) {
                        *entry = Some(*id);
                    }
                    submissions.push(res);
                }
                si += 1;
            } else {
                if let Some(&(_, target)) = cancels.get(ci) {
                    if let Some(&Some(id)) = ids.get(target) {
                        // Already-retired sequences make this a no-op.
                        let _ = self.cancel(id);
                    }
                }
                ci += 1;
            }
        }
        self.run_until_idle();
        TraceOutcome {
            submissions,
            report: self.report(),
        }
    }

    /// Apply every not-yet-applied chip failure whose time has come: kill
    /// the chip, shrink capacity to the survivor share, evict every
    /// resident sequence (each holds KV shards on all 16 chips, so none
    /// survives a chip death), and shed queue overflow.
    fn apply_due_faults(&mut self) {
        while let Some(&f) = self.pending_failures.get(self.next_failure) {
            if micros_to_s(f.at_micros) > self.now_s {
                break;
            }
            self.next_failure += 1;
            if !self.health.fail(f.chip) {
                // Already dead (validation forbids duplicates, but a
                // stale plan must not corrupt accounting).
                continue;
            }
            self.chip_failures_applied += 1;
            if let Ok(layout) = DegradedLayout::for_health(&self.health) {
                self.effective_slots = layout.effective_slots(self.slots);
                self.layout = layout;
            }
            self.events.push_back(ServeEvent::ChipFailed {
                chip: f.chip,
                t_s: self.now_s,
            });
            self.evict_all_resident(f.chip);
            // Every committed page stripes one shard per chip, so the
            // dead chip invalidates the entire tree: drop each tree
            // reference exactly once. Residents released their grants in
            // the eviction above, so this frees every page.
            if let Some(cache) = self.prefix.as_mut() {
                cache.flush();
            }
            self.shed_queue_overflow();
        }
    }

    /// Evict every resident sequence after `chip` died: free its slot
    /// (exactly once), harvest communication counters, park the carcass
    /// (emitted tokens + sampler state survive; the KV context is rebuilt
    /// at re-admission), and enqueue it for recovery.
    fn evict_all_resident(&mut self, chip: usize) {
        let victims = std::mem::take(&mut self.resident);
        for id in victims {
            let Some(rec) = self.seqs.get_mut(id.0) else {
                continue;
            };
            let Some(mut carcass) = rec
                .slot
                .take()
                .and_then(|idx| self.pool.get_mut(idx).and_then(Option::take))
            else {
                continue;
            };
            // A died chip invalidates the sequence's shared pages along
            // with its private ones: drop its page references exactly
            // once, before the caller flushes the whole tree.
            if let Some(cache) = self.prefix.as_mut() {
                cache.release_grant(&mut carcass.grant);
            }
            self.recovery.evictions += 1;
            rec.comm += carcass.state.comm;
            rec.slot_frees += 1;
            rec.state = SeqState::Recovering;
            rec.recovered = true;
            rec.evicted_by = Some(chip);
            rec.retries = 0;
            rec.retry_at_s = self.now_s;
            rec.parked = Some(carcass);
            self.recovering.push_back(id);
            self.events.push_back(ServeEvent::Evicted {
                id,
                chip,
                t_s: self.now_s,
            });
        }
    }

    /// Load-shedding under fault pressure: while the backlog (queued +
    /// recovering) overflows the admission queue's bound, drop the
    /// *newest* queued requests — queued work is sacrificed before
    /// admitted work, and earlier arrivals keep their FCFS promise.
    fn shed_queue_overflow(&mut self) {
        while self.waiting.len() + self.recovering.len() > self.queue_capacity {
            let Some(id) = self.waiting.pop_back() else {
                break;
            };
            if let Some(rec) = self.seqs.get_mut(id.0) {
                rec.state = SeqState::Shed;
                rec.finish_s = Some(self.now_s);
                rec.error = Some(ServeError::Shed { id });
            }
            self.shed += 1;
            self.events.push_back(ServeEvent::Shed {
                id,
                t_s: self.now_s,
            });
        }
    }

    /// Retire every live sequence whose deadline the clock stands
    /// strictly past. No-op (and no arithmetic) for plans without
    /// deadlines.
    fn enforce_deadlines(&mut self) {
        if self.faults.deadlines.is_empty() {
            return;
        }
        let expired: Vec<SeqId> = self
            .seqs
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(
                    r.state,
                    SeqState::Queued
                        | SeqState::Recovering
                        | SeqState::Prefilling
                        | SeqState::Decoding
                ) && r.deadline.is_some_and(|d| self.now_s > micros_to_s(d))
            })
            .map(|(i, _)| SeqId(i))
            .collect();
        for id in expired {
            self.miss_deadline(id);
        }
    }

    /// Retire one sequence whose deadline expired: free any KV slot
    /// (exactly once), drop any parked carcass, and emit the typed
    /// outcome.
    fn miss_deadline(&mut self, id: SeqId) {
        let Some(rec) = self.seqs.get_mut(id.0) else {
            return;
        };
        let Some(deadline_micros) = rec.deadline else {
            return;
        };
        if let Some(idx) = rec.slot.take() {
            if let Some(mut gone) = self.pool.get_mut(idx).and_then(Option::take) {
                if let Some(cache) = self.prefix.as_mut() {
                    cache.release_grant(&mut gone.grant);
                }
                rec.comm += gone.state.comm;
                rec.slot_frees += 1;
            }
        }
        rec.parked = None;
        rec.state = SeqState::DeadlineMissed;
        rec.finish_s = Some(self.now_s);
        rec.error = Some(ServeError::Deadline {
            id,
            deadline_micros,
        });
        self.waiting.retain(|&w| w != id);
        self.recovering.retain(|&r| r != id);
        self.resident.retain(|&r| r != id);
        self.events.push_back(ServeEvent::DeadlineMissed {
            id,
            t_s: self.now_s,
        });
    }

    /// Re-admit evicted sequences, FCFS with exponential backoff:
    /// admitted work outranks queued work for the survivors' shrunken
    /// capacity. A due sequence with a free slot re-prefills
    /// `prompt ++ emitted` into a fresh slot
    /// ([`BatchedDataflowExecutor::recover_slot`] — token-exact); one
    /// out of retries is abandoned as [`SeqState::ChipLost`].
    fn admit_recovering(&mut self) {
        let queue = std::mem::take(&mut self.recovering);
        for id in queue {
            let Some((state, retry_at, retries)) = self
                .seqs
                .get(id.0)
                .map(|r| (r.state, r.retry_at_s, r.retries))
            else {
                continue;
            };
            if state != SeqState::Recovering {
                // Cancelled or retired while parked; already accounted.
                continue;
            }
            if retry_at > self.now_s {
                self.recovering.push_back(id);
                continue;
            }
            if self.resident.len() < self.effective_slots {
                let Some((carcass, request)) = self
                    .seqs
                    .get_mut(id.0)
                    .and_then(|r| r.parked.take().map(|c| (c, r.request.clone())))
                else {
                    continue;
                };
                let slot = self.engine.recover_slot(carcass, &request);
                self.recovery.resumed += 1;
                // cast: prompt lengths are usize token counts, value-preserving in u64
                let re_prefill = slot.prompt.len() as u64;
                self.recovery.re_prefill_tokens =
                    self.recovery.re_prefill_tokens.saturating_add(re_prefill);
                let idx = match self
                    .pool
                    .iter_mut()
                    .enumerate()
                    .find(|(_, entry)| entry.is_none())
                {
                    Some((free, entry)) => {
                        *entry = Some(slot);
                        free
                    }
                    None => {
                        self.pool.push(Some(slot));
                        self.pool.len() - 1
                    }
                };
                if let Some(rec) = self.seqs.get_mut(id.0) {
                    rec.state = SeqState::Prefilling;
                    rec.slot = Some(idx);
                    rec.admissions += 1;
                }
                self.resident.push(id);
                self.events.push_back(ServeEvent::Recovered {
                    id,
                    t_s: self.now_s,
                });
            } else if retries >= Self::MAX_RECOVERY_RETRIES {
                let chip = if let Some(rec) = self.seqs.get_mut(id.0) {
                    rec.state = SeqState::ChipLost;
                    rec.finish_s = Some(self.now_s);
                    rec.parked = None;
                    rec.evicted_by.unwrap_or(0)
                } else {
                    0
                };
                if let Some(rec) = self.seqs.get_mut(id.0) {
                    rec.error = Some(ServeError::ChipLost { id, chip });
                }
                self.recovery.failed += 1;
                self.events.push_back(ServeEvent::ChipLost {
                    id,
                    t_s: self.now_s,
                });
            } else if let Some(rec) = self.seqs.get_mut(id.0) {
                rec.retries += 1;
                // Exponential backoff in round time: 2, 4, … 64 rounds.
                rec.retry_at_s = self.now_s + self.round_s * retry_round_factor(rec.retries);
                self.recovering.push_back(id);
            }
        }
    }

    /// Admit queued arrivals into free KV slots, FCFS, exactly as the
    /// offline scheduler does at each round boundary. Recovering evicted
    /// sequences re-admit first: admitted work outranks queued work.
    fn admit_waiting(&mut self) {
        self.admit_recovering();
        while self.resident.len() < self.effective_slots {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let Some(rec) = self.seqs.get(id.0) else {
                self.waiting.pop_front();
                continue;
            };
            if rec.arrival_s > self.now_s {
                break;
            }
            let request = rec.request.clone();
            self.waiting.pop_front();
            let slot = self.engine.new_slot(id.0, &request);
            let idx = match self
                .pool
                .iter_mut()
                .enumerate()
                .find(|(_, entry)| entry.is_none())
            {
                Some((free, entry)) => {
                    *entry = Some(slot);
                    free
                }
                None => {
                    self.pool.push(Some(slot));
                    self.pool.len() - 1
                }
            };
            if let Some(rec) = self.seqs.get_mut(id.0) {
                rec.state = SeqState::Prefilling;
                rec.admitted_s = Some(self.now_s);
                rec.slot = Some(idx);
                rec.admissions += 1;
            }
            self.resident.push(id);
            self.events.push_back(ServeEvent::Admitted {
                id,
                t_s: self.now_s,
            });
        }
        self.peak_resident = self.peak_resident.max(self.resident.len());
    }

    /// One pipeline round: assign slots with the offline scheduler's
    /// policy (decode first, FCFS prefill with the remaining budget,
    /// chained first decode), execute via the shared batch machinery,
    /// stream the produced tokens, and evict completions.
    fn round(&mut self) {
        // Stragglers and link faults stretch round time. Fault-free runs
        // compute `round_s * 1.0 * 1.0`, exact in IEEE f64, so the clock
        // stays bit-identical to a server without the fault machinery.
        let health = self.health;
        let slowdown = self
            .faults
            .slowdown_at(self.now_s, |chip| health.is_alive(chip));
        let link_retries = self.faults.link_retries_at(self.now_s);
        let stretch = slowdown * retry_round_factor(link_retries);
        let degraded_round = self.health.is_degraded() || stretch > 1.0;
        if degraded_round {
            self.degraded_rounds = self.degraded_rounds.saturating_add(1);
        }
        if link_retries > 0 {
            self.link_retry_rounds = self.link_retry_rounds.saturating_add(1);
        }
        self.now_s += self.round_s * stretch;
        self.rounds = self.rounds.saturating_add(1);
        let mut plan = RoundPlan::default();

        // Decode slots claimed at round start (prefill-complete residents)
        // — the budget the offline scheduler reserves before prefill.
        let mut decoding = 0usize;
        for &id in &self.resident {
            let Some(idx) = self.seqs.get(id.0).and_then(|r| r.slot) else {
                continue;
            };
            let Some(slot) = self.pool.get(idx).and_then(Option::as_ref) else {
                continue;
            };
            if slot.prefill_pos == slot.prompt.len() && slot.out.len() < slot.target {
                decoding += 1;
            }
        }
        // cast: slot budgets are small usize counts, value-preserving in u64
        let mut budget = self.effective_slots.saturating_sub(decoding) as u64;

        // FCFS prefill in admission order; a prefill that completes this
        // round chains straight into its first decode.
        let mut planned: Vec<(SeqId, usize, Action)> = Vec::with_capacity(self.resident.len());
        let mut prefilled = 0u64;
        let mut decoded = 0u64;
        for &id in &self.resident {
            let Some(idx) = self.seqs.get(id.0).and_then(|r| r.slot) else {
                continue;
            };
            let Some(slot) = self.pool.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            // First round with prefill budget: match the prompt against
            // the shared tree and attach the hit, so only the unmatched
            // suffix is charged below — the same lazy consultation the
            // timing planner's oracle performs.
            if !slot.consulted && budget > 0 && slot.prefill_pos < slot.prompt.len() {
                if let Some(cache) = self.prefix.as_mut() {
                    BatchedDataflowExecutor::attach_match(slot, cache);
                }
            }
            let slot = &*slot;
            // cast: prompt-token remainders are usize counts, value-preserving in u64
            let remaining = (slot.prompt.len() - slot.prefill_pos) as u64;
            let mut action = Action {
                prefill: 0,
                decode: false,
            };
            if remaining > 0 && budget > 0 {
                let take = remaining.min(budget);
                budget -= take;
                prefilled += take;
                action.prefill = u32::try_from(take).unwrap_or(u32::MAX);
                plan.prefill.push((id.0, action.prefill));
            }
            // cast: u32 → usize is value-preserving on every supported target
            let done_after = slot.prefill_pos + action.prefill as usize == slot.prompt.len();
            if done_after && slot.out.len() < slot.target {
                action.decode = true;
                decoded += 1;
                plan.decode.push(id.0);
            }
            if action.prefill > 0 || action.decode {
                planned.push((id, idx, action));
            }
        }
        self.prefill_tokens = self.prefill_tokens.saturating_add(prefilled);
        self.decoded_tokens = self.decoded_tokens.saturating_add(decoded);

        // Execute the round through the shared (rayon-or-serial) batch
        // machinery: hand out disjoint &mut borrows of the pool.
        {
            let mut available: Vec<Option<&mut SeqSlot>> =
                self.pool.iter_mut().map(Option::as_mut).collect();
            let mut work: Vec<(&mut SeqSlot, Action)> = Vec::with_capacity(planned.len());
            for &(_, idx, action) in &planned {
                if let Some(slot) = available.get_mut(idx).and_then(Option::take) {
                    work.push((slot, action));
                }
            }
            self.engine.run_round(work);
        }

        // Commit completed prompts into the shared tree, in admission
        // order, before completions are evicted below: each new block's
        // pages freeze in place (owned → shared, no copy) and strictly
        // later rounds match against them — the same end-of-round commit
        // schedule the offline engine and the timing planner follow.
        if let Some(cache) = self.prefix.as_mut() {
            for &(_, idx, action) in &planned {
                if action.prefill == 0 {
                    continue;
                }
                let Some(slot) = self.pool.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                if slot.prefill_pos == slot.prompt.len() {
                    let SeqSlot {
                        prompt,
                        state,
                        grant,
                        ..
                    } = slot;
                    cache.commit(prompt, |b| state.share_block(b), grant);
                }
            }
        }

        // Stream freshly decoded tokens and advance lifecycle states.
        let now = self.now_s;
        for &(id, idx, action) in &planned {
            let Some(slot) = self.pool.get(idx).and_then(Option::as_ref) else {
                continue;
            };
            let Some(rec) = self.seqs.get_mut(id.0) else {
                continue;
            };
            if action.decode {
                if let Some(&token) = slot.out.last() {
                    let index = slot.out.len() - 1;
                    rec.tokens.push(token);
                    // Latency samples from degraded rounds — or from
                    // sequences that ever went through eviction — land in
                    // the degraded SLO rows, keeping healthy percentiles
                    // honest under chaos.
                    let degraded_sample = degraded_round || rec.recovered;
                    if rec.first_token_s.is_none() {
                        rec.first_token_s = Some(now);
                        if degraded_sample {
                            self.ttfts_degraded.push(now - rec.arrival_s);
                        } else {
                            self.ttfts.push(now - rec.arrival_s);
                        }
                    }
                    if let Some(prev) = rec.prev_token_s {
                        if degraded_sample {
                            self.gaps_degraded.push(now - prev);
                        } else {
                            self.gaps.push(now - prev);
                        }
                    }
                    rec.prev_token_s = Some(now);
                    self.events.push_back(ServeEvent::Token {
                        id,
                        index,
                        token,
                        t_s: now,
                    });
                }
            }
            if rec.state == SeqState::Prefilling && slot.prefill_pos == slot.prompt.len() {
                rec.state = SeqState::Decoding;
            }
        }

        // Evict completions (freeing their KV slots) and account the
        // surviving pool footprint.
        let resident = std::mem::take(&mut self.resident);
        let mut kv_bytes = 0u64;
        let mut kv_owned = 0u64;
        for id in resident {
            let Some(idx) = self.seqs.get(id.0).and_then(|r| r.slot) else {
                continue;
            };
            let finished = self
                .pool
                .get(idx)
                .and_then(Option::as_ref)
                .is_some_and(SeqSlot::finished);
            if finished {
                let Some(mut done) = self.pool.get_mut(idx).and_then(Option::take) else {
                    continue;
                };
                if let Some(cache) = self.prefix.as_mut() {
                    cache.release_grant(&mut done.grant);
                }
                if let Some(rec) = self.seqs.get_mut(id.0) {
                    // `+=`: a recovered sequence's pre-eviction counters
                    // were harvested at eviction time.
                    rec.comm += done.state.comm;
                    rec.slot = None;
                    rec.slot_frees += 1;
                    rec.state = SeqState::Finished;
                    rec.finish_s = Some(now);
                }
                self.events.push_back(ServeEvent::Finished { id, t_s: now });
            } else {
                let (slot_bytes, slot_owned) = self
                    .pool
                    .get(idx)
                    .and_then(Option::as_ref)
                    .map_or((0, 0), |s| {
                        (s.state.kv_bytes_fp16(), s.state.kv_owned_bytes_fp16())
                    });
                kv_bytes = kv_bytes.saturating_add(slot_bytes);
                kv_owned = kv_owned.saturating_add(slot_owned);
                self.resident.push(id);
            }
        }
        self.peak_kv_bytes = self.peak_kv_bytes.max(kv_bytes);
        self.peak_kv_owned_bytes = self.peak_kv_owned_bytes.max(kv_owned);
        self.plans.push(plan);
    }

    /// Aggregate SLO statistics so far.
    pub fn slo_report(&self) -> SloReport {
        let mut ttfts = self.ttfts.clone();
        ttfts.sort_by(f64::total_cmp);
        let mut gaps = self.gaps.clone();
        gaps.sort_by(f64::total_cmp);
        let mut ttfts_degraded = self.ttfts_degraded.clone();
        ttfts_degraded.sort_by(f64::total_cmp);
        let mut gaps_degraded = self.gaps_degraded.clone();
        gaps_degraded.sort_by(f64::total_cmp);
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                // cast: sample counts are small usize values, exact in f64
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let count = |s: SeqState| self.seqs.iter().filter(|r| r.state == s).count();
        SloReport {
            submitted: self.seqs.len(),
            completed: count(SeqState::Finished),
            cancelled: count(SeqState::Cancelled),
            shed: count(SeqState::Shed),
            deadline_missed: count(SeqState::DeadlineMissed),
            chip_lost: count(SeqState::ChipLost),
            chip_failures: self.chip_failures_applied,
            recovery: self.recovery,
            degraded_rounds: self.degraded_rounds,
            link_retry_rounds: self.link_retry_rounds,
            rejected: self.rejected,
            rounds: self.rounds,
            prefill_tokens: self.prefill_tokens,
            decoded_tokens: self.decoded_tokens,
            peak_resident: self.peak_resident,
            peak_kv_bytes_fp16: self.peak_kv_bytes,
            peak_kv_owned_bytes_fp16: self.peak_kv_owned_bytes,
            prefix: match &self.prefix {
                Some(c) => c.stats(),
                None => PrefixStats::default(),
            },
            makespan_s: self.now_s,
            decode_tokens_per_s_virtual: if self.now_s > 0.0 {
                // cast: decoded-token counts stay far below 2^53, exact in f64
                self.decoded_tokens as f64 / self.now_s
            } else {
                0.0
            },
            ttft_p50_s: percentile(&ttfts, 0.50),
            ttft_p99_s: percentile(&ttfts, 0.99),
            ttft_mean_s: mean(&ttfts),
            tpot_p50_s: percentile(&gaps, 0.50),
            tpot_p99_s: percentile(&gaps, 0.99),
            tpot_mean_s: mean(&gaps),
            ttft_degraded_p50_s: percentile(&ttfts_degraded, 0.50),
            ttft_degraded_p99_s: percentile(&ttfts_degraded, 0.99),
            tpot_degraded_p50_s: percentile(&gaps_degraded, 0.50),
            tpot_degraded_p99_s: percentile(&gaps_degraded, 0.99),
        }
    }

    /// The full report: SLO summary, per-sequence outcomes, round log.
    pub fn report(&self) -> ServeReport {
        let outcomes = self
            .seqs
            .iter()
            .enumerate()
            .map(|(i, r)| SequenceOutcome {
                id: SeqId(i),
                state: r.state,
                arrival_s: r.arrival_s,
                admitted_s: r.admitted_s,
                ttft_s: r.first_token_s.map(|t| t - r.arrival_s),
                finish_s: r.finish_s,
                tokens: r.tokens.clone(),
                comm: r.comm,
                slot_frees: r.slot_frees,
                admissions: r.admissions,
                error: r.error,
            })
            .collect();
        ServeReport {
            slo: self.slo_report(),
            outcomes,
            plans: self.plans.clone(),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0.0 for an
/// empty sample, matching an idle server's report).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // cast: sample counts are small (exact in f64) and the rounded rank is clamped by get()
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted.get(idx).copied().unwrap_or(0.0)
}

/// Virtual-time µs → seconds (arrivals, deadlines, fault timestamps).
fn micros_to_s(micros: u64) -> f64 {
    // cast: virtual timestamps are bounded by the run horizon (< 2^53 µs), value-preserving in f64
    micros as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::DataflowExecutor;
    use hnlpu_model::{zoo, ModelWeights, WeightGenerator};
    use hnlpu_sim::SimConfig;

    fn engine() -> BatchedDataflowExecutor {
        let card = zoo::dataflow_test_model();
        let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(2026));
        BatchedDataflowExecutor::new(DataflowExecutor::new(w), 216)
    }

    fn scheduler() -> BatchScheduler {
        BatchScheduler::new(SimConfig::paper_default(), 2048)
    }

    fn server(queue_capacity: usize) -> OnlineServer {
        OnlineServer::new(engine(), &scheduler(), queue_capacity).expect("capacity fits")
    }

    #[test]
    fn online_matches_offline_plan_and_tokens() {
        let requests = vec![
            SequenceRequest::greedy(0, vec![1, 5, 9], 8),
            SequenceRequest::greedy(40_000, vec![100, 2], 5),
            SequenceRequest::greedy(2_000_000, vec![64], 12),
        ];
        let eng = engine();
        let sched = scheduler();
        let (offline, offline_plans) = {
            let sim_reqs: Vec<_> = requests
                .iter()
                .map(SequenceRequest::to_sim_request)
                .collect();
            sched.plan(&sim_reqs)
        };
        let offline_run = eng
            .execute_plan(&requests, &offline_plans)
            .expect("offline plan executes");

        let mut server = OnlineServer::new(eng, &sched, requests.len()).expect("fits");
        let outcome = server.run_trace(&requests, &[]);
        assert!(outcome.submissions.iter().all(Result::is_ok));
        assert_eq!(outcome.report.plans, offline_plans);
        for (out, offline_out) in outcome.report.outcomes.iter().zip(&offline_run.outputs) {
            assert_eq!(&out.tokens, offline_out);
            assert_eq!(out.state, SeqState::Finished);
        }
        // Finish times replay the analytical completions exactly (same
        // f64 operations in the same order).
        let mut online_finish: Vec<f64> = outcome
            .report
            .outcomes
            .iter()
            .filter_map(|o| o.finish_s)
            .collect();
        online_finish.sort_by(f64::total_cmp);
        let mut offline_finish: Vec<f64> = offline.completions.iter().map(|c| c.finish_s).collect();
        offline_finish.sort_by(f64::total_cmp);
        assert_eq!(online_finish, offline_finish);
    }

    #[test]
    fn tokens_stream_before_completion() {
        let mut server = server(4);
        let id = server
            .submit(SequenceRequest::greedy(0, vec![7, 3], 5))
            .expect("accepted");
        // Run rounds manually until the first token appears; the sequence
        // must still be live (decoding) at that moment.
        let mut streamed_early = false;
        for _ in 0..3 {
            server.admit_waiting();
            server.round();
            let events = server.poll_events();
            if events
                .iter()
                .any(|e| matches!(e, ServeEvent::Token { id: t, .. } if *t == id))
                && server.state_of(id) == Some(SeqState::Decoding)
            {
                streamed_early = true;
                break;
            }
        }
        assert!(streamed_early, "no token streamed while live");
        server.run_until_idle();
        assert_eq!(server.state_of(id), Some(SeqState::Finished));
        assert_eq!(server.tokens_of(id).map(<[u32]>::len), Some(5));
    }

    #[test]
    fn queue_full_rejection_is_typed() {
        let mut server = server(1);
        assert!(server
            .submit(SequenceRequest::greedy(0, vec![1], 2))
            .is_ok());
        let err = server
            .submit(SequenceRequest::greedy(0, vec![2], 2))
            .expect_err("queue of 1 is full");
        assert_eq!(err, ServeError::QueueFull { capacity: 1 });
        server.run_until_idle();
        assert_eq!(server.slo_report().rejected, 1);
        assert_eq!(server.slo_report().completed, 1);
    }

    #[test]
    fn empty_prompt_rejected() {
        let mut server = server(4);
        assert_eq!(
            server.submit(SequenceRequest::greedy(0, vec![], 1)),
            Err(ServeError::EmptyPrompt)
        );
    }

    #[test]
    fn out_of_order_arrival_rejected() {
        let mut server = server(4);
        assert!(server
            .submit(SequenceRequest::greedy(5_000, vec![1], 1))
            .is_ok());
        assert_eq!(
            server.submit(SequenceRequest::greedy(4_999, vec![2], 1)),
            Err(ServeError::ArrivalOutOfOrder {
                last_micros: 5_000,
                arrival_micros: 4_999,
            })
        );
    }

    #[test]
    fn cancel_queued_sequence_never_runs() {
        let mut server = server(8);
        let id = server
            .submit(SequenceRequest::greedy(0, vec![1, 2], 4))
            .expect("accepted");
        server.cancel(id).expect("cancellable while queued");
        server.run_until_idle();
        assert_eq!(server.state_of(id), Some(SeqState::Cancelled));
        assert_eq!(server.tokens_of(id).map(<[u32]>::len), Some(0));
        let report = server.report();
        assert_eq!(report.outcomes[0].slot_frees, 0);
        assert_eq!(report.slo.rounds, 0);
    }

    #[test]
    fn cancel_resident_frees_slot_exactly_once() {
        let mut server = server(8);
        let id = server
            .submit(SequenceRequest::greedy(0, vec![1, 2, 3], 50))
            .expect("accepted");
        server.admit_waiting();
        server.round();
        assert_eq!(server.resident(), 1);
        server.cancel(id).expect("cancellable while resident");
        assert_eq!(server.resident(), 0);
        assert_eq!(server.cancel(id), Err(ServeError::AlreadyRetired { id }));
        server.run_until_idle();
        let report = server.report();
        assert_eq!(report.outcomes[0].slot_frees, 1);
        assert_eq!(report.outcomes[0].state, SeqState::Cancelled);
        // The freed slot is reusable: a new sequence admits and finishes.
        let id2 = server
            .submit(SequenceRequest::greedy(10_000, vec![9], 2))
            .expect("accepted");
        server.run_until_idle();
        assert_eq!(server.state_of(id2), Some(SeqState::Finished));
    }

    #[test]
    fn unknown_sequence_cancel_is_typed() {
        let mut server = server(4);
        assert_eq!(
            server.cancel(SeqId(7)),
            Err(ServeError::UnknownSequence { id: SeqId(7) })
        );
    }

    #[test]
    fn zero_decode_requests_finish_with_empty_stream() {
        let mut server = server(4);
        let id = server
            .submit(SequenceRequest::greedy(0, vec![3, 1, 4], 0))
            .expect("accepted");
        server.run_until_idle();
        assert_eq!(server.state_of(id), Some(SeqState::Finished));
        assert_eq!(server.tokens_of(id).map(<[u32]>::len), Some(0));
        assert_eq!(server.report().outcomes[0].slot_frees, 1);
    }

    #[test]
    fn slo_report_counts_reconcile() {
        let requests: Vec<SequenceRequest> = (0..6)
            .map(|i| SequenceRequest::greedy(i * 30_000, vec![1 + i as u32, 2], 4))
            .collect();
        let mut server = server(16);
        let outcome = server.run_trace(&requests, &[]);
        let slo = &outcome.report.slo;
        assert_eq!(slo.submitted, 6);
        assert_eq!(slo.completed, 6);
        assert_eq!(slo.decoded_tokens, 6 * 4);
        assert_eq!(slo.prefill_tokens, 6 * 2);
        assert_eq!(slo.rounds, outcome.report.plans.len() as u64);
        assert!(slo.ttft_p50_s > 0.0 && slo.ttft_p99_s >= slo.ttft_p50_s);
        assert!(slo.tpot_p50_s > 0.0 && slo.tpot_p99_s >= slo.tpot_p50_s);
        assert!(slo.makespan_s > 0.0);
        // 4 tokens per sequence -> 3 gaps each.
        let streamed: usize = outcome.report.outcomes.iter().map(|o| o.tokens.len()).sum();
        assert_eq!(streamed as u64, slo.decoded_tokens);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[2.0], 0.99), 2.0);
    }

    // ---- fault injection ----

    use crate::fault::{Deadline, LinkFault, Straggler};

    fn fault_server(queue_capacity: usize, faults: FaultPlan) -> OnlineServer {
        OnlineServer::with_faults(engine(), &scheduler(), queue_capacity, faults)
            .expect("valid plan")
    }

    fn kill(at_micros: u64, chip: usize) -> FaultPlan {
        FaultPlan {
            chip_failures: vec![ChipFailure { at_micros, chip }],
            ..FaultPlan::none()
        }
    }

    #[test]
    fn invalid_fault_plan_is_typed() {
        let err = OnlineServer::with_faults(engine(), &scheduler(), 4, kill(0, 99))
            .expect_err("chip 99 does not exist");
        assert_eq!(
            err,
            ServeError::InvalidFaultPlan {
                error: FaultError::ChipOutOfRange { chip: 99 }
            }
        );
    }

    #[test]
    fn empty_plan_is_bit_identical_to_faultless_server() {
        let requests = vec![
            SequenceRequest::greedy(0, vec![1, 5, 9], 8),
            SequenceRequest::greedy(40_000, vec![100, 2], 5),
        ];
        let mut plain = server(8);
        let mut chaos = fault_server(8, FaultPlan::none());
        let a = plain.run_trace(&requests, &[]);
        let b = chaos.run_trace(&requests, &[]);
        assert_eq!(a.report.plans, b.report.plans);
        assert_eq!(a.report.slo, b.report.slo);
        for (x, y) in a.report.outcomes.iter().zip(&b.report.outcomes) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.finish_s, y.finish_s);
        }
        assert!(b.report.slo.recovery.is_clean());
        assert_eq!(b.report.slo.degraded_rounds, 0);
    }

    #[test]
    fn chip_failure_evicts_recovers_and_resumes_token_exact() {
        let requests = vec![
            SequenceRequest::greedy(0, vec![1, 5, 9], 40),
            SequenceRequest::greedy(0, vec![100, 2], 40),
        ];
        let baseline = server(8).run_trace(&requests, &[]);
        let mid = (baseline.report.slo.makespan_s * 1e6 / 2.0) as u64;
        let mut chaos = fault_server(8, kill(mid, 5));
        let outcome = chaos.run_trace(&requests, &[]);
        // Survivor capacity: 15 of 16 chips keep 15/16 of the slots.
        assert!(chaos.grid_health().is_degraded());
        assert_eq!(chaos.effective_slots(), 216 * 15 / 16);
        assert!(!chaos.degraded_layout().is_identity());
        let slo = &outcome.report.slo;
        assert_eq!(slo.chip_failures, 1);
        assert_eq!(slo.recovery.evictions, 2);
        assert_eq!(slo.recovery.resumed, 2);
        assert_eq!(slo.recovery.failed, 0);
        assert!(slo.recovery.re_prefill_tokens > 0);
        assert!(slo.degraded_rounds > 0);
        // The recovered streams are bit-identical to the fault-free run:
        // re-prefilling prompt ++ emitted reconstructs the exact context.
        for (out, base) in outcome
            .report
            .outcomes
            .iter()
            .zip(&baseline.report.outcomes)
        {
            assert_eq!(out.state, SeqState::Finished);
            assert_eq!(out.tokens, base.tokens);
            assert_eq!(out.admissions, 2, "evicted once, admitted twice");
            assert_eq!(out.slot_frees, 2, "freed at eviction and at finish");
        }
        // Degraded latency rows got the post-eviction samples.
        assert!(slo.ttft_degraded_p50_s > 0.0 || slo.tpot_degraded_p50_s > 0.0);
    }

    #[test]
    fn deadline_expiry_is_typed_and_frees_the_slot_once() {
        let faults = FaultPlan {
            deadlines: vec![Deadline {
                submission: 0,
                at_micros: 5_000,
            }],
            ..FaultPlan::none()
        };
        let requests = vec![
            SequenceRequest::greedy(0, vec![1, 5, 9], 500),
            SequenceRequest::greedy(0, vec![4, 4], 5),
        ];
        let mut chaos = fault_server(8, faults);
        let outcome = chaos.run_trace(&requests, &[]);
        let missed = &outcome.report.outcomes[0];
        assert_eq!(missed.state, SeqState::DeadlineMissed);
        assert_eq!(
            missed.error,
            Some(ServeError::Deadline {
                id: SeqId(0),
                deadline_micros: 5_000,
            })
        );
        assert_eq!(missed.slot_frees, missed.admissions);
        assert_eq!(outcome.report.outcomes[1].state, SeqState::Finished);
        assert_eq!(outcome.report.slo.deadline_missed, 1);
        assert_eq!(outcome.report.slo.completed, 1);
    }

    #[test]
    fn queued_requests_are_shed_before_admitted_ones() {
        let mut chaos = fault_server(2, kill(10_000, 3));
        let a = chaos
            .submit(SequenceRequest::greedy(0, vec![1, 2, 3], 60))
            .expect("admits");
        // Admit `a` so the capacity-2 queue is free for the two future
        // arrivals (they stay queued until the clock reaches them).
        chaos.admit_waiting();
        assert_eq!(chaos.resident(), 1);
        let b = chaos
            .submit(SequenceRequest::greedy(20_000, vec![5], 4))
            .expect("queued");
        let c = chaos
            .submit(SequenceRequest::greedy(25_000, vec![6], 4))
            .expect("queued");
        chaos.run_until_idle();
        // The failure evicts resident `a`; backlog (1 recovering + 2
        // queued) overflows the capacity-2 queue, shedding the newest
        // queued request — never the admitted one.
        assert_eq!(chaos.state_of(c), Some(SeqState::Shed));
        assert_eq!(chaos.state_of(a), Some(SeqState::Finished));
        assert_eq!(chaos.state_of(b), Some(SeqState::Finished));
        let report = chaos.report();
        assert_eq!(report.slo.shed, 1);
        assert_eq!(report.outcomes[c.0].error, Some(ServeError::Shed { id: c }));
        assert_eq!(report.outcomes[c.0].slot_frees, 0);
    }

    #[test]
    fn straggler_stretches_the_clock_without_changing_tokens() {
        let requests = vec![SequenceRequest::greedy(0, vec![7, 3], 12)];
        let baseline = server(4).run_trace(&requests, &[]);
        let faults = FaultPlan {
            stragglers: vec![Straggler {
                chip: 9,
                from_micros: 0,
                until_micros: u64::MAX,
                slowdown: 4.0,
            }],
            ..FaultPlan::none()
        };
        let mut chaos = fault_server(4, faults);
        let outcome = chaos.run_trace(&requests, &[]);
        assert_eq!(
            outcome.report.outcomes[0].tokens,
            baseline.report.outcomes[0].tokens
        );
        let slo = &outcome.report.slo;
        assert!(slo.makespan_s > baseline.report.slo.makespan_s * 3.5);
        assert_eq!(slo.degraded_rounds, slo.rounds);
        // Every latency sample is a degraded one; healthy rows are empty.
        assert_eq!(slo.ttft_p50_s, 0.0);
        assert!(slo.ttft_degraded_p50_s > 0.0);
    }

    #[test]
    fn link_faults_stretch_and_count_rounds() {
        let requests = vec![SequenceRequest::greedy(0, vec![7, 3], 12)];
        let baseline = server(4).run_trace(&requests, &[]);
        let faults = FaultPlan {
            link_faults: vec![LinkFault {
                from_micros: 0,
                until_micros: u64::MAX,
                retries: 1,
            }],
            ..FaultPlan::none()
        };
        let mut chaos = fault_server(4, faults);
        let outcome = chaos.run_trace(&requests, &[]);
        assert_eq!(
            outcome.report.outcomes[0].tokens,
            baseline.report.outcomes[0].tokens
        );
        let slo = &outcome.report.slo;
        assert_eq!(slo.link_retry_rounds, slo.rounds);
        // One retry doubles each round.
        let ratio = slo.makespan_s / baseline.report.slo.makespan_s;
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn cancelling_a_recovering_sequence_retires_it() {
        let mut chaos = fault_server(4, kill(10_000, 0));
        let id = chaos
            .submit(SequenceRequest::greedy(0, vec![1, 2, 3], 500))
            .expect("admits");
        // Run until the eviction lands.
        while chaos.state_of(id) != Some(SeqState::Recovering) {
            chaos.admit_waiting();
            chaos.round();
            chaos.apply_due_faults();
        }
        chaos.cancel(id).expect("recovering is live");
        assert_eq!(chaos.state_of(id), Some(SeqState::Cancelled));
        assert_eq!(chaos.recovering(), 0);
        chaos.run_until_idle();
        let report = chaos.report();
        assert_eq!(report.outcomes[0].slot_frees, 1);
        assert_eq!(report.outcomes[0].admissions, 1);
        assert_eq!(report.slo.recovery.evictions, 1);
        assert_eq!(report.slo.recovery.resumed, 0);
    }

    #[test]
    fn chip_loss_after_exhausted_retries_is_typed() {
        // Kill 15 of 16 chips: the lone survivor keeps 1/16 of the
        // slots, so most of the evicted fleet cannot fit back.
        let card = zoo::dataflow_test_model();
        let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(2026));
        let eng = BatchedDataflowExecutor::new(DataflowExecutor::new(w), 216);
        let sched = scheduler();
        let mut chaos = OnlineServer::with_faults(
            eng,
            &sched,
            8,
            FaultPlan {
                chip_failures: (0..15)
                    .map(|i| ChipFailure {
                        at_micros: 10_000 + i as u64,
                        chip: i,
                    })
                    .collect(),
                ..FaultPlan::none()
            },
        )
        .expect("valid plan");
        // 15 dead chips leave effective_slots = max(216/16, 1) = 13; far
        // fewer than 20 long sequences, so some recoveries starve through
        // the whole ~126-round backoff ladder and exhaust their retries.
        let requests: Vec<SequenceRequest> = (0..20)
            .map(|i| SequenceRequest::greedy(0, vec![1 + i as u32], 400))
            .collect();
        let outcome = chaos.run_trace(&requests, &[]);
        assert_eq!(chaos.effective_slots(), 216 / 16);
        let slo = &outcome.report.slo;
        assert_eq!(slo.chip_failures, 15);
        let lost: Vec<_> = outcome
            .report
            .outcomes
            .iter()
            .filter(|o| o.state == SeqState::ChipLost)
            .collect();
        assert_eq!(lost.len(), slo.chip_lost);
        assert_eq!(slo.recovery.failed, slo.chip_lost as u64);
        for o in &lost {
            assert!(matches!(o.error, Some(ServeError::ChipLost { .. })));
            assert_eq!(o.slot_frees, o.admissions);
        }
        // Everyone else still finished, token-exact continuation included.
        assert_eq!(
            slo.completed + slo.chip_lost,
            20,
            "every sequence retired one way or the other"
        );
        assert!(slo.completed > 0);
    }
}
