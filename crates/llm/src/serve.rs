//! Online serving frontend: admission, incremental scheduling, streaming.
//!
//! [`OnlineServer`] is the event-driven counterpart of the offline
//! [`BatchedDataflowExecutor::execute_plan`] replay: requests arrive
//! dynamically (a bounded admission queue applies backpressure as typed
//! [`ServeError::QueueFull`] rejections), mixed prefill/decode rounds are
//! scheduled *incrementally* with exactly the policy of
//! [`BatchScheduler::plan`], tokens stream out per sequence as
//! [`ServeEvent`]s, and sequences can be cancelled mid-flight (their KV
//! slot is freed exactly once).
//!
//! The loop is a deterministic discrete-event simulation: time is a
//! virtual clock advanced by [`BatchScheduler::round_s`] per pipeline
//! round (idle gaps jump straight to the next arrival), and no wall-clock
//! or ambient RNG exists anywhere on the path — the `hnlpu-analyze`
//! determinism gate audits this module. Because the per-round stepping is
//! the *same* [`crate::batch`] machinery the offline replay uses, and the
//! incremental scheduler reproduces the offline scheduler's decisions, an
//! online run of any workload yields bit-identical token streams — and
//! bit-identical [`RoundPlan`]s — to planning the whole trace up front
//! (`tests/tests/online_differential.rs` proves this by property testing).
//!
//! Per-request time-to-first-token (TTFT) and inter-token gaps are
//! recorded in virtual time and summarized as a p50/p99 [`SloReport`] —
//! the serving-side metrics the RPU memory-wall analysis motivates.
//!
//! Sequence lifecycle: `Queued → Prefilling → Decoding → Finished`, with
//! `Cancelled` reachable from every live state and `QueueFull` rejections
//! never entering the lifecycle at all.

use crate::batch::{Action, BatchedDataflowExecutor, SeqSlot, SequenceRequest};
use crate::dataflow::CommCounters;
use hnlpu_sim::scheduler::{BatchScheduler, RoundPlan};
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt;

/// Handle for a submitted sequence: the `n`th accepted
/// [`OnlineServer::submit`] call returns `SeqId(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId(pub usize);

impl fmt::Display for SeqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq#{}", self.0)
    }
}

/// Why the serving frontend refused an operation. All admission-path
/// failures are typed — a malformed or over-limit request must never
/// abort a process serving hundreds of co-resident sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded admission queue is full (backpressure). Nothing was
    /// enqueued; the client may retry later.
    QueueFull {
        /// Admission-queue capacity.
        capacity: usize,
    },
    /// The request's prompt was empty.
    EmptyPrompt,
    /// Submissions must carry non-decreasing arrival times (the arrival
    /// process is a totally ordered virtual-time trace).
    ArrivalOutOfOrder {
        /// Latest previously submitted arrival, microseconds.
        last_micros: u64,
        /// Offending earlier arrival, microseconds.
        arrival_micros: u64,
    },
    /// The id does not name a submitted sequence.
    UnknownSequence {
        /// The unknown handle.
        id: SeqId,
    },
    /// Cancelling a sequence that already finished or was cancelled.
    AlreadyRetired {
        /// The retired handle.
        id: SeqId,
    },
    /// The scheduler plans more concurrent sequences than the engine's
    /// KV pool holds.
    SlotsExceedCapacity {
        /// Slots the scheduler schedules.
        scheduled: usize,
        /// Slots the engine pools.
        capacity: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} waiting); retry later")
            }
            ServeError::EmptyPrompt => {
                write!(f, "request prompt must contain at least one token")
            }
            ServeError::ArrivalOutOfOrder {
                last_micros,
                arrival_micros,
            } => write!(
                f,
                "arrival {arrival_micros} µs precedes an earlier submission at {last_micros} µs"
            ),
            ServeError::UnknownSequence { id } => {
                write!(f, "{id} was never submitted")
            }
            ServeError::AlreadyRetired { id } => {
                write!(f, "{id} already finished or was cancelled")
            }
            ServeError::SlotsExceedCapacity {
                scheduled,
                capacity,
            } => write!(
                f,
                "scheduler schedules {scheduled} slots but the engine pools {capacity}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Lifecycle state of a submitted sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SeqState {
    /// Waiting in the bounded admission queue.
    Queued,
    /// Resident in a KV slot, consuming prompt tokens.
    Prefilling,
    /// Resident in a KV slot, prompt consumed, streaming output tokens.
    Decoding,
    /// Every requested token was streamed; the KV slot is freed.
    Finished,
    /// Cancelled before completion; any KV slot was freed.
    Cancelled,
}

/// One observable serving event, stamped with virtual time. Drained in
/// emission order via [`OnlineServer::poll_events`] — this is the
/// streaming interface: a `Token` event is visible as soon as the round
/// that produced it completes, long before the sequence finishes.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// The sequence left the admission queue and took a KV slot.
    Admitted {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// One streamed output token.
    Token {
        /// Sequence handle.
        id: SeqId,
        /// Position in the sequence's output stream (0-based).
        index: usize,
        /// The token id.
        token: u32,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// All requested tokens were streamed and the KV slot was freed.
    Finished {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
    /// The sequence was cancelled; a resident sequence's KV slot was
    /// freed at this instant.
    Cancelled {
        /// Sequence handle.
        id: SeqId,
        /// Virtual time, seconds.
        t_s: f64,
    },
}

/// Per-request bookkeeping.
#[derive(Debug)]
struct SeqRecord {
    request: SequenceRequest,
    state: SeqState,
    /// Pool index while resident.
    slot: Option<usize>,
    arrival_s: f64,
    admitted_s: Option<f64>,
    first_token_s: Option<f64>,
    prev_token_s: Option<f64>,
    finish_s: Option<f64>,
    /// Tokens streamed so far (grown one per decode round).
    tokens: Vec<u32>,
    comm: CommCounters,
    /// Times this sequence's KV slot was released — exactly 1 for every
    /// sequence that was ever admitted, 0 for queue-only lifetimes.
    slot_frees: u32,
}

/// Per-sequence outcome in a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct SequenceOutcome {
    /// Sequence handle (index in submission order).
    pub id: SeqId,
    /// Final lifecycle state.
    pub state: SeqState,
    /// Arrival time, virtual seconds.
    pub arrival_s: f64,
    /// When the sequence took a KV slot (None if never admitted).
    pub admitted_s: Option<f64>,
    /// Time to first token: first decode emission minus arrival.
    pub ttft_s: Option<f64>,
    /// When the sequence finished or was cancelled.
    pub finish_s: Option<f64>,
    /// The streamed token ids, in emission order.
    pub tokens: Vec<u32>,
    /// Collective-communication counters accumulated while resident.
    pub comm: CommCounters,
    /// KV-slot releases (exactly once per admission; see tests).
    pub slot_frees: u32,
}

/// Aggregate service-level-objective statistics in virtual time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    /// Accepted submissions.
    pub submitted: usize,
    /// Sequences that streamed every requested token.
    pub completed: usize,
    /// Sequences cancelled before completion.
    pub cancelled: usize,
    /// Submissions rejected by queue backpressure.
    pub rejected: usize,
    /// Pipeline rounds executed.
    pub rounds: u64,
    /// Prompt tokens prefilled.
    pub prefill_tokens: u64,
    /// Output tokens decoded.
    pub decoded_tokens: u64,
    /// Most sequences resident at once (KV slots in use).
    pub peak_resident: usize,
    /// Largest pooled KV footprint at fp16 storage, bytes.
    pub peak_kv_bytes_fp16: u64,
    /// Final virtual time, seconds.
    pub makespan_s: f64,
    /// Decode throughput in virtual time, tokens/s.
    pub decode_tokens_per_s_virtual: f64,
    /// Median time-to-first-token, seconds.
    pub ttft_p50_s: f64,
    /// 99th-percentile time-to-first-token, seconds.
    pub ttft_p99_s: f64,
    /// Mean time-to-first-token, seconds.
    pub ttft_mean_s: f64,
    /// Median inter-token gap (time per output token), seconds.
    pub tpot_p50_s: f64,
    /// 99th-percentile inter-token gap, seconds.
    pub tpot_p99_s: f64,
    /// Mean inter-token gap, seconds.
    pub tpot_mean_s: f64,
}

/// Full result of an online run: SLO summary, per-sequence outcomes, and
/// the recorded round log (for differential comparison against
/// [`BatchScheduler::plan`]).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Aggregate latency/throughput statistics.
    pub slo: SloReport,
    /// One outcome per accepted submission, indexed by [`SeqId`].
    pub outcomes: Vec<SequenceOutcome>,
    /// The per-round slot assignments the online loop produced.
    pub plans: Vec<RoundPlan>,
}

/// Result of driving a whole timed trace through [`OnlineServer::run_trace`].
#[derive(Debug)]
pub struct TraceOutcome {
    /// Per-submission result, in input order: the assigned [`SeqId`] or
    /// the typed rejection.
    pub submissions: Vec<Result<SeqId, ServeError>>,
    /// The final report after the server drained.
    pub report: ServeReport,
}

/// The event-driven online serving engine.
#[derive(Debug)]
pub struct OnlineServer {
    engine: BatchedDataflowExecutor,
    /// Virtual seconds per pipeline round (from [`BatchScheduler::round_s`]).
    round_s: f64,
    /// Concurrent-sequence capacity (the machine's pipeline slots).
    slots: usize,
    /// Bounded admission-queue capacity.
    queue_capacity: usize,
    /// The virtual clock, seconds.
    now_s: f64,
    last_arrival_micros: u64,
    /// Admission queue, FCFS.
    waiting: VecDeque<SeqId>,
    /// Resident sequences in admission order (the scheduler's iteration
    /// order; KV storage lives in `pool`).
    resident: Vec<SeqId>,
    /// Slot-indexed KV/scratch storage; `None` entries are free slots.
    pool: Vec<Option<SeqSlot>>,
    seqs: Vec<SeqRecord>,
    events: VecDeque<ServeEvent>,
    plans: Vec<RoundPlan>,
    rounds: u64,
    prefill_tokens: u64,
    decoded_tokens: u64,
    peak_resident: usize,
    peak_kv_bytes: u64,
    rejected: usize,
    ttfts: Vec<f64>,
    gaps: Vec<f64>,
}

impl OnlineServer {
    /// A server running `engine` with the slot count and round timing of
    /// `scheduler`, and an admission queue bounded at `queue_capacity`
    /// waiting requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SlotsExceedCapacity`] when the scheduler
    /// plans more concurrent sequences than the engine pools.
    pub fn new(
        engine: BatchedDataflowExecutor,
        scheduler: &BatchScheduler,
        queue_capacity: usize,
    ) -> Result<Self, ServeError> {
        let slots = scheduler.slots();
        if slots > engine.max_slots() {
            return Err(ServeError::SlotsExceedCapacity {
                scheduled: slots,
                capacity: engine.max_slots(),
            });
        }
        Ok(OnlineServer {
            round_s: scheduler.round_s(),
            slots,
            queue_capacity,
            engine,
            now_s: 0.0,
            last_arrival_micros: 0,
            waiting: VecDeque::new(),
            resident: Vec::new(),
            pool: Vec::new(),
            seqs: Vec::new(),
            events: VecDeque::new(),
            plans: Vec::new(),
            rounds: 0,
            prefill_tokens: 0,
            decoded_tokens: 0,
            peak_resident: 0,
            peak_kv_bytes: 0,
            rejected: 0,
            ttfts: Vec::new(),
            gaps: Vec::new(),
        })
    }

    /// Current virtual time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Requests waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Sequences currently holding a KV slot.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }

    /// Lifecycle state of a submitted sequence.
    pub fn state_of(&self, id: SeqId) -> Option<SeqState> {
        self.seqs.get(id.0).map(|r| r.state)
    }

    /// Tokens streamed so far for a sequence.
    pub fn tokens_of(&self, id: SeqId) -> Option<&[u32]> {
        self.seqs.get(id.0).map(|r| r.tokens.as_slice())
    }

    /// The wrapped batched engine.
    pub fn engine(&self) -> &BatchedDataflowExecutor {
        &self.engine
    }

    /// Submit a request to the admission queue. The request's
    /// `arrival_s_micros` stamps its place in the virtual arrival
    /// process; submissions must be fed in non-decreasing arrival order
    /// (as [`run_trace`](Self::run_trace) does).
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyPrompt`] for an empty prompt,
    /// [`ServeError::ArrivalOutOfOrder`] for a time-travelling arrival,
    /// and [`ServeError::QueueFull`] when backpressure rejects the
    /// request (nothing is enqueued; the rejection is counted).
    pub fn submit(&mut self, request: SequenceRequest) -> Result<SeqId, ServeError> {
        if request.prompt.is_empty() {
            return Err(ServeError::EmptyPrompt);
        }
        if request.arrival_s_micros < self.last_arrival_micros {
            return Err(ServeError::ArrivalOutOfOrder {
                last_micros: self.last_arrival_micros,
                arrival_micros: request.arrival_s_micros,
            });
        }
        if self.waiting.len() >= self.queue_capacity {
            self.rejected += 1;
            return Err(ServeError::QueueFull {
                capacity: self.queue_capacity,
            });
        }
        self.last_arrival_micros = request.arrival_s_micros;
        let id = SeqId(self.seqs.len());
        self.seqs.push(SeqRecord {
            arrival_s: request.arrival_s_micros as f64 / 1e6,
            request,
            state: SeqState::Queued,
            slot: None,
            admitted_s: None,
            first_token_s: None,
            prev_token_s: None,
            finish_s: None,
            tokens: Vec::new(),
            comm: CommCounters::default(),
            slot_frees: 0,
        });
        self.waiting.push_back(id);
        Ok(id)
    }

    /// Cancel a sequence. A queued sequence leaves the admission queue; a
    /// resident one releases its KV slot immediately (exactly once). In
    /// either case a [`ServeEvent::Cancelled`] is emitted and no further
    /// tokens will stream.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSequence`] for a handle never issued,
    /// [`ServeError::AlreadyRetired`] when the sequence already finished
    /// or was cancelled.
    pub fn cancel(&mut self, id: SeqId) -> Result<(), ServeError> {
        let Some(rec) = self.seqs.get_mut(id.0) else {
            return Err(ServeError::UnknownSequence { id });
        };
        match rec.state {
            SeqState::Queued => {
                rec.state = SeqState::Cancelled;
                rec.finish_s = Some(self.now_s);
                self.waiting.retain(|&w| w != id);
            }
            SeqState::Prefilling | SeqState::Decoding => {
                rec.state = SeqState::Cancelled;
                rec.finish_s = Some(self.now_s);
                if let Some(idx) = rec.slot.take() {
                    if let Some(gone) = self.pool.get_mut(idx).and_then(Option::take) {
                        rec.comm = gone.state.comm;
                        rec.slot_frees += 1;
                    }
                }
                self.resident.retain(|&r| r != id);
            }
            SeqState::Finished | SeqState::Cancelled => {
                return Err(ServeError::AlreadyRetired { id });
            }
        }
        self.events.push_back(ServeEvent::Cancelled {
            id,
            t_s: self.now_s,
        });
        Ok(())
    }

    /// Drain pending events (admissions, streamed tokens, completions,
    /// cancellations) in emission order.
    pub fn poll_events(&mut self) -> Vec<ServeEvent> {
        self.events.drain(..).collect()
    }

    /// Run rounds until no sequence is queued or resident. Idle gaps
    /// before a queued arrival jump the virtual clock forward.
    pub fn run_until_idle(&mut self) {
        loop {
            self.admit_waiting();
            if !self.resident.is_empty() {
                self.round();
                continue;
            }
            let next = self
                .waiting
                .front()
                .and_then(|id| self.seqs.get(id.0))
                .map(|r| r.arrival_s);
            let Some(next) = next else { return };
            if next <= self.now_s {
                // Unreachable with a consistent queue (free slots exist
                // when nothing is resident); bail rather than spin.
                return;
            }
            self.now_s = next;
        }
    }

    /// Advance the virtual clock to `t_s`: run rounds while work is
    /// resident; once idle, jump straight to `t_s`.
    fn advance_to(&mut self, t_s: f64) {
        loop {
            self.admit_waiting();
            if self.resident.is_empty() {
                self.now_s = self.now_s.max(t_s);
                return;
            }
            if self.now_s >= t_s {
                return;
            }
            self.round();
        }
    }

    /// Drive a complete timed trace: each request is submitted when the
    /// virtual clock reaches its `arrival_s_micros` (requests must be
    /// sorted by arrival; out-of-order entries surface as typed errors in
    /// the result), `cancels` are `(at_micros, request index)` pairs
    /// applied at their times, and the server then runs until drained.
    ///
    /// Submissions at the same instant as a cancellation are delivered
    /// first. Cancels aimed at rejected or not-yet-submitted requests are
    /// ignored; cancelling an already-finished sequence is a no-op.
    pub fn run_trace(
        &mut self,
        requests: &[SequenceRequest],
        cancels: &[(u64, usize)],
    ) -> TraceOutcome {
        let mut cancels: Vec<(u64, usize)> = cancels.to_vec();
        cancels.sort_by_key(|&(t, _)| t);
        let mut submissions: Vec<Result<SeqId, ServeError>> = Vec::with_capacity(requests.len());
        let mut ids: Vec<Option<SeqId>> = vec![None; requests.len()];
        let mut si = 0usize;
        let mut ci = 0usize;
        loop {
            let next_sub = requests.get(si).map(|r| r.arrival_s_micros);
            let next_cancel = cancels.get(ci).map(|&(t, _)| t);
            let (t_micros, is_submit) = match (next_sub, next_cancel) {
                (Some(s), Some(c)) if s <= c => (s, true),
                (Some(s), None) => (s, true),
                (None, Some(c)) | (Some(_), Some(c)) => (c, false),
                (None, None) => break,
            };
            self.advance_to(t_micros as f64 / 1e6);
            if is_submit {
                if let Some(req) = requests.get(si) {
                    let res = self.submit(req.clone());
                    if let (Ok(id), Some(entry)) = (&res, ids.get_mut(si)) {
                        *entry = Some(*id);
                    }
                    submissions.push(res);
                }
                si += 1;
            } else {
                if let Some(&(_, target)) = cancels.get(ci) {
                    if let Some(&Some(id)) = ids.get(target) {
                        // Already-retired sequences make this a no-op.
                        let _ = self.cancel(id);
                    }
                }
                ci += 1;
            }
        }
        self.run_until_idle();
        TraceOutcome {
            submissions,
            report: self.report(),
        }
    }

    /// Admit queued arrivals into free KV slots, FCFS, exactly as the
    /// offline scheduler does at each round boundary.
    fn admit_waiting(&mut self) {
        while self.resident.len() < self.slots {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let Some(rec) = self.seqs.get(id.0) else {
                self.waiting.pop_front();
                continue;
            };
            if rec.arrival_s > self.now_s {
                break;
            }
            let request = rec.request.clone();
            self.waiting.pop_front();
            let slot = self.engine.new_slot(id.0, &request);
            let idx = match self
                .pool
                .iter_mut()
                .enumerate()
                .find(|(_, entry)| entry.is_none())
            {
                Some((free, entry)) => {
                    *entry = Some(slot);
                    free
                }
                None => {
                    self.pool.push(Some(slot));
                    self.pool.len() - 1
                }
            };
            if let Some(rec) = self.seqs.get_mut(id.0) {
                rec.state = SeqState::Prefilling;
                rec.admitted_s = Some(self.now_s);
                rec.slot = Some(idx);
            }
            self.resident.push(id);
            self.events.push_back(ServeEvent::Admitted {
                id,
                t_s: self.now_s,
            });
        }
        self.peak_resident = self.peak_resident.max(self.resident.len());
    }

    /// One pipeline round: assign slots with the offline scheduler's
    /// policy (decode first, FCFS prefill with the remaining budget,
    /// chained first decode), execute via the shared batch machinery,
    /// stream the produced tokens, and evict completions.
    fn round(&mut self) {
        self.now_s += self.round_s;
        self.rounds += 1;
        let mut plan = RoundPlan::default();

        // Decode slots claimed at round start (prefill-complete residents)
        // — the budget the offline scheduler reserves before prefill.
        let mut decoding = 0usize;
        for &id in &self.resident {
            let Some(idx) = self.seqs.get(id.0).and_then(|r| r.slot) else {
                continue;
            };
            let Some(slot) = self.pool.get(idx).and_then(Option::as_ref) else {
                continue;
            };
            if slot.prefill_pos == slot.prompt.len() && slot.out.len() < slot.target {
                decoding += 1;
            }
        }
        let mut budget = self.slots.saturating_sub(decoding) as u64;

        // FCFS prefill in admission order; a prefill that completes this
        // round chains straight into its first decode.
        let mut planned: Vec<(SeqId, usize, Action)> = Vec::with_capacity(self.resident.len());
        let mut prefilled = 0u64;
        let mut decoded = 0u64;
        for &id in &self.resident {
            let Some(idx) = self.seqs.get(id.0).and_then(|r| r.slot) else {
                continue;
            };
            let Some(slot) = self.pool.get(idx).and_then(Option::as_ref) else {
                continue;
            };
            let remaining = (slot.prompt.len() - slot.prefill_pos) as u64;
            let mut action = Action {
                prefill: 0,
                decode: false,
            };
            if remaining > 0 && budget > 0 {
                let take = remaining.min(budget);
                budget -= take;
                prefilled += take;
                action.prefill = take as u32;
                plan.prefill.push((id.0, action.prefill));
            }
            let done_after = slot.prefill_pos + action.prefill as usize == slot.prompt.len();
            if done_after && slot.out.len() < slot.target {
                action.decode = true;
                decoded += 1;
                plan.decode.push(id.0);
            }
            if action.prefill > 0 || action.decode {
                planned.push((id, idx, action));
            }
        }
        self.prefill_tokens += prefilled;
        self.decoded_tokens += decoded;

        // Execute the round through the shared (rayon-or-serial) batch
        // machinery: hand out disjoint &mut borrows of the pool.
        {
            let mut available: Vec<Option<&mut SeqSlot>> =
                self.pool.iter_mut().map(Option::as_mut).collect();
            let mut work: Vec<(&mut SeqSlot, Action)> = Vec::with_capacity(planned.len());
            for &(_, idx, action) in &planned {
                if let Some(slot) = available.get_mut(idx).and_then(Option::take) {
                    work.push((slot, action));
                }
            }
            self.engine.run_round(work);
        }

        // Stream freshly decoded tokens and advance lifecycle states.
        let now = self.now_s;
        for &(id, idx, action) in &planned {
            let Some(slot) = self.pool.get(idx).and_then(Option::as_ref) else {
                continue;
            };
            let Some(rec) = self.seqs.get_mut(id.0) else {
                continue;
            };
            if action.decode {
                if let Some(&token) = slot.out.last() {
                    let index = slot.out.len() - 1;
                    rec.tokens.push(token);
                    if rec.first_token_s.is_none() {
                        rec.first_token_s = Some(now);
                        self.ttfts.push(now - rec.arrival_s);
                    }
                    if let Some(prev) = rec.prev_token_s {
                        self.gaps.push(now - prev);
                    }
                    rec.prev_token_s = Some(now);
                    self.events.push_back(ServeEvent::Token {
                        id,
                        index,
                        token,
                        t_s: now,
                    });
                }
            }
            if rec.state == SeqState::Prefilling && slot.prefill_pos == slot.prompt.len() {
                rec.state = SeqState::Decoding;
            }
        }

        // Evict completions (freeing their KV slots) and account the
        // surviving pool footprint.
        let resident = std::mem::take(&mut self.resident);
        let mut kv_bytes = 0u64;
        for id in resident {
            let Some(idx) = self.seqs.get(id.0).and_then(|r| r.slot) else {
                continue;
            };
            let finished = self
                .pool
                .get(idx)
                .and_then(Option::as_ref)
                .is_some_and(SeqSlot::finished);
            if finished {
                let Some(done) = self.pool.get_mut(idx).and_then(Option::take) else {
                    continue;
                };
                if let Some(rec) = self.seqs.get_mut(id.0) {
                    rec.comm = done.state.comm;
                    rec.slot = None;
                    rec.slot_frees += 1;
                    rec.state = SeqState::Finished;
                    rec.finish_s = Some(now);
                }
                self.events.push_back(ServeEvent::Finished { id, t_s: now });
            } else {
                kv_bytes += self
                    .pool
                    .get(idx)
                    .and_then(Option::as_ref)
                    .map_or(0, |s| s.state.kv_bytes_fp16());
                self.resident.push(id);
            }
        }
        self.peak_kv_bytes = self.peak_kv_bytes.max(kv_bytes);
        self.plans.push(plan);
    }

    /// Aggregate SLO statistics so far.
    pub fn slo_report(&self) -> SloReport {
        let mut ttfts = self.ttfts.clone();
        ttfts.sort_by(f64::total_cmp);
        let mut gaps = self.gaps.clone();
        gaps.sort_by(f64::total_cmp);
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        SloReport {
            submitted: self.seqs.len(),
            completed: self
                .seqs
                .iter()
                .filter(|r| r.state == SeqState::Finished)
                .count(),
            cancelled: self
                .seqs
                .iter()
                .filter(|r| r.state == SeqState::Cancelled)
                .count(),
            rejected: self.rejected,
            rounds: self.rounds,
            prefill_tokens: self.prefill_tokens,
            decoded_tokens: self.decoded_tokens,
            peak_resident: self.peak_resident,
            peak_kv_bytes_fp16: self.peak_kv_bytes,
            makespan_s: self.now_s,
            decode_tokens_per_s_virtual: if self.now_s > 0.0 {
                self.decoded_tokens as f64 / self.now_s
            } else {
                0.0
            },
            ttft_p50_s: percentile(&ttfts, 0.50),
            ttft_p99_s: percentile(&ttfts, 0.99),
            ttft_mean_s: mean(&ttfts),
            tpot_p50_s: percentile(&gaps, 0.50),
            tpot_p99_s: percentile(&gaps, 0.99),
            tpot_mean_s: mean(&gaps),
        }
    }

    /// The full report: SLO summary, per-sequence outcomes, round log.
    pub fn report(&self) -> ServeReport {
        let outcomes = self
            .seqs
            .iter()
            .enumerate()
            .map(|(i, r)| SequenceOutcome {
                id: SeqId(i),
                state: r.state,
                arrival_s: r.arrival_s,
                admitted_s: r.admitted_s,
                ttft_s: r.first_token_s.map(|t| t - r.arrival_s),
                finish_s: r.finish_s,
                tokens: r.tokens.clone(),
                comm: r.comm,
                slot_frees: r.slot_frees,
            })
            .collect();
        ServeReport {
            slo: self.slo_report(),
            outcomes,
            plans: self.plans.clone(),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0.0 for an
/// empty sample, matching an idle server's report).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted.get(idx).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::DataflowExecutor;
    use hnlpu_model::{zoo, ModelWeights, WeightGenerator};
    use hnlpu_sim::SimConfig;

    fn engine() -> BatchedDataflowExecutor {
        let card = zoo::dataflow_test_model();
        let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(2026));
        BatchedDataflowExecutor::new(DataflowExecutor::new(w), 216)
    }

    fn scheduler() -> BatchScheduler {
        BatchScheduler::new(SimConfig::paper_default(), 2048)
    }

    fn server(queue_capacity: usize) -> OnlineServer {
        OnlineServer::new(engine(), &scheduler(), queue_capacity).expect("capacity fits")
    }

    #[test]
    fn online_matches_offline_plan_and_tokens() {
        let requests = vec![
            SequenceRequest::greedy(0, vec![1, 5, 9], 8),
            SequenceRequest::greedy(40_000, vec![100, 2], 5),
            SequenceRequest::greedy(2_000_000, vec![64], 12),
        ];
        let eng = engine();
        let sched = scheduler();
        let (offline, offline_plans) = {
            let sim_reqs: Vec<_> = requests
                .iter()
                .map(SequenceRequest::to_sim_request)
                .collect();
            sched.plan(&sim_reqs)
        };
        let offline_run = eng
            .execute_plan(&requests, &offline_plans)
            .expect("offline plan executes");

        let mut server = OnlineServer::new(eng, &sched, requests.len()).expect("fits");
        let outcome = server.run_trace(&requests, &[]);
        assert!(outcome.submissions.iter().all(Result::is_ok));
        assert_eq!(outcome.report.plans, offline_plans);
        for (out, offline_out) in outcome.report.outcomes.iter().zip(&offline_run.outputs) {
            assert_eq!(&out.tokens, offline_out);
            assert_eq!(out.state, SeqState::Finished);
        }
        // Finish times replay the analytical completions exactly (same
        // f64 operations in the same order).
        let mut online_finish: Vec<f64> = outcome
            .report
            .outcomes
            .iter()
            .filter_map(|o| o.finish_s)
            .collect();
        online_finish.sort_by(f64::total_cmp);
        let mut offline_finish: Vec<f64> = offline.completions.iter().map(|c| c.finish_s).collect();
        offline_finish.sort_by(f64::total_cmp);
        assert_eq!(online_finish, offline_finish);
    }

    #[test]
    fn tokens_stream_before_completion() {
        let mut server = server(4);
        let id = server
            .submit(SequenceRequest::greedy(0, vec![7, 3], 5))
            .expect("accepted");
        // Run rounds manually until the first token appears; the sequence
        // must still be live (decoding) at that moment.
        let mut streamed_early = false;
        for _ in 0..3 {
            server.admit_waiting();
            server.round();
            let events = server.poll_events();
            if events
                .iter()
                .any(|e| matches!(e, ServeEvent::Token { id: t, .. } if *t == id))
                && server.state_of(id) == Some(SeqState::Decoding)
            {
                streamed_early = true;
                break;
            }
        }
        assert!(streamed_early, "no token streamed while live");
        server.run_until_idle();
        assert_eq!(server.state_of(id), Some(SeqState::Finished));
        assert_eq!(server.tokens_of(id).map(<[u32]>::len), Some(5));
    }

    #[test]
    fn queue_full_rejection_is_typed() {
        let mut server = server(1);
        assert!(server
            .submit(SequenceRequest::greedy(0, vec![1], 2))
            .is_ok());
        let err = server
            .submit(SequenceRequest::greedy(0, vec![2], 2))
            .expect_err("queue of 1 is full");
        assert_eq!(err, ServeError::QueueFull { capacity: 1 });
        server.run_until_idle();
        assert_eq!(server.slo_report().rejected, 1);
        assert_eq!(server.slo_report().completed, 1);
    }

    #[test]
    fn empty_prompt_rejected() {
        let mut server = server(4);
        assert_eq!(
            server.submit(SequenceRequest::greedy(0, vec![], 1)),
            Err(ServeError::EmptyPrompt)
        );
    }

    #[test]
    fn out_of_order_arrival_rejected() {
        let mut server = server(4);
        assert!(server
            .submit(SequenceRequest::greedy(5_000, vec![1], 1))
            .is_ok());
        assert_eq!(
            server.submit(SequenceRequest::greedy(4_999, vec![2], 1)),
            Err(ServeError::ArrivalOutOfOrder {
                last_micros: 5_000,
                arrival_micros: 4_999,
            })
        );
    }

    #[test]
    fn cancel_queued_sequence_never_runs() {
        let mut server = server(8);
        let id = server
            .submit(SequenceRequest::greedy(0, vec![1, 2], 4))
            .expect("accepted");
        server.cancel(id).expect("cancellable while queued");
        server.run_until_idle();
        assert_eq!(server.state_of(id), Some(SeqState::Cancelled));
        assert_eq!(server.tokens_of(id).map(<[u32]>::len), Some(0));
        let report = server.report();
        assert_eq!(report.outcomes[0].slot_frees, 0);
        assert_eq!(report.slo.rounds, 0);
    }

    #[test]
    fn cancel_resident_frees_slot_exactly_once() {
        let mut server = server(8);
        let id = server
            .submit(SequenceRequest::greedy(0, vec![1, 2, 3], 50))
            .expect("accepted");
        server.admit_waiting();
        server.round();
        assert_eq!(server.resident(), 1);
        server.cancel(id).expect("cancellable while resident");
        assert_eq!(server.resident(), 0);
        assert_eq!(server.cancel(id), Err(ServeError::AlreadyRetired { id }));
        server.run_until_idle();
        let report = server.report();
        assert_eq!(report.outcomes[0].slot_frees, 1);
        assert_eq!(report.outcomes[0].state, SeqState::Cancelled);
        // The freed slot is reusable: a new sequence admits and finishes.
        let id2 = server
            .submit(SequenceRequest::greedy(10_000, vec![9], 2))
            .expect("accepted");
        server.run_until_idle();
        assert_eq!(server.state_of(id2), Some(SeqState::Finished));
    }

    #[test]
    fn unknown_sequence_cancel_is_typed() {
        let mut server = server(4);
        assert_eq!(
            server.cancel(SeqId(7)),
            Err(ServeError::UnknownSequence { id: SeqId(7) })
        );
    }

    #[test]
    fn zero_decode_requests_finish_with_empty_stream() {
        let mut server = server(4);
        let id = server
            .submit(SequenceRequest::greedy(0, vec![3, 1, 4], 0))
            .expect("accepted");
        server.run_until_idle();
        assert_eq!(server.state_of(id), Some(SeqState::Finished));
        assert_eq!(server.tokens_of(id).map(<[u32]>::len), Some(0));
        assert_eq!(server.report().outcomes[0].slot_frees, 1);
    }

    #[test]
    fn slo_report_counts_reconcile() {
        let requests: Vec<SequenceRequest> = (0..6)
            .map(|i| SequenceRequest::greedy(i * 30_000, vec![1 + i as u32, 2], 4))
            .collect();
        let mut server = server(16);
        let outcome = server.run_trace(&requests, &[]);
        let slo = &outcome.report.slo;
        assert_eq!(slo.submitted, 6);
        assert_eq!(slo.completed, 6);
        assert_eq!(slo.decoded_tokens, 6 * 4);
        assert_eq!(slo.prefill_tokens, 6 * 2);
        assert_eq!(slo.rounds, outcome.report.plans.len() as u64);
        assert!(slo.ttft_p50_s > 0.0 && slo.ttft_p99_s >= slo.ttft_p50_s);
        assert!(slo.tpot_p50_s > 0.0 && slo.tpot_p99_s >= slo.tpot_p50_s);
        assert!(slo.makespan_s > 0.0);
        // 4 tokens per sequence -> 3 gaps each.
        let streamed: usize = outcome.report.outcomes.iter().map(|o| o.tokens.len()).sum();
        assert_eq!(streamed as u64, slo.decoded_tokens);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[2.0], 0.99), 2.0);
    }
}
