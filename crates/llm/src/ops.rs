//! Nonlinear operators: RMSNorm, softmax, SwiGLU, rotary embedding, top-k.
//! These are the operations the VEX unit implements in hardware (§4.3).

/// Root-mean-square normalization (no learned scale in this reproduction;
/// synthetic weights make a learned gain redundant).
pub fn rmsnorm(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    rmsnorm_into(x, &mut out);
    out
}

/// Allocation-free [`rmsnorm`]: normalize `x` into `out`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn rmsnorm_into(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "length mismatch");
    let eps = 1e-5f32;
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = v * inv;
    }
}

/// Numerically-stable softmax.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Allocation-free [`softmax`]: replace `x` with its softmax.
pub fn softmax_in_place(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let m = x.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    for v in x.iter_mut() {
        *v = (*v - m).exp();
    }
    let sum: f32 = x.iter().sum();
    for v in x.iter_mut() {
        *v /= sum;
    }
}

/// SiLU (swish) activation.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// SwiGLU combine: `silu(gate) ⊙ up`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn swiglu(gate: &[f32], up: &[f32]) -> Vec<f32> {
    let mut out = gate.to_vec();
    swiglu_in_place(&mut out, up);
    out
}

/// Allocation-free [`swiglu`]: overwrite `gate` with `silu(gate) ⊙ up`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn swiglu_in_place(gate: &mut [f32], up: &[f32]) {
    assert_eq!(gate.len(), up.len(), "length mismatch");
    for (g, &u) in gate.iter_mut().zip(up.iter()) {
        *g = silu(*g) * u;
    }
}

/// Apply rotary position embedding in place to a head vector of even
/// dimension at `position`.
///
/// # Panics
///
/// Panics if the head dimension is odd.
pub fn rope(head: &mut [f32], position: usize) {
    assert!(head.len().is_multiple_of(2), "rope needs an even head dim");
    let d = head.len();
    for i in 0..d / 2 {
        let theta = position as f32 / 10_000f32.powf(2.0 * i as f32 / d as f32);
        let (sin, cos) = theta.sin_cos();
        let (a, b) = (head[2 * i], head[2 * i + 1]);
        head[2 * i] = a * cos - b * sin;
        head[2 * i + 1] = a * sin + b * cos;
    }
}

/// Indices of the `k` largest values, in descending value order with
/// deterministic (lowest-index) tie-breaking — hardware comparator trees
/// are deterministic, so the reference must be too.
///
/// Uses O(n) partial selection (`select_nth_unstable_by`) plus an O(k log k)
/// sort of the survivors instead of sorting all `n` candidates; the
/// index-then-value comparator is a total order, so the selected set and
/// its order are identical to a full sort.
pub fn topk(x: &[f32], k: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    topk_into(x, k, &mut idx);
    idx
}

/// Allocation-free [`topk`]: fill `idx` with the winners, reusing its
/// storage (the router calls this every layer of every step).
pub fn topk_into(x: &[f32], k: usize, idx: &mut Vec<usize>) {
    idx.clear();
    if k == 0 {
        return;
    }
    idx.extend(0..x.len());
    let cmp = |&a: &usize, &b: &usize| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    };
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_unstable_by(cmp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rmsnorm_produces_unit_rms() {
        let y = rmsnorm(&[3.0, -4.0, 12.0, 0.0]);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / y.len() as f32).sqrt();
        assert!((rms - 1.0).abs() < 1e-3, "rms = {rms}");
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 3.0, 2.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[1] > p[2] && p[2] > p[0]);
    }

    #[test]
    fn softmax_handles_large_inputs() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(10.0) > 9.9);
        assert!(silu(-10.0) > -0.01 && silu(-10.0) < 0.0);
    }

    #[test]
    fn rope_preserves_norm_and_position_zero_is_identity() {
        let mut h = vec![0.3f32, -0.7, 1.1, 0.2];
        let orig = h.clone();
        rope(&mut h, 0);
        assert_eq!(h, orig);
        rope(&mut h, 7);
        let n0: f32 = orig.iter().map(|v| v * v).sum();
        let n1: f32 = h.iter().map(|v| v * v).sum();
        assert!((n0 - n1).abs() < 1e-4);
        assert_ne!(h, orig);
    }

    #[test]
    fn topk_selects_and_breaks_ties_low_index() {
        assert_eq!(topk(&[0.1, 0.9, 0.5, 0.9], 2), vec![1, 3]);
        assert_eq!(topk(&[1.0, 1.0, 1.0], 2), vec![0, 1]);
    }

    #[test]
    fn empty_inputs() {
        assert!(softmax(&[]).is_empty());
        assert!(topk(&[], 3).is_empty());
        assert!(topk(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn in_place_variants_match_allocating_ones() {
        let x = [0.3f32, -1.2, 4.0, 0.0, 2.5];
        let mut n = [0.0f32; 5];
        rmsnorm_into(&x, &mut n);
        assert_eq!(n.to_vec(), rmsnorm(&x));
        let mut s = x;
        softmax_in_place(&mut s);
        assert_eq!(s.to_vec(), softmax(&x));
        let up = [1.0f32, -2.0, 0.5, 3.0, 1.5];
        let mut g = x;
        swiglu_in_place(&mut g, &up);
        assert_eq!(g.to_vec(), swiglu(&x, &up));
    }

    /// The pre-optimization `topk`: a full sort of all candidate indices.
    /// Kept as the oracle the partial-selection rewrite is checked against.
    fn topk_full_sort(x: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..x.len()).collect();
        idx.sort_by(|&a, &b| {
            x[b].partial_cmp(&x[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }

    proptest! {
        #[test]
        fn softmax_is_distribution(xs in prop::collection::vec(-50f32..50.0, 1..64)) {
            let p = softmax(&xs);
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn topk_returns_k_distinct(xs in prop::collection::vec(-5f32..5.0, 1..64), k in 1usize..8) {
            let k = k.min(xs.len());
            let ids = topk(&xs, k);
            prop_assert_eq!(ids.len(), k);
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), k);
        }

        /// Partial selection must be indistinguishable from the old full
        /// sort, including order and tie-breaks. Values are drawn from a
        /// tiny lattice so duplicates (ties) are common.
        #[test]
        fn topk_matches_full_sort_oracle(
            xs in prop::collection::vec(-3i32..3, 1..96),
            k in 0usize..12,
        ) {
            let xs: Vec<f32> = xs.into_iter().map(|v| v as f32 * 0.5).collect();
            prop_assert_eq!(topk(&xs, k), topk_full_sort(&xs, k));
        }
    }
}
