//! Batched parallel inference over the 216 pipeline slots (§5.2).
//!
//! [`BatchedDataflowExecutor`] runs many sequences through one
//! [`DataflowExecutor`] the way the hardware does: a pool of KV-cache
//! slots (one per resident sequence), continuous-batching admission and
//! eviction, and per-round mixed prefill + decode stepping. The schedule
//! itself comes from `hnlpu-sim`'s [`BatchScheduler`] as a list of
//! [`RoundPlan`]s, so the functional engine executes *exactly* the slot
//! assignments the cycle-level timing model priced — the differential
//! harness in `tests/` asserts the token streams are identical to running
//! [`DataflowExecutor`] per sequence.
//!
//! Sequences are mutually independent (each owns its KV state), so rounds
//! fan out across cores with `rayon` when the `parallel` feature (default)
//! is on; with `--no-default-features` the same rounds run serially.
//! Both paths are bit-exact: no cross-sequence arithmetic exists.

use crate::dataflow::{CommCounters, DataflowExecutor, DataflowState, GRID};
use crate::kv_cache::{PageBuf, PrefixCache, PrefixCacheConfig, PrefixStats};
use crate::reference::PrefillStats;
use crate::sampler::Sampler;
use crate::scratch::Scratch;
use hnlpu_sim::scheduler::{BatchScheduler, PrefixOracle, Request, RoundPlan};
use serde::Serialize;
use std::fmt;
use std::time::Instant;

/// Why a batched run was rejected.
///
/// Requests and round plans are external input to the engine (the plans
/// normally come from `hnlpu-sim`'s scheduler, but [`execute_plan`]
/// accepts any), so malformed ones surface as typed errors instead of
/// aborting a process that may be serving hundreds of other sequences.
///
/// [`execute_plan`]: BatchedDataflowExecutor::execute_plan
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// A request's prompt was empty.
    EmptyPrompt {
        /// Offending request index.
        seq: usize,
    },
    /// A plan referenced a sequence outside the request slice.
    UnknownSequence {
        /// Referenced sequence id.
        seq: usize,
    },
    /// A plan decoded a sequence that was never admitted (no prefill
    /// entry ever named it).
    NotAdmitted {
        /// Referenced sequence id.
        seq: usize,
    },
    /// A plan gave one sequence two actions in the same round.
    DuplicateAction {
        /// Referenced sequence id.
        seq: usize,
    },
    /// A plan prefilled past the end of a sequence's prompt.
    PrefillOverrun {
        /// Referenced sequence id.
        seq: usize,
    },
    /// A plan decoded a sequence before its prefill finished.
    DecodeBeforePrefill {
        /// Referenced sequence id.
        seq: usize,
    },
    /// A plan decoded a sequence past its decode budget.
    DecodeOverrun {
        /// Referenced sequence id.
        seq: usize,
    },
    /// Admission would exceed the engine's KV slot pool.
    PoolOverflow {
        /// The engine's slot capacity.
        slots: usize,
    },
    /// The scheduler plans more slots than the engine pools.
    SlotsExceedCapacity {
        /// Slots the scheduler schedules.
        scheduled: usize,
        /// Slots the engine pools.
        capacity: usize,
    },
    /// The plan ended with a sequence still resident (unfinished).
    Unfinished {
        /// A sequence left resident.
        seq: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BatchError::EmptyPrompt { seq } => {
                write!(f, "request {seq}: prompt must contain at least one token")
            }
            BatchError::UnknownSequence { seq } => {
                write!(
                    f,
                    "plan references sequence {seq} outside the request slice"
                )
            }
            BatchError::NotAdmitted { seq } => {
                write!(f, "plan decodes sequence {seq} before it was admitted")
            }
            BatchError::DuplicateAction { seq } => {
                write!(f, "plan gives sequence {seq} two actions in one round")
            }
            BatchError::PrefillOverrun { seq } => {
                write!(f, "plan prefills past the prompt of sequence {seq}")
            }
            BatchError::DecodeBeforePrefill { seq } => {
                write!(f, "plan decodes sequence {seq} before prefill finished")
            }
            BatchError::DecodeOverrun { seq } => {
                write!(f, "plan decodes sequence {seq} past its budget")
            }
            BatchError::PoolOverflow { slots } => {
                write!(f, "admission would exceed the {slots}-slot pool")
            }
            BatchError::SlotsExceedCapacity {
                scheduled,
                capacity,
            } => write!(
                f,
                "scheduler schedules {scheduled} slots but the engine pools {capacity}"
            ),
            BatchError::Unfinished { seq } => {
                write!(f, "plan ended with sequence {seq} still resident")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// One sequence to serve: real prompt tokens plus a decode budget.
#[derive(Debug, Clone)]
pub struct SequenceRequest {
    /// Arrival time in microseconds (scheduler admission order).
    pub arrival_s_micros: u64,
    /// Prompt token ids (non-empty).
    pub prompt: Vec<u32>,
    /// Tokens to decode after prefill.
    pub decode_tokens: u32,
    /// Per-sequence sampling policy.
    pub sampler: Sampler,
}

impl SequenceRequest {
    /// A greedy-decoded request.
    pub fn greedy(arrival_s_micros: u64, prompt: Vec<u32>, decode_tokens: u32) -> Self {
        SequenceRequest {
            arrival_s_micros,
            prompt,
            decode_tokens,
            sampler: Sampler::Greedy,
        }
    }

    /// The timing-model view of this request (token counts only).
    pub fn to_sim_request(&self) -> Request {
        Request::new(
            self.arrival_s_micros,
            self.prompt.len() as u32,
            self.decode_tokens,
        )
    }
}

/// Typed accounting for fault recovery: sequences evicted by chip
/// failures and what became of them. Offline plan replay never injects
/// faults, so its reports carry the all-zero default; the online server
/// fills these in as its [`crate::fault::FaultPlan`] unfolds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryStats {
    /// In-flight sequences evicted because a chip holding their KV died.
    pub evictions: u64,
    /// Evicted sequences re-admitted and re-prefilled into fresh slots.
    pub resumed: u64,
    /// Evicted sequences abandoned after exhausting recovery retries.
    pub failed: u64,
    /// Prompt + already-emitted tokens re-prefilled during recoveries.
    pub re_prefill_tokens: u64,
}

impl RecoveryStats {
    /// True when no fault ever touched a resident sequence.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// Result of one batched run.
#[derive(Debug, Clone)]
pub struct BatchRunReport {
    /// Fault-recovery accounting (all zero for offline plan replay).
    pub recovery: RecoveryStats,
    /// Decoded token streams, indexed like the input request slice.
    pub outputs: Vec<Vec<u32>>,
    /// Per-sequence communication counters, same indexing.
    pub per_sequence_comm: Vec<CommCounters>,
    /// Aggregate counters (the sum of `per_sequence_comm`).
    pub comm: CommCounters,
    /// Pipeline rounds executed.
    pub rounds: u64,
    /// Total decoded tokens.
    pub decoded_tokens: u64,
    /// Total prefilled prompt tokens.
    pub prefill_tokens: u64,
    /// Matmul prefill panels executed across all sequences. A healthy
    /// schedule keeps this far below `prefill_tokens` — equality means
    /// every panel degenerated to T=1.
    pub prefill_panels: u64,
    /// Tokens in the widest prefill panel any sequence ran.
    pub prefill_max_panel: usize,
    /// Most sequences resident at once (KV slots in use).
    pub peak_resident: usize,
    /// Largest pooled KV footprint at fp16 storage, bytes. This is the
    /// *logical* footprint (what dense caches of the same fill would
    /// occupy); shared pages are counted once per referencing sequence.
    pub peak_kv_bytes_fp16: u64,
    /// Largest physically private KV footprint at fp16 storage, bytes:
    /// pages owned exclusively by resident sequences. The gap to
    /// `peak_kv_bytes_fp16` is capacity recovered by prefix sharing.
    pub peak_kv_owned_bytes_fp16: u64,
    /// Prefix-reuse counters (all zero when the engine runs dense).
    pub prefix: PrefixStats,
    /// Measured wall-clock time of the functional execution, seconds.
    pub wall_s: f64,
}

impl BatchRunReport {
    /// Measured functional decode rate, tokens/s.
    pub fn measured_decode_tokens_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.decoded_tokens as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Measured functional total token rate (prefill + decode), tokens/s.
    pub fn measured_tokens_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            (self.decoded_tokens + self.prefill_tokens) as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// A resident sequence: its KV state plus generation progress.
///
/// Shared between the offline plan replay here and the online serving
/// loop in [`crate::serve`], so both paths run sequences through the
/// identical per-round stepping code.
#[derive(Debug)]
pub(crate) struct SeqSlot {
    /// Index into the caller's request slice (or online sequence id).
    pub(crate) seq: usize,
    pub(crate) prompt: Vec<u32>,
    pub(crate) target: usize,
    pub(crate) sampler: Sampler,
    pub(crate) state: DataflowState,
    /// Per-slot scratch arena; its `logits()` hold the most recent step's
    /// output (valid once anything was stepped), and reusing it keeps the
    /// whole residency of the sequence allocation-free.
    pub(crate) scratch: Scratch,
    /// Prompt tokens consumed so far.
    pub(crate) prefill_pos: usize,
    /// Leading prompt positions attached from the shared prefix tree
    /// (never prefilled by this sequence).
    pub(crate) matched: usize,
    /// Whether the prefix tree was consulted for this residency.
    /// Consultation happens in the first round the slot receives prefill
    /// budget — the same instant the timing planner's oracle fires — so
    /// online and offline schedules see identical tree states.
    pub(crate) consulted: bool,
    /// Shared-pool page ids this sequence holds references on, released
    /// exactly once when the sequence leaves its slot.
    pub(crate) grant: Vec<u32>,
    /// Panel accounting for this sequence's prefill chunks.
    pub(crate) prefill_stats: PrefillStats,
    pub(crate) out: Vec<u32>,
}

impl SeqSlot {
    pub(crate) fn finished(&self) -> bool {
        self.prefill_pos == self.prompt.len() && self.out.len() == self.target
    }
}

/// What one sequence does during one round. A sequence whose prefill
/// completes mid-round chains straight into its first decode, so one item
/// can carry both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Action {
    /// Prompt tokens to consume first.
    pub(crate) prefill: u32,
    /// Then sample one token (stepping it back in unless it is the last).
    pub(crate) decode: bool,
}

/// The batched inference engine.
#[derive(Debug, Clone)]
pub struct BatchedDataflowExecutor {
    inner: DataflowExecutor,
    max_slots: usize,
    prefix: Option<PrefixCacheConfig>,
}

impl BatchedDataflowExecutor {
    /// An engine over `inner` with capacity for `max_slots` concurrently
    /// resident sequences (the hardware's 216 pipeline slots).
    ///
    /// # Panics
    ///
    /// Panics if `max_slots` is zero.
    pub fn new(inner: DataflowExecutor, max_slots: usize) -> Self {
        assert!(max_slots > 0, "need at least one sequence slot");
        BatchedDataflowExecutor {
            inner,
            max_slots,
            prefix: None,
        }
    }

    /// Enable paged prefix reuse: admitted prompts are matched against a
    /// shared radix tree and matched positions are attached by reference
    /// instead of being prefilled. `pages_per_block` is forced to the
    /// grid's shard count — one page per chip per committed block.
    ///
    /// Offline plan replay shares with an *unbounded* page budget so the
    /// timing plan and the functional execution agree on every match;
    /// `page_budget` governs the online server
    /// ([`crate::serve::OnlineServer`]), where admission and execution
    /// are the same loop and budgeted LRU eviction is safe.
    pub fn with_prefix_cache(mut self, mut cfg: PrefixCacheConfig) -> Self {
        cfg.pages_per_block = GRID * GRID;
        self.prefix = Some(cfg);
        self
    }

    /// The prefix-reuse configuration, when enabled.
    pub fn prefix_config(&self) -> Option<PrefixCacheConfig> {
        self.prefix
    }

    /// The wrapped per-sequence executor.
    pub fn executor(&self) -> &DataflowExecutor {
        &self.inner
    }

    /// Sequence-slot capacity.
    pub fn max_slots(&self) -> usize {
        self.max_slots
    }

    /// Plan with `scheduler` and execute: the timing model and the
    /// functional engine consume the same per-round slot assignments.
    ///
    /// Returns the functional report and the scheduler's analytical
    /// timing report for the identical schedule.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::SlotsExceedCapacity`] when the scheduler's
    /// slot count exceeds this engine's capacity, or any error listed for
    /// [`execute_plan`](Self::execute_plan).
    pub fn run_with_scheduler(
        &self,
        requests: &[SequenceRequest],
        scheduler: &BatchScheduler,
    ) -> Result<(BatchRunReport, hnlpu_sim::SchedulerReport), BatchError> {
        if scheduler.slots() > self.max_slots {
            return Err(BatchError::SlotsExceedCapacity {
                scheduled: scheduler.slots(),
                capacity: self.max_slots,
            });
        }
        let sim_reqs: Vec<Request> = requests
            .iter()
            .map(SequenceRequest::to_sim_request)
            .collect();
        let Some(cfg) = self.prefix else {
            let (timing, plans) = scheduler.plan(&sim_reqs);
            return Ok((self.execute_plan(requests, &plans)?, timing));
        };
        // Offline runs share with an unbounded budget: the planning
        // oracle and the executing engine replay the identical sequence
        // of match/commit operations on two fresh trees, so eviction
        // could only ever diverge through grant-release timing the
        // planner cannot see. With no eviction, plan and execution agree
        // on every matched length by construction.
        let shared = PrefixCacheConfig {
            page_budget: usize::MAX,
            ..cfg
        };
        let mut oracle = PlanOracle {
            requests,
            cache: PrefixCache::new(shared),
        };
        let (timing, plans) = scheduler.plan_with_prefixes(&sim_reqs, &mut oracle);
        let mut cache = PrefixCache::new(shared);
        Ok((
            self.execute_plan_impl(requests, &plans, Some(&mut cache))?,
            timing,
        ))
    }

    /// Execute `requests` following `plans` round by round.
    ///
    /// Admission assigns the lowest free KV slot the first time a sequence
    /// appears in a plan; eviction frees the slot in the round the
    /// sequence finishes, mirroring the sim scheduler's slot semantics.
    ///
    /// # Errors
    ///
    /// Returns a [`BatchError`] when a prompt is empty, a plan refers to a
    /// sequence out of range, asks for more work than a sequence has left,
    /// decodes a sequence before its prefill finished, overflows the slot
    /// pool, or leaves a sequence unfinished after the final round.
    pub fn execute_plan(
        &self,
        requests: &[SequenceRequest],
        plans: &[RoundPlan],
    ) -> Result<BatchRunReport, BatchError> {
        self.execute_plan_impl(requests, plans, None)
    }

    /// [`execute_plan`](Self::execute_plan), optionally reading and
    /// committing prompt prefixes through a shared [`PrefixCache`]. The
    /// cache must have been consulted by the planner that produced
    /// `plans` (see [`run_with_scheduler`](Self::run_with_scheduler));
    /// admission matches at round start, commits land after the round's
    /// compute, and a finished sequence's page grant is released in the
    /// round it leaves its slot.
    fn execute_plan_impl(
        &self,
        requests: &[SequenceRequest],
        plans: &[RoundPlan],
        mut cache: Option<&mut PrefixCache>,
    ) -> Result<BatchRunReport, BatchError> {
        for (seq, r) in requests.iter().enumerate() {
            if r.prompt.is_empty() {
                return Err(BatchError::EmptyPrompt { seq });
            }
        }
        let started = Instant::now();
        let mut pool: Vec<Option<SeqSlot>> = Vec::new();
        // seq id -> slot index while resident.
        let mut slot_of: Vec<Option<usize>> = vec![None; requests.len()];
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new(); requests.len()];
        let mut per_sequence_comm = vec![CommCounters::default(); requests.len()];
        let mut decoded_tokens = 0u64;
        let mut prefill_tokens = 0u64;
        let mut prefill_panels = 0u64;
        let mut prefill_max_panel = 0usize;
        let mut peak_resident = 0usize;
        let mut peak_kv_bytes = 0u64;
        let mut peak_kv_owned = 0u64;

        for plan in plans {
            // Admit sequences first referenced this round (prefill entries
            // are FCFS in admission order; decoders were admitted earlier).
            for &(seq, _) in &plan.prefill {
                let Some(entry) = slot_of.get(seq) else {
                    return Err(BatchError::UnknownSequence { seq });
                };
                if entry.is_none() {
                    let slot = self.admit(&mut pool, requests, seq)?;
                    if let Some(cache) = cache.as_deref_mut() {
                        if let Some(s) = pool.get_mut(slot).and_then(Option::as_mut) {
                            Self::attach_match(s, cache);
                        }
                    }
                    if let Some(entry) = slot_of.get_mut(seq) {
                        *entry = Some(slot);
                    }
                }
            }
            peak_resident = peak_resident.max(pool.iter().flatten().count());

            // Merge this round's assignments into one action per sequence
            // (a sequence may prefill AND chain into its first decode).
            let mut actions: Vec<(usize, Action)> = plan
                .prefill
                .iter()
                .map(|&(seq, n)| {
                    (
                        seq,
                        Action {
                            prefill: n,
                            decode: false,
                        },
                    )
                })
                .collect();
            for &seq in &plan.decode {
                match actions.iter_mut().find(|(s, _)| *s == seq) {
                    Some((_, action)) => action.decode = true,
                    None => actions.push((
                        seq,
                        Action {
                            prefill: 0,
                            decode: true,
                        },
                    )),
                }
            }

            // Index the pool once, then hand out disjoint &mut borrows.
            let mut work: Vec<(&mut SeqSlot, Action)> = Vec::new();
            let mut remaining: Vec<Option<&mut SeqSlot>> =
                pool.iter_mut().map(Option::as_mut).collect();
            for (seq, action) in actions {
                let slot_idx = match slot_of.get(seq) {
                    Some(&Some(idx)) => idx,
                    Some(&None) => return Err(BatchError::NotAdmitted { seq }),
                    None => return Err(BatchError::UnknownSequence { seq }),
                };
                // `remaining` is pool-sized and `slot_idx` came from a live
                // admission, so a miss here means the slot's `&mut` was
                // already taken: two actions for one sequence.
                let Some(slot) = remaining.get_mut(slot_idx).and_then(Option::take) else {
                    return Err(BatchError::DuplicateAction { seq });
                };
                if slot.prefill_pos + action.prefill as usize > slot.prompt.len() {
                    return Err(BatchError::PrefillOverrun { seq });
                }
                prefill_tokens += action.prefill as u64;
                if action.decode {
                    if slot.prefill_pos + action.prefill as usize != slot.prompt.len() {
                        return Err(BatchError::DecodeBeforePrefill { seq });
                    }
                    if slot.out.len() >= slot.target {
                        return Err(BatchError::DecodeOverrun { seq });
                    }
                    decoded_tokens += 1;
                }
                work.push((slot, action));
            }

            self.run_round(work);

            // Commit completed prompts into the shared tree before any
            // harvest below can drop their state: each new block's pages
            // are frozen in place (owned → shared, no copy) and later
            // rounds' admissions match against them.
            if let Some(cache) = cache.as_deref_mut() {
                for &(seq, _) in &plan.prefill {
                    let Some(&Some(idx)) = slot_of.get(seq) else {
                        continue;
                    };
                    let Some(slot) = pool.get_mut(idx).and_then(Option::as_mut) else {
                        continue;
                    };
                    if slot.prefill_pos == slot.prompt.len() {
                        let SeqSlot {
                            prompt,
                            state,
                            grant,
                            ..
                        } = slot;
                        cache.commit(prompt, |b| state.share_block(b), grant);
                    }
                }
            }

            // Evict finished sequences, harvesting their results.
            for slot in pool.iter_mut() {
                if slot.as_ref().is_some_and(SeqSlot::finished) {
                    let Some(mut done) = slot.take() else {
                        continue;
                    };
                    if let Some(cache) = cache.as_deref_mut() {
                        cache.release_grant(&mut done.grant);
                    }
                    if let Some(entry) = slot_of.get_mut(done.seq) {
                        *entry = None;
                    }
                    if let Some(comm) = per_sequence_comm.get_mut(done.seq) {
                        *comm = done.state.comm;
                    }
                    prefill_panels += done.prefill_stats.panels;
                    prefill_max_panel = prefill_max_panel.max(done.prefill_stats.max_panel);
                    if let Some(out) = outputs.get_mut(done.seq) {
                        *out = done.out;
                    }
                }
            }
            let kv_bytes: u64 = pool.iter().flatten().map(|s| s.state.kv_bytes_fp16()).sum();
            peak_kv_bytes = peak_kv_bytes.max(kv_bytes);
            let kv_owned: u64 = pool
                .iter()
                .flatten()
                .map(|s| s.state.kv_owned_bytes_fp16())
                .sum();
            peak_kv_owned = peak_kv_owned.max(kv_owned);
        }
        if let Some(still) = pool.iter().flatten().next() {
            return Err(BatchError::Unfinished { seq: still.seq });
        }

        Ok(BatchRunReport {
            recovery: RecoveryStats::default(),
            comm: per_sequence_comm.iter().copied().sum(),
            outputs,
            per_sequence_comm,
            rounds: plans.len() as u64,
            decoded_tokens,
            prefill_tokens,
            prefill_panels,
            prefill_max_panel,
            peak_resident,
            peak_kv_bytes_fp16: peak_kv_bytes,
            peak_kv_owned_bytes_fp16: peak_kv_owned,
            prefix: match &cache {
                Some(c) => c.stats(),
                None => PrefixStats::default(),
            },
            wall_s: started.elapsed().as_secs_f64(),
        })
    }

    /// Match a freshly admitted slot's prompt against the shared tree
    /// and attach the hit: matched full blocks by reference, the
    /// copy-on-write boundary page (if any) by copy. The slot then
    /// prefills only the unmatched suffix.
    pub(crate) fn attach_match(slot: &mut SeqSlot, cache: &mut PrefixCache) {
        slot.consulted = true;
        let m = cache.match_prompt(&slot.prompt);
        if m.matched == 0 {
            return;
        }
        cache.retain_match(&m, &mut slot.grant);
        slot.state.attach_prefix(m.matched, &m.blocks, cache.pool());
        slot.matched = m.matched;
        slot.prefill_pos = m.matched;
    }

    /// A fresh resident-sequence slot for `req`, tagged `seq`. Used by
    /// both the offline plan replay and the online serving loop so every
    /// sequence starts from identical KV/scratch state.
    pub(crate) fn new_slot(&self, seq: usize, req: &SequenceRequest) -> SeqSlot {
        SeqSlot {
            seq,
            prompt: req.prompt.clone(),
            target: req.decode_tokens as usize,
            sampler: req.sampler.clone(),
            state: self.inner.new_state(),
            scratch: self.inner.new_scratch(),
            prefill_pos: 0,
            matched: 0,
            consulted: false,
            grant: Vec::new(),
            prefill_stats: PrefillStats::default(),
            out: Vec::new(),
        }
    }

    /// Rebuild an evicted sequence's slot for re-admission: the KV context
    /// is cleared (the chip holding part of it died) and the prompt is
    /// extended with every token already emitted, so re-prefilling it
    /// reconstructs the exact attention context the next decode step
    /// expects.
    ///
    /// Token-exactness: the panel prefill is bit-identical to stepping
    /// tokens one at a time (`panel_prefill_is_bitwise_per_token_loop`
    /// pins this), and in the original run every emitted token except the
    /// last was stepped back into the machine. Re-prefilling
    /// `prompt ++ out` with logits on the final chunk therefore leaves
    /// the state and logits exactly where the interrupted sequence's next
    /// sample would have read them — the recovered stream continues
    /// bit-for-bit. Sampler state, emitted tokens, and panel stats are
    /// retained; only the context is rebuilt.
    pub(crate) fn recover_slot(&self, mut carcass: SeqSlot, req: &SequenceRequest) -> SeqSlot {
        debug_assert!(
            carcass.grant.is_empty(),
            "evicted slot must have released its page grant"
        );
        carcass.state.reset_context();
        let mut prompt = req.prompt.clone();
        prompt.extend_from_slice(&carcass.out);
        carcass.prompt = prompt;
        carcass.prefill_pos = 0;
        carcass.matched = 0;
        carcass.consulted = false;
        carcass
    }

    /// Place `seq` in the lowest free slot of the pool.
    fn admit(
        &self,
        pool: &mut Vec<Option<SeqSlot>>,
        requests: &[SequenceRequest],
        seq: usize,
    ) -> Result<usize, BatchError> {
        let req = requests
            .get(seq)
            .ok_or(BatchError::UnknownSequence { seq })?;
        let slot = self.new_slot(seq, req);
        if let Some((free, entry)) = pool
            .iter_mut()
            .enumerate()
            .find(|(_, entry)| entry.is_none())
        {
            *entry = Some(slot);
            return Ok(free);
        }
        if pool.len() >= self.max_slots {
            return Err(BatchError::PoolOverflow {
                slots: self.max_slots,
            });
        }
        pool.push(Some(slot));
        Ok(pool.len() - 1)
    }

    /// One pipeline round: every work item advances independently, so this
    /// is where sequence-level parallelism happens.
    #[cfg(feature = "parallel")]
    pub(crate) fn run_round(&self, work: Vec<(&mut SeqSlot, Action)>) {
        use rayon::prelude::*;
        work.into_par_iter()
            .for_each(|(slot, action)| self.advance(slot, action));
    }

    /// Serial twin of the rayon round (`--no-default-features`); bit-exact
    /// with the parallel path because sequences share no arithmetic.
    #[cfg(not(feature = "parallel"))]
    pub(crate) fn run_round(&self, work: Vec<(&mut SeqSlot, Action)>) {
        for (slot, action) in work {
            self.advance(slot, action);
        }
    }

    /// Advance one sequence by its round action. Exactly mirrors
    /// [`DataflowExecutor::generate_with_report`]: the round's prompt
    /// tokens run as one matmul prefill panel (bit-identical to stepping
    /// them in order, and logits are only unembedded on the chunk that
    /// completes the prompt), then the sampled token is emitted without
    /// being stepped back through the machine when it is the last one
    /// requested.
    fn advance(&self, slot: &mut SeqSlot, action: Action) {
        if action.prefill > 0 {
            // Plan validation bounded `prefill_pos + prefill` by the
            // prompt length before this slot entered the round.
            let end = (slot.prefill_pos + action.prefill as usize).min(slot.prompt.len());
            let chunk = slot.prompt.get(slot.prefill_pos..end).unwrap_or(&[]);
            if !chunk.is_empty() {
                let want_logits = end == slot.prompt.len();
                let stats =
                    self.inner
                        .prefill_with(chunk, &mut slot.state, &mut slot.scratch, want_logits);
                slot.prefill_stats.merge(stats);
                slot.prefill_pos = end;
            }
        }
        if action.decode {
            let next = slot.sampler.sample(slot.scratch.logits());
            slot.out.push(next);
            if slot.out.len() < slot.target {
                self.inner
                    .step_with(next, &mut slot.state, &mut slot.scratch);
            }
        }
    }
}

/// The timing planner's view of the prefix cache: it holds the real
/// prompts (the scheduler only knows counts) and mirrors the engine's
/// match/commit schedule on a tree of placeholder pages, so the plan
/// charges exactly the suffixes the engine will prefill.
struct PlanOracle<'a> {
    requests: &'a [SequenceRequest],
    cache: PrefixCache,
}

impl PrefixOracle for PlanOracle<'_> {
    fn matched_on_admit(&mut self, seq: usize, _req: &Request) -> u32 {
        match self.requests.get(seq) {
            Some(r) => self.cache.match_prompt(&r.prompt).matched as u32,
            None => 0,
        }
    }

    fn on_prefill_complete(&mut self, seq: usize, _req: &Request) {
        let Some(r) = self.requests.get(seq) else {
            return;
        };
        let per_block = self.cache.config().pages_per_block;
        let mut grant = Vec::new();
        self.cache.commit(
            &r.prompt,
            |_| vec![PageBuf::placeholder(); per_block],
            &mut grant,
        );
        // Planning tracks tree shape only; pages stay alive through the
        // tree's own references (the budget is unbounded offline).
        self.cache.release_grant(&mut grant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::GRID;
    use hnlpu_model::{zoo, ModelWeights, WeightGenerator};
    use hnlpu_sim::SimConfig;

    fn engine() -> BatchedDataflowExecutor {
        let card = zoo::dataflow_test_model();
        let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(2026));
        BatchedDataflowExecutor::new(DataflowExecutor::new(w), 216)
    }

    fn scheduler() -> BatchScheduler {
        BatchScheduler::new(SimConfig::paper_default(), 2048)
    }

    #[test]
    fn batched_matches_per_sequence_greedy() {
        let eng = engine();
        let requests = vec![
            SequenceRequest::greedy(0, vec![1, 5, 9], 8),
            SequenceRequest::greedy(0, vec![100, 2], 5),
            SequenceRequest::greedy(0, vec![64], 12),
        ];
        let (report, _) = eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        for (r, out) in requests.iter().zip(&report.outputs) {
            let solo = eng
                .executor()
                .generate_greedy(&r.prompt, r.decode_tokens as usize);
            assert_eq!(&solo, out);
        }
    }

    #[test]
    fn batch_comm_is_sum_of_sequences() {
        let eng = engine();
        let requests = vec![
            SequenceRequest::greedy(0, vec![3, 1, 4], 6),
            SequenceRequest::greedy(0, vec![2, 7], 4),
        ];
        let (report, _) = eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        let mut total = CommCounters::default();
        for (r, &per) in requests.iter().zip(&report.per_sequence_comm) {
            let (_, solo) = eng.executor().generate_with_report(
                &r.prompt,
                r.decode_tokens as usize,
                &mut Sampler::Greedy,
            );
            assert_eq!(solo, per);
            total += per;
        }
        assert_eq!(report.comm, total);
    }

    #[test]
    fn kv_pool_slots_shard_by_position_mod_4() {
        // The batched engine's pooled KV states keep the dataflow
        // executor's ownership invariant: position p lives on chip p % 4.
        let eng = engine();
        let mut state = eng.executor().new_state();
        for t in 0..7u32 {
            eng.executor().step(t, &mut state);
        }
        for col in 0..GRID {
            for chip in 0..GRID {
                let expected = (7 + GRID - 1 - chip) / GRID;
                assert_eq!(state.kv_shard(col, chip).len(), expected);
            }
        }
        assert_eq!(state.position(), 7);
        assert!(state.kv_bytes_fp16() > 0);
    }

    #[test]
    fn eviction_frees_slots_for_later_arrivals() {
        let eng = engine();
        // Two waves with arrivals 2 s apart: wave 1 finishes long before
        // wave 2 arrives, so peak residency stays at the wave size.
        let mut requests = Vec::new();
        for _ in 0..3 {
            requests.push(SequenceRequest::greedy(0, vec![1, 2], 3));
        }
        for _ in 0..3 {
            requests.push(SequenceRequest::greedy(2_000_000, vec![4, 5], 3));
        }
        let (report, _) = eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        assert_eq!(report.peak_resident, 3);
        assert_eq!(report.decoded_tokens, 6 * 3);
        assert_eq!(report.prefill_tokens, 6 * 2);
        for out in &report.outputs {
            assert_eq!(out.len(), 3);
        }
    }

    #[test]
    fn zero_decode_requests_complete_with_empty_output() {
        let eng = engine();
        let requests = vec![
            SequenceRequest::greedy(0, vec![9, 9, 9], 0),
            SequenceRequest::greedy(0, vec![1], 2),
        ];
        let (report, _) = eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        assert!(report.outputs[0].is_empty());
        assert_eq!(report.outputs[1].len(), 2);
    }

    #[test]
    fn seeded_samplers_match_per_sequence_runs() {
        let eng = engine();
        let mk = |seed| SequenceRequest {
            arrival_s_micros: 0,
            prompt: vec![3, 1, 4],
            decode_tokens: 6,
            sampler: Sampler::multinomial(0.7, seed),
        };
        let requests = vec![mk(11), mk(99)];
        let (report, _) = eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        for (r, out) in requests.iter().zip(&report.outputs) {
            let (solo, _) = eng.executor().generate_with_report(
                &r.prompt,
                r.decode_tokens as usize,
                &mut r.sampler.clone(),
            );
            assert_eq!(&solo, out);
        }
    }

    #[test]
    fn prefill_panels_are_counted_per_round_chunk() {
        let eng = engine();
        let requests = vec![SequenceRequest::greedy(0, vec![1, 5, 9, 2, 7], 2)];
        // A prompt spanning rounds: each round's chunk is one full panel,
        // never a loop of T=1 steps.
        let plans = vec![
            RoundPlan {
                decode: vec![],
                prefill: vec![(0, 2)],
            },
            RoundPlan {
                decode: vec![0],
                prefill: vec![(0, 3)],
            },
            RoundPlan {
                decode: vec![0],
                prefill: vec![],
            },
        ];
        let report = eng.execute_plan(&requests, &plans).expect("plan executes");
        assert_eq!(report.prefill_tokens, 5);
        assert_eq!(report.prefill_panels, 2);
        assert_eq!(report.prefill_max_panel, 3);
        let solo = eng.executor().generate_greedy(&requests[0].prompt, 2);
        assert_eq!(report.outputs[0], solo);
    }

    #[test]
    fn scheduler_driven_prefill_is_not_degenerate() {
        let eng = engine();
        let requests = vec![
            SequenceRequest::greedy(0, vec![1, 5, 9], 2),
            SequenceRequest::greedy(0, vec![100, 2], 2),
        ];
        let (report, _) = eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        // Multi-token prompts must arrive at the kernels as multi-token
        // panels: fewer panels than prompt tokens, and the widest panel
        // covers the longest prompt (chunk budget 2048 ≫ both prompts).
        assert_eq!(report.prefill_tokens, 5);
        assert_eq!(report.prefill_panels, 2);
        assert_eq!(report.prefill_max_panel, 3);
    }

    /// A 40-token deterministic "system prompt" for sharing tests.
    fn system_prefix() -> Vec<u32> {
        (0..40u32).map(|i| (i * 7 + 3) % 97).collect()
    }

    fn with_suffix(arrival: u64, tail: &[u32], decode: u32) -> SequenceRequest {
        let mut prompt = system_prefix();
        prompt.extend_from_slice(tail);
        SequenceRequest::greedy(arrival, prompt, decode)
    }

    #[test]
    fn prefix_reuse_is_token_exact_and_charges_only_suffixes() {
        let dense_eng = engine();
        let shared_eng = engine().with_prefix_cache(PrefixCacheConfig::default());
        // Wave 1 commits the system prompt's two full blocks; wave 2
        // arrives after it finished and matches 32 positions each.
        let requests = vec![
            with_suffix(0, &[5, 9], 6),
            with_suffix(2_000_000, &[5, 9], 6),
            with_suffix(2_000_000, &[70, 71, 72], 4),
        ];
        let (dense, _) = dense_eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("dense plan executes");
        let (shared, timing) = shared_eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("shared plan executes");
        assert_eq!(dense.outputs, shared.outputs);
        // Dense prefills 42 + 42 + 43 tokens; sharing serves 32 cached
        // positions to each wave-2 sequence.
        assert_eq!(dense.prefill_tokens, 127);
        assert_eq!(shared.prefill_tokens, 127 - 2 * 32);
        // The timing plan charged the identical suffixes.
        assert_eq!(timing.prefill_tokens, shared.prefill_tokens);
        assert_eq!(shared.prefix.lookups, 3);
        assert_eq!(shared.prefix.hits, 2);
        assert_eq!(shared.prefix.reused_positions, 64);
        assert!(shared.prefix.committed_blocks >= 2);
        assert_eq!(dense.prefix.lookups, 0);
    }

    #[test]
    fn simultaneous_identical_prompts_commit_once() {
        let shared_eng = engine().with_prefix_cache(PrefixCacheConfig::default());
        let requests = vec![with_suffix(0, &[1], 3), with_suffix(0, &[1], 3)];
        let (report, _) = shared_eng
            .run_with_scheduler(&requests, &scheduler())
            .expect("plan executes");
        // Both admitted the same round: neither matches (the tree is
        // empty at round start) and the duplicate commit deduplicates.
        assert_eq!(report.prefill_tokens, 2 * 41);
        assert_eq!(report.prefix.hits, 0);
        assert_eq!(report.prefix.committed_blocks, 2);
        assert_eq!(report.outputs[0], report.outputs[1]);
        let solo = shared_eng
            .executor()
            .generate_greedy(&requests[0].prompt, 3);
        assert_eq!(report.outputs[0], solo);
    }

    #[test]
    fn empty_prompt_rejected() {
        let eng = engine();
        let requests = vec![SequenceRequest::greedy(0, vec![], 1)];
        let err = eng.run_with_scheduler(&requests, &scheduler()).unwrap_err();
        assert_eq!(err, BatchError::EmptyPrompt { seq: 0 });
    }

    #[test]
    fn decode_before_admission_rejected() {
        let eng = engine();
        let requests = vec![SequenceRequest::greedy(0, vec![1], 1)];
        let plans = vec![RoundPlan {
            decode: vec![0],
            prefill: vec![],
        }];
        let err = eng.execute_plan(&requests, &plans).unwrap_err();
        assert_eq!(err, BatchError::NotAdmitted { seq: 0 });
    }

    #[test]
    fn pool_overflow_rejected() {
        let card = zoo::dataflow_test_model();
        let w = ModelWeights::materialize(&card.config, &WeightGenerator::new(2026));
        let eng = BatchedDataflowExecutor::new(DataflowExecutor::new(w), 1);
        let requests = vec![
            SequenceRequest::greedy(0, vec![1], 2),
            SequenceRequest::greedy(0, vec![2], 2),
        ];
        // Hand-build a plan admitting both at once, bypassing the
        // scheduler's own capacity check.
        let plans = vec![RoundPlan {
            decode: vec![],
            prefill: vec![(0, 1), (1, 1)],
        }];
        let err = eng.execute_plan(&requests, &plans).unwrap_err();
        assert_eq!(err, BatchError::PoolOverflow { slots: 1 });
    }
}
