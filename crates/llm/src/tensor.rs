//! Minimal row-major matrix/vector kernels.

/// `y = x · W` where `x` is `(1, rows)` and `W` is row-major `(rows, cols)`.
///
/// # Panics
///
/// Panics if `x.len() * cols != w.len()`.
pub fn vec_mat(x: &[f32], w: &[f32], cols: usize) -> Vec<f32> {
    assert_eq!(x.len() * cols, w.len(), "shape mismatch");
    let mut y = vec![0.0f32; cols];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = &w[i * cols..(i + 1) * cols];
        for (yj, &wij) in y.iter_mut().zip(row.iter()) {
            *yj += xi * wij;
        }
    }
    y
}

/// Allocation-free [`vec_mat`]: overwrite `y` with `x · W`. Same zero-skip
/// accumulation order, so results are bit-identical.
///
/// # Panics
///
/// Panics if `x.len() * cols != w.len()` or `y.len() != cols`.
pub fn vec_mat_into(x: &[f32], w: &[f32], cols: usize, y: &mut [f32]) {
    assert_eq!(x.len() * cols, w.len(), "shape mismatch");
    assert_eq!(y.len(), cols, "output length mismatch");
    y.fill(0.0);
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = &w[i * cols..(i + 1) * cols];
        for (yj, &wij) in y.iter_mut().zip(row.iter()) {
            *yj += xi * wij;
        }
    }
}

/// `y = x · W[row_range, col_range]` — a partial product over a sub-block
/// of `W`, as a chip computes it (the dataflow executor's workhorse).
///
/// # Panics
///
/// Panics if the ranges exceed the matrix shape.
pub fn vec_mat_block(
    x: &[f32],
    w: &[f32],
    cols: usize,
    row_range: std::ops::Range<usize>,
    col_range: std::ops::Range<usize>,
) -> Vec<f32> {
    assert!(row_range.end <= x.len(), "row range out of bounds");
    assert!(col_range.end <= cols, "col range out of bounds");
    let mut y = vec![0.0f32; col_range.len()];
    for i in row_range {
        let xi = x[i];
        if xi == 0.0 {
            continue;
        }
        let row = &w[i * cols + col_range.start..i * cols + col_range.end];
        for (yj, &wij) in y.iter_mut().zip(row.iter()) {
            *yj += xi * wij;
        }
    }
    y
}

/// Elementwise `a += b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Scale in place.
pub fn scale(a: &mut [f32], k: f32) {
    for x in a.iter_mut() {
        *x *= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_mat_identity() {
        // 3x3 identity.
        let w = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        assert_eq!(vec_mat(&[2.0, 3.0, 4.0], &w, 3), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn vec_mat_block_partials_sum_to_full() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let w: Vec<f32> = (0..4 * 6).map(|i| i as f32 * 0.5).collect();
        let full = vec_mat(&x, &w, 6);
        let mut sum = vec![0.0; 3];
        // Split rows in two halves, columns 0..3.
        for rows in [0..2usize, 2..4] {
            let part = vec_mat_block(&x, &w, 6, rows, 0..3);
            add_assign(&mut sum, &part);
        }
        assert_eq!(sum, full[0..3].to_vec());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn vec_mat_validates() {
        vec_mat(&[1.0], &[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn dot_and_scale() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut a = [2.0f32, 4.0];
        scale(&mut a, 0.5);
        assert_eq!(a, [1.0, 2.0]);
    }

    #[test]
    fn vec_mat_into_matches_vec_mat() {
        let x = [0.5f32, 0.0, -2.0];
        let w: Vec<f32> = (0..3 * 4).map(|i| (i as f32).cos()).collect();
        let mut y = [9.0f32; 4];
        vec_mat_into(&x, &w, 4, &mut y);
        assert_eq!(y.to_vec(), vec_mat(&x, &w, 4));
    }

    #[test]
    fn zero_skip_is_exact() {
        let x = [0.0f32, 1.0];
        let w = [5.0f32, 6.0, 7.0, 8.0];
        assert_eq!(vec_mat(&x, &w, 2), vec![7.0, 8.0]);
    }
}
