//! LoRA side-channel adapters (§8 future work 4): "adding ~1%
//! field-programmable HNs at side-channel to accommodate dynamic weights."
//!
//! A hardwired matrix `W` is augmented with a low-rank, field-programmable
//! update `A·B` (rank `r ≪ min(rows, cols)`), computed by a small bank of
//! conventional (SRAM-weighted) MAC units beside the HN array:
//! `y = x·W + scale · (x·A)·B`. The hardwired weights never change; only
//! the tiny adapter memory is rewritten in the field.

use crate::tensor::vec_mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A low-rank adapter for one weight matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LoraAdapter {
    /// Input dimension (matches the hardwired matrix's rows).
    pub rows: usize,
    /// Output dimension (matches the hardwired matrix's cols).
    pub cols: usize,
    /// Adapter rank.
    pub rank: usize,
    /// Scaling factor (`alpha / rank` in LoRA terms).
    pub scale: f32,
    /// Down projection `A` (`rows × rank`), row-major.
    pub a: Vec<f32>,
    /// Up projection `B` (`rank × cols`), row-major.
    pub b: Vec<f32>,
}

impl LoraAdapter {
    /// A zero-initialized adapter (`B = 0`, so the update is the identity —
    /// the standard LoRA initialization).
    pub fn zeros(rows: usize, cols: usize, rank: usize, scale: f32) -> Self {
        let mut adapter = Self::seeded(rows, cols, rank, scale, 0);
        adapter.b = vec![0.0; rank * cols];
        adapter
    }

    /// A seeded random adapter (for tests and synthetic updates).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or `rank` exceeds either dimension.
    pub fn seeded(rows: usize, cols: usize, rank: usize, scale: f32, seed: u64) -> Self {
        assert!(rank > 0 && rank <= rows.min(cols), "invalid rank {rank}");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10_5A);
        let norm_a = 1.0 / (rows as f32).sqrt();
        let norm_b = 1.0 / (rank as f32).sqrt();
        LoraAdapter {
            rows,
            cols,
            rank,
            scale,
            a: (0..rows * rank)
                .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * norm_a)
                .collect(),
            b: (0..rank * cols)
                .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * norm_b)
                .collect(),
        }
    }

    /// Apply the adapter: `delta = scale · (x·A)·B`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn delta(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "input dimension");
        let hidden = vec_mat(x, &self.a, self.rank);
        let mut out = vec_mat(&hidden, &self.b, self.cols);
        for v in &mut out {
            *v *= self.scale;
        }
        out
    }

    /// Allocation-free [`delta`](Self::delta): write `scale · (x·A)·B`
    /// into `out`, using `hidden` as the reusable rank-`r` intermediate
    /// (resized on demand; steady state allocates nothing).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn delta_into(&self, x: &[f32], hidden: &mut Vec<f32>, out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "input dimension");
        assert_eq!(out.len(), self.cols, "output dimension");
        hidden.resize(self.rank, 0.0);
        crate::tensor::vec_mat_into(x, &self.a, self.rank, hidden);
        crate::tensor::vec_mat_into(hidden, &self.b, self.cols, out);
        for v in out.iter_mut() {
            *v *= self.scale;
        }
    }

    /// Adapted projection: `x·W + delta(x)` given the hardwired output.
    ///
    /// Allocating convenience wrapper — the decode hot path uses
    /// [`delta_into`](Self::delta_into) instead.
    // analyze: cold
    pub fn apply(&self, hardwired: &[f32], x: &[f32]) -> Vec<f32> {
        let mut out = hardwired.to_vec();
        for (o, d) in out.iter_mut().zip(self.delta(x)) {
            *o += d;
        }
        out
    }

    /// Field-programmable parameters this adapter stores.
    pub fn params(&self) -> usize {
        self.a.len() + self.b.len()
    }

    /// Adapter parameters as a fraction of the hardwired matrix — the
    /// paper's "~1%" side-channel budget.
    pub fn overhead_fraction(&self) -> f64 {
        self.params() as f64 / (self.rows * self.cols) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_init_is_identity() {
        let adapter = LoraAdapter::zeros(64, 32, 4, 2.0);
        let x: Vec<f32> = (0..64).map(|i| i as f32 * 0.1).collect();
        let base = vec![1.0f32; 32];
        assert_eq!(adapter.apply(&base, &x), base);
    }

    #[test]
    fn delta_matches_dense_low_rank_product() {
        let adapter = LoraAdapter::seeded(16, 8, 2, 0.5, 3);
        let x: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        // Dense AB product.
        let mut ab = vec![0.0f32; 16 * 8];
        for r in 0..16 {
            for c in 0..8 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += adapter.a[r * 2 + k] * adapter.b[k * 8 + c];
                }
                ab[r * 8 + c] = s * 0.5;
            }
        }
        let dense = vec_mat(&x, &ab, 8);
        let low_rank = adapter.delta(&x);
        for (d, l) in dense.iter().zip(low_rank.iter()) {
            assert!((d - l).abs() < 1e-4, "{d} vs {l}");
        }
    }

    #[test]
    fn rank_16_on_gpt_oss_qkv_is_about_one_percent() {
        // hidden 2880 -> q width 4096 at rank 16: (2880+4096)*16 params vs
        // 2880*4096 hardwired = 0.95%.
        let adapter = LoraAdapter::zeros(2880, 4096, 16, 1.0);
        let f = adapter.overhead_fraction();
        assert!(f > 0.005 && f < 0.015, "overhead = {f}");
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = LoraAdapter::seeded(8, 8, 2, 1.0, 9);
        let b = LoraAdapter::seeded(8, 8, 2, 1.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn oversized_rank_rejected() {
        LoraAdapter::zeros(4, 4, 5, 1.0);
    }

    #[test]
    fn delta_into_matches_delta() {
        let adapter = LoraAdapter::seeded(24, 12, 3, 1.5, 7);
        let x: Vec<f32> = (0..24).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut hidden = Vec::new();
        let mut out = vec![0.0f32; 12];
        adapter.delta_into(&x, &mut hidden, &mut out);
        assert_eq!(out, adapter.delta(&x));
    }

    #[test]
    fn nonzero_adapter_changes_output() {
        let adapter = LoraAdapter::seeded(32, 16, 4, 1.0, 1);
        let x = vec![1.0f32; 32];
        let base = vec![0.0f32; 16];
        assert_ne!(adapter.apply(&base, &x), base);
    }
}
