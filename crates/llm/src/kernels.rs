//! Region-accumulation matvec kernels over packed FP4 weights.
//!
//! A Hardwired Neuron never multiplies (Figure 4, §4.2): each input is
//! routed into one of 16 POPCNT accumulator regions keyed by its FP4 weight
//! code, the 16 per-region sums are weighted by the E2M1 magnitude lattice,
//! and a final shift applies the scale. These kernels compute `x · W`
//! directly on [`PackedFp4Matrix`] codes the same way — no dequantized
//! tensor ever exists — in two interchangeable realizations:
//!
//! * **Scalar region kernel** ([`region_matvec_block_into`]): the textbook
//!   form. Per output column, bucket `x_i` by the stored 4-bit code, then
//!   combine buckets with [`MAGNITUDES`] and the per-matrix norm. This is
//!   the semantic ground truth (and the portable fallback).
//! * **Vectorized half-unit kernel** (x86-64 AVX2+FMA, selected at
//!   runtime): the same 16 regions realized as the constant-multiplier
//!   bank. Every FP4 value is an exact multiple of 0.5, so a 16-entry
//!   `pshufb` lookup maps each nibble to its signed integer half-unit
//!   ([`HALF_UNITS`]) — the per-region constant the hardware wires — and an
//!   FMA accumulates `x_i · hu` with the trailing ×0.5 folded into the
//!   norm. Associativity of the per-region grouping is the only difference
//!   (float sums reorder), which is why both realizations agree to ~1e-5
//!   relative, not bitwise.
//!
//! Both inference engines call these kernels for every projection, router,
//! and expert matvec, so within one process they see one arithmetic: the
//! engines' token streams stay in lockstep exactly as they did on the dense
//! `f32` path.

use crate::tensor::add_assign;
use hnlpu_model::fp4::{HALF_UNITS, MAGNITUDES, NUM_CODES};
use hnlpu_model::PackedFp4Matrix;
use std::ops::Range;

/// Activation vectors processed together per scalar token block of the
/// matmul kernels (one pass over a column's packed bytes serves this many
/// tokens before the next pass).
const SCALAR_TOKEN_BLOCK: usize = 8;

/// Fixed row-split factor of the row-partitioned matvecs — the same 4-way
/// partitioning a chip column of the 4×4 fabric applies to its weight
/// block, so the software split reproduces the dataflow partial-sum
/// numerics exactly.
pub const ROW_SPLITS: usize = 4;

/// Minimum `rows × cols` product before a row-partitioned matvec actually
/// fans out across threads. Below this the split still happens (the
/// reduction order is part of the numerics) but runs on the calling
/// thread: the vendored `rayon` spawns scoped threads per call, and at
/// test-model sizes the spawn costs more than the matvec.
pub const ROWS_PARALLEL_MIN_WORK: usize = 1 << 21;

/// Cores visible to the row-partitioned path, queried once per process.
/// Purely a scheduling input: whether the splits fan out or run inline,
/// the partials and their reduction order are identical.
#[cfg(feature = "parallel")]
fn row_workers() -> usize {
    use std::sync::OnceLock;
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// `out = x · W` over the whole packed matrix (`x.len() == rows`,
/// `out.len() == cols`).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matvec_into(x: &[f32], m: &PackedFp4Matrix, out: &mut [f32]) {
    matvec_block_into(x, m, 0, 0..m.cols(), out);
}

/// Partial product `out = x · W[row_offset .. row_offset + x.len(),
/// col_range]`, overwriting `out` — the dataflow executor's workhorse: a
/// chip holds a block of the packed matrix and produces a partial sum for
/// its column group.
///
/// # Panics
///
/// Panics if the addressed block exceeds the matrix shape or
/// `out.len() != col_range.len()`.
pub fn matvec_block_into(
    x: &[f32],
    m: &PackedFp4Matrix,
    row_offset: usize,
    col_range: Range<usize>,
    out: &mut [f32],
) {
    assert!(row_offset + x.len() <= m.rows(), "row block out of bounds");
    assert!(col_range.end <= m.cols(), "col range out of bounds");
    assert_eq!(out.len(), col_range.len(), "output length mismatch");
    // The vectorized path walks packed bytes from the first addressed
    // column, so it needs the range to start on a byte boundary; odd
    // starts (never produced by the engines) take the scalar kernel.
    #[cfg(target_arch = "x86_64")]
    if col_range.start.is_multiple_of(2) && avx2::available() {
        // SAFETY: AVX2+FMA presence checked at runtime; bounds above.
        unsafe { avx2::matvec_block(x, m, row_offset, col_range, out) };
        return;
    }
    region_matvec_block_into(x, m, row_offset, col_range, out);
}

/// The scalar region-accumulation kernel (semantic reference and portable
/// fallback): per output column, accumulate each `x_i` into one of 16
/// buckets indexed by the stored code — one add per weight, no multiply —
/// then combine the buckets with the magnitude lattice and the norm.
///
/// # Panics
///
/// Panics on the same conditions as [`matvec_block_into`].
pub fn region_matvec_block_into(
    x: &[f32],
    m: &PackedFp4Matrix,
    row_offset: usize,
    col_range: Range<usize>,
    out: &mut [f32],
) {
    assert!(row_offset + x.len() <= m.rows(), "row block out of bounds");
    assert!(col_range.end <= m.cols(), "col range out of bounds");
    assert_eq!(out.len(), col_range.len(), "output length mismatch");
    let stride = m.stride();
    let data = m.data();
    let norm = m.norm();
    for (o, j) in out.iter_mut().zip(col_range) {
        let shift = (j % 2) * 4;
        let col = j / 2;
        let mut buckets = [0.0f32; NUM_CODES];
        for (i, &xi) in x.iter().enumerate() {
            let byte = data[(row_offset + i) * stride + col];
            buckets[((byte >> shift) & 0x0F) as usize] += xi;
        }
        *o = combine_regions(&buckets) * norm;
    }
}

/// `outs = Xs · W` for a panel of `t` activation vectors over the whole
/// packed matrix: row `tt` of the activation panel (starting at
/// `xs[tt * x_stride]`, `m.rows()` long) produces row `tt` of the output
/// panel (starting at `outs[tt * out_stride]`, `m.cols()` wide).
///
/// Each output row is **bit-identical** to `matvec_into` on the same
/// activation row — see [`matmul_block_into`].
///
/// # Panics
///
/// Panics on shape mismatch (see [`matmul_block_into`]).
pub fn matmul_into(
    xs: &[f32],
    x_stride: usize,
    t: usize,
    m: &PackedFp4Matrix,
    outs: &mut [f32],
    out_stride: usize,
) {
    matmul_block_into(
        xs,
        x_stride,
        t,
        m,
        0,
        m.rows(),
        0..m.cols(),
        outs,
        out_stride,
    );
}

/// Panel partial product: for each of `t` activation rows, compute
/// `outs_row = xs_row · W[row_offset .. row_offset + rows, col_range]` —
/// the multi-token generalization of [`matvec_block_into`] that makes one
/// pass over the packed codes serve a whole prefill chunk.
///
/// Activation row `tt` starts at `xs[tt * x_stride]` and is `rows` long;
/// output row `tt` starts at `outs[tt * out_stride]` and is
/// `col_range.len()` wide, so both panels may be strided slices of wider
/// arenas (e.g. a chip's row slice of the activation panel).
///
/// **Bit-identity contract:** every output row equals
/// `matvec_block_into(xs_row, m, row_offset, col_range, outs_row)` bit for
/// bit, in both realizations. The per-column accumulation chain depends
/// only on the row iteration order (ascending) and the accumulation
/// operation (scalar bucket adds / vector FMAs), neither of which changes
/// with the panel width — so prefill results are independent of how a
/// prompt is chunked into panels, and the differential harnesses stay
/// token-exact.
///
/// # Panics
///
/// Panics if the addressed block exceeds the matrix shape, or `xs`/`outs`
/// are too short for `t` strided rows.
#[allow(clippy::too_many_arguments)]
pub fn matmul_block_into(
    xs: &[f32],
    x_stride: usize,
    t: usize,
    m: &PackedFp4Matrix,
    row_offset: usize,
    rows: usize,
    col_range: Range<usize>,
    outs: &mut [f32],
    out_stride: usize,
) {
    if t == 0 {
        return;
    }
    assert!(row_offset + rows <= m.rows(), "row block out of bounds");
    assert!(col_range.end <= m.cols(), "col range out of bounds");
    assert!(
        xs.len() >= (t - 1) * x_stride + rows,
        "activation panel too short"
    );
    assert!(
        outs.len() >= (t - 1) * out_stride + col_range.len(),
        "output panel too short"
    );
    // Same dispatch condition as `matvec_block_into`, so each row's
    // realization matches what the per-token path would have picked.
    #[cfg(target_arch = "x86_64")]
    if col_range.start.is_multiple_of(2) && avx2::available() {
        // SAFETY: AVX2+FMA presence checked at runtime; bounds above.
        unsafe {
            avx2::matmul_block(
                xs, x_stride, t, m, row_offset, rows, col_range, outs, out_stride,
            )
        };
        return;
    }
    region_matmul_block_into(
        xs, x_stride, t, m, row_offset, rows, col_range, outs, out_stride,
    );
}

/// The scalar multi-token region-accumulation kernel: per output column,
/// read each packed byte **once** and route the corresponding `x_i` of
/// every activation row in the token block into that row's 16 buckets —
/// the Figure-4 region pass amortized over up to [`SCALAR_TOKEN_BLOCK`]
/// tokens — then combine each row's buckets with the magnitude lattice.
///
/// Per activation row this performs exactly the bucket-accumulation chain
/// of [`region_matvec_block_into`] (rows ascending, one add per weight),
/// so each output row is bit-identical to the per-token kernel.
///
/// # Panics
///
/// Panics on the same conditions as [`matmul_block_into`].
#[allow(clippy::too_many_arguments)]
pub fn region_matmul_block_into(
    xs: &[f32],
    x_stride: usize,
    t: usize,
    m: &PackedFp4Matrix,
    row_offset: usize,
    rows: usize,
    col_range: Range<usize>,
    outs: &mut [f32],
    out_stride: usize,
) {
    if t == 0 {
        return;
    }
    assert!(row_offset + rows <= m.rows(), "row block out of bounds");
    assert!(col_range.end <= m.cols(), "col range out of bounds");
    assert!(
        xs.len() >= (t - 1) * x_stride + rows,
        "activation panel too short"
    );
    assert!(
        outs.len() >= (t - 1) * out_stride + col_range.len(),
        "output panel too short"
    );
    let stride = m.stride();
    let data = m.data();
    let norm = m.norm();
    let mut tb = 0;
    while tb < t {
        let bt = (t - tb).min(SCALAR_TOKEN_BLOCK);
        for j in col_range.start..col_range.end {
            let shift = (j % 2) * 4;
            let col = j / 2;
            let mut buckets = [[0.0f32; NUM_CODES]; SCALAR_TOKEN_BLOCK];
            for i in 0..rows {
                let byte = data[(row_offset + i) * stride + col];
                let code = ((byte >> shift) & 0x0F) as usize;
                for (tt, b) in buckets[..bt].iter_mut().enumerate() {
                    b[code] += xs[(tb + tt) * x_stride + i];
                }
            }
            for (tt, b) in buckets[..bt].iter_mut().enumerate() {
                outs[(tb + tt) * out_stride + (j - col_range.start)] = combine_regions(b) * norm;
            }
        }
        tb += bt;
    }
}

/// Row-partitioned matvec with the dataflow's fixed 4-way split: row block
/// `s` covers rows `[s·rows/4, (s+1)·rows/4)`, each block's partial
/// product lands in `partials[s · col_range.len() ..]`, and the partials
/// are reduced into `out` in block order — exactly the partial-sum
/// numerics a chip column of the 4×4 fabric produces, independent of
/// whether the blocks ran in parallel.
///
/// With the `parallel` feature, `rows × cols ≥`
/// [`ROWS_PARALLEL_MIN_WORK`], and more than one core available, the four
/// blocks run on scoped worker threads; otherwise they run sequentially on
/// the calling thread (a single-core host would pay the per-call spawn
/// cost with nothing to overlap). Both schedules write the identical
/// partials and reduce them in the identical order, so the result is
/// bit-exact across feature sets and core counts.
///
/// # Panics
///
/// Panics if `x.len() != m.rows()`, the column range exceeds the matrix,
/// `out.len() != col_range.len()`, or `partials` is shorter than
/// `ROW_SPLITS × out.len()`.
pub fn matvec_rows_split_into(
    x: &[f32],
    m: &PackedFp4Matrix,
    col_range: Range<usize>,
    out: &mut [f32],
    partials: &mut [f32],
) {
    assert_eq!(x.len(), m.rows(), "input length mismatch");
    assert!(col_range.end <= m.cols(), "col range out of bounds");
    assert_eq!(out.len(), col_range.len(), "output length mismatch");
    let rows = x.len();
    let w = out.len();
    assert!(
        partials.len() >= ROW_SPLITS * w,
        "partials buffer too short"
    );
    let (cs, ce) = (col_range.start, col_range.end);
    let parts = &mut partials[..ROW_SPLITS * w];
    #[cfg(feature = "parallel")]
    if rows * w >= ROWS_PARALLEL_MIN_WORK && row_workers() > 1 {
        std::thread::scope(|sc| {
            let mut rest = &mut *parts;
            for s in 0..ROW_SPLITS {
                let (part, tail) = rest.split_at_mut(w);
                rest = tail;
                let xr = &x[s * rows / ROW_SPLITS..(s + 1) * rows / ROW_SPLITS];
                sc.spawn(move || matvec_block_into(xr, m, s * rows / ROW_SPLITS, cs..ce, part));
            }
        });
        reduce_partials(parts, out, w);
        return;
    }
    for s in 0..ROW_SPLITS {
        matvec_block_into(
            &x[s * rows / ROW_SPLITS..(s + 1) * rows / ROW_SPLITS],
            m,
            s * rows / ROW_SPLITS,
            cs..ce,
            &mut parts[s * w..(s + 1) * w],
        );
    }
    reduce_partials(parts, out, w);
}

/// Multi-core decode matvec: split the full-matrix product row-wise across
/// workers when the matrix is large enough to pay for the fan-out,
/// otherwise keep the single accumulation chain of [`matvec_into`].
///
/// The split decision depends only on the matrix shape, and the split path
/// reduces partials in fixed order ([`matvec_rows_split_into`]), so the
/// result is deterministic and identical across `parallel`/serial builds.
/// Small models (every differential test config) stay below
/// [`ROWS_PARALLEL_MIN_WORK`] and keep the exact per-token numerics they
/// had before this kernel existed.
///
/// # Panics
///
/// Panics if `x.len() != m.rows()`, `out.len() != m.cols()`, or `partials`
/// is shorter than `ROW_SPLITS × m.cols()` when the split engages.
pub fn matvec_rows_parallel_into(
    x: &[f32],
    m: &PackedFp4Matrix,
    out: &mut [f32],
    partials: &mut [f32],
) {
    if m.rows() * m.cols() < ROWS_PARALLEL_MIN_WORK {
        matvec_into(x, m, out);
        return;
    }
    matvec_rows_split_into(x, m, 0..m.cols(), out, partials);
}

/// In-order reduction of the 4 row-block partials: `out = 0 + p0 + p1 +
/// p2 + p3`, replicating the dataflow column all-reduce (which starts from
/// a zeroed accumulator) bit for bit.
fn reduce_partials(parts: &[f32], out: &mut [f32], w: usize) {
    out.fill(0.0);
    for s in 0..ROW_SPLITS {
        add_assign(out, &parts[s * w..(s + 1) * w]);
    }
}

/// The 16 per-region input sums for one output column of `x · W` — what a
/// Hardwired Neuron's POPCNT accumulator regions hold right before the
/// magnitude combine. Exposed for tests and analyses: with `x = 1⃗`, region
/// `k` equals the column's occupancy count of code `k`.
///
/// # Panics
///
/// Panics if `x.len() != m.rows()` or `col >= m.cols()`.
pub fn region_sums(x: &[f32], m: &PackedFp4Matrix, col: usize) -> [f32; NUM_CODES] {
    assert_eq!(x.len(), m.rows(), "input length mismatch");
    assert!(col < m.cols(), "col out of bounds");
    let stride = m.stride();
    let data = m.data();
    let shift = (col % 2) * 4;
    let mut buckets = [0.0f32; NUM_CODES];
    for (i, &xi) in x.iter().enumerate() {
        let byte = data[i * stride + col / 2];
        buckets[((byte >> shift) & 0x0F) as usize] += xi;
    }
    buckets
}

/// Magnitude-lattice combine: positive region `k` minus its sign twin
/// `k | 8`, weighted by `MAGNITUDES[k]`. Region 0 (±0) contributes nothing.
fn combine_regions(buckets: &[f32; NUM_CODES]) -> f32 {
    let mut acc = 0.0f32;
    for k in 1..8 {
        acc += MAGNITUDES[k] * (buckets[k] - buckets[k | 8]);
    }
    acc
}

/// Which kernel realization this process selected: `"avx2-half-units"` or
/// `"scalar-regions"`. Recorded by the benchmark baseline.
pub fn kernel_path() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        return "avx2-half-units";
    }
    "scalar-regions"
}

/// The vectorized constant-multiplier-bank realization (x86-64 only).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{Range, HALF_UNITS};
    use hnlpu_model::PackedFp4Matrix;
    use std::arch::x86_64::*;

    /// Runtime CPU support check (cached by `std`).
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// Decode 16 packed bytes (32 columns of one row) into 4×8 `f32`
    /// half-unit weights, in column order: the `pshufb` against the
    /// [`HALF_UNITS`] table is the software image of the 16-region decoder.
    // SAFETY: pure register arithmetic on AVX2 intrinsics — no memory
    // access. Callers must have verified AVX2 support (all call sites are
    // inside `#[target_feature(enable = "avx2")]` fns reached only via
    // `available()`).
    #[inline(always)]
    unsafe fn decode32(bytes: __m128i, lut: __m128i, mask: __m128i) -> [__m256; 4] {
        let lo = _mm_and_si128(bytes, mask);
        let hi = _mm_and_si128(_mm_srli_epi16(bytes, 4), mask);
        let vlo = _mm_shuffle_epi8(lut, lo);
        let vhi = _mm_shuffle_epi8(lut, hi);
        // Interleave even/odd column values back into column order.
        let ilo = _mm_unpacklo_epi8(vlo, vhi);
        let ihi = _mm_unpackhi_epi8(vlo, vhi);
        [
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(ilo)),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(ilo, 8))),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(ihi)),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(ihi, 8))),
        ]
    }

    /// 64-column panel: eight output accumulators live in registers across
    /// the whole row sweep, so there are no horizontal sums at all.
    // SAFETY: caller (`matvec_block`) guarantees AVX2+FMA support and that
    // `data` points at `x.len()` rows of ≥ 32 readable bytes at `stride`
    // spacing, and `out` at ≥ 64 writable f32s. Unaligned loads/stores are
    // used throughout, so no alignment requirement.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn panel64(x: &[f32], data: *const u8, stride: usize, half_norm: f32, out: *mut f32) {
        let lut = _mm_loadu_si128(HALF_UNITS.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let mut a = [_mm256_setzero_ps(); 8];
        for (i, &xi) in x.iter().enumerate() {
            let xv = _mm256_set1_ps(xi);
            let rowp = data.add(i * stride);
            let w0 = decode32(_mm_loadu_si128(rowp as *const __m128i), lut, mask);
            let w1 = decode32(_mm_loadu_si128(rowp.add(16) as *const __m128i), lut, mask);
            a[0] = _mm256_fmadd_ps(w0[0], xv, a[0]);
            a[1] = _mm256_fmadd_ps(w0[1], xv, a[1]);
            a[2] = _mm256_fmadd_ps(w0[2], xv, a[2]);
            a[3] = _mm256_fmadd_ps(w0[3], xv, a[3]);
            a[4] = _mm256_fmadd_ps(w1[0], xv, a[4]);
            a[5] = _mm256_fmadd_ps(w1[1], xv, a[5]);
            a[6] = _mm256_fmadd_ps(w1[2], xv, a[6]);
            a[7] = _mm256_fmadd_ps(w1[3], xv, a[7]);
        }
        let nv = _mm256_set1_ps(half_norm);
        for (k, acc) in a.iter().enumerate() {
            _mm256_storeu_ps(out.add(8 * k), _mm256_mul_ps(*acc, nv));
        }
    }

    /// 32-column panel.
    // SAFETY: caller (`matvec_block`) guarantees AVX2+FMA support and that
    // `data` points at `x.len()` rows of ≥ 16 readable bytes at `stride`
    // spacing, and `out` at ≥ 32 writable f32s. Unaligned accesses only.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn panel32(x: &[f32], data: *const u8, stride: usize, half_norm: f32, out: *mut f32) {
        let lut = _mm_loadu_si128(HALF_UNITS.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let mut a = [_mm256_setzero_ps(); 4];
        for (i, &xi) in x.iter().enumerate() {
            let xv = _mm256_set1_ps(xi);
            let w = decode32(
                _mm_loadu_si128(data.add(i * stride) as *const __m128i),
                lut,
                mask,
            );
            a[0] = _mm256_fmadd_ps(w[0], xv, a[0]);
            a[1] = _mm256_fmadd_ps(w[1], xv, a[1]);
            a[2] = _mm256_fmadd_ps(w[2], xv, a[2]);
            a[3] = _mm256_fmadd_ps(w[3], xv, a[3]);
        }
        let nv = _mm256_set1_ps(half_norm);
        for (k, acc) in a.iter().enumerate() {
            _mm256_storeu_ps(out.add(8 * k), _mm256_mul_ps(*acc, nv));
        }
    }

    /// 16-column panel (8-byte row loads).
    // SAFETY: caller (`matvec_block`) guarantees AVX2+FMA support and that
    // `data` points at `x.len()` rows of ≥ 8 readable bytes at `stride`
    // spacing, and `out` at ≥ 16 writable f32s. Unaligned accesses only.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn panel16(x: &[f32], data: *const u8, stride: usize, half_norm: f32, out: *mut f32) {
        let lut = _mm_loadu_si128(HALF_UNITS.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let mut a = [_mm256_setzero_ps(); 2];
        for (i, &xi) in x.iter().enumerate() {
            let xv = _mm256_set1_ps(xi);
            let bytes = _mm_loadl_epi64(data.add(i * stride) as *const __m128i);
            let lo = _mm_and_si128(bytes, mask);
            let hi = _mm_and_si128(_mm_srli_epi16(bytes, 4), mask);
            let inter = _mm_unpacklo_epi8(_mm_shuffle_epi8(lut, lo), _mm_shuffle_epi8(lut, hi));
            let w0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(inter));
            let w1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(inter, 8)));
            a[0] = _mm256_fmadd_ps(w0, xv, a[0]);
            a[1] = _mm256_fmadd_ps(w1, xv, a[1]);
        }
        let nv = _mm256_set1_ps(half_norm);
        _mm256_storeu_ps(out, _mm256_mul_ps(a[0], nv));
        _mm256_storeu_ps(out.add(8), _mm256_mul_ps(a[1], nv));
    }

    /// Block matvec over packed codes. Caller guarantees bounds and an
    /// even `col_range.start`.
    // SAFETY: caller must ensure AVX2+FMA are present (checked via
    // `available()` at the dispatch site), `row_offset + x.len() ≤ m.rows()`,
    // `col_range.end ≤ m.cols()`, `col_range.start` even, and
    // `out.len() ≥ col_range.len()` — these bound every `base.add`/`out.add`
    // below within `m.data()` / `out`. The panel helpers inherit exactly
    // these bounds, narrowed per panel width.
    pub unsafe fn matvec_block(
        x: &[f32],
        m: &PackedFp4Matrix,
        row_offset: usize,
        col_range: Range<usize>,
        out: &mut [f32],
    ) {
        debug_assert_eq!(col_range.start % 2, 0);
        let stride = m.stride();
        let half_norm = 0.5 * m.norm();
        let base = m
            .data()
            .as_ptr()
            .add(row_offset * stride + col_range.start / 2);
        let total = col_range.len();
        let mut c = 0;
        while total - c >= 64 {
            panel64(
                x,
                base.add(c / 2),
                stride,
                half_norm,
                out.as_mut_ptr().add(c),
            );
            c += 64;
        }
        if total - c >= 32 {
            panel32(
                x,
                base.add(c / 2),
                stride,
                half_norm,
                out.as_mut_ptr().add(c),
            );
            c += 32;
        }
        if total - c >= 16 {
            panel16(
                x,
                base.add(c / 2),
                stride,
                half_norm,
                out.as_mut_ptr().add(c),
            );
            c += 16;
        }
        // Scalar half-unit tail for the last < 16 columns.
        let data = m.data();
        for j in col_range.start + c..col_range.end {
            let shift = (j % 2) * 4;
            let mut acc = 0.0f32;
            for (i, &xi) in x.iter().enumerate() {
                let byte = data[(row_offset + i) * stride + j / 2];
                acc += xi * f32::from(HALF_UNITS[((byte >> shift) & 0x0F) as usize]);
            }
            out[j - col_range.start] = acc * half_norm;
        }
    }

    /// Number of activation rows a vectorized token block carries: 4 rows ×
    /// 2 accumulators each (16 columns) keeps the working set at 11 ymm
    /// registers while decoding each packed byte once per 4 tokens.
    const TOKEN_BLOCK: usize = 4;

    /// 16-column × 4-token panel: the packed bytes of each weight row are
    /// decoded **once** and FMA'd against four broadcast activations, so
    /// the 16-region decode work is amortized over the token block. Per
    /// token the accumulation chain over rows is exactly the one
    /// `panel64`/`panel32`/`panel16` produce for the same column (same
    /// decoded half-units, same FMA, same row order), which is what keeps
    /// the matmul bit-identical to the matvec loop.
    // SAFETY: caller (`matmul_block`) guarantees AVX2+FMA support, that
    // `data` points at `rows` weight rows of ≥ 8 readable bytes at `stride`
    // spacing, that `xs` points at 4 activation rows of `rows` readable
    // f32s at `x_stride` spacing, and `outs` at 4 output rows of ≥ 16
    // writable f32s at `out_stride` spacing. Unaligned accesses only.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn panel16x4(
        xs: *const f32,
        x_stride: usize,
        rows: usize,
        data: *const u8,
        stride: usize,
        half_norm: f32,
        outs: *mut f32,
        out_stride: usize,
    ) {
        let lut = _mm_loadu_si128(HALF_UNITS.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let mut a = [_mm256_setzero_ps(); 2 * TOKEN_BLOCK];
        for i in 0..rows {
            let bytes = _mm_loadl_epi64(data.add(i * stride) as *const __m128i);
            let lo = _mm_and_si128(bytes, mask);
            let hi = _mm_and_si128(_mm_srli_epi16(bytes, 4), mask);
            let inter = _mm_unpacklo_epi8(_mm_shuffle_epi8(lut, lo), _mm_shuffle_epi8(lut, hi));
            let w0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(inter));
            let w1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(inter, 8)));
            for tok in 0..TOKEN_BLOCK {
                let xv = _mm256_set1_ps(*xs.add(tok * x_stride + i));
                a[2 * tok] = _mm256_fmadd_ps(w0, xv, a[2 * tok]);
                a[2 * tok + 1] = _mm256_fmadd_ps(w1, xv, a[2 * tok + 1]);
            }
        }
        let nv = _mm256_set1_ps(half_norm);
        for tok in 0..TOKEN_BLOCK {
            _mm256_storeu_ps(outs.add(tok * out_stride), _mm256_mul_ps(a[2 * tok], nv));
            _mm256_storeu_ps(
                outs.add(tok * out_stride + 8),
                _mm256_mul_ps(a[2 * tok + 1], nv),
            );
        }
    }

    /// Panel matmul over packed codes: token blocks of [`TOKEN_BLOCK`]
    /// activation rows sweep 16-column panels with one decode per byte per
    /// block; leftover tokens fall back to the single-token `matvec_block`.
    /// Both paths cover exactly `len - len % 16` columns with panels and
    /// finish with the identical non-fused scalar tail, so every output
    /// row matches `matvec_block` on its activation row bit for bit.
    // SAFETY: caller must ensure AVX2+FMA are present (checked via
    // `available()` at the dispatch site), `row_offset + rows ≤ m.rows()`,
    // `col_range.end ≤ m.cols()`, `col_range.start` even,
    // `xs.len() ≥ (t-1)·x_stride + rows`, and
    // `outs.len() ≥ (t-1)·out_stride + col_range.len()` — these bound every
    // pointer offset below within `m.data()`, `xs`, and `outs`.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn matmul_block(
        xs: &[f32],
        x_stride: usize,
        t: usize,
        m: &PackedFp4Matrix,
        row_offset: usize,
        rows: usize,
        col_range: Range<usize>,
        outs: &mut [f32],
        out_stride: usize,
    ) {
        debug_assert_eq!(col_range.start % 2, 0);
        let stride = m.stride();
        let half_norm = 0.5 * m.norm();
        let base = m
            .data()
            .as_ptr()
            .add(row_offset * stride + col_range.start / 2);
        let len = col_range.len();
        let covered = len - len % 16;
        let data = m.data();
        let mut tt = 0;
        while t - tt >= TOKEN_BLOCK {
            let xrow = xs.as_ptr().add(tt * x_stride);
            let orow = outs.as_mut_ptr().add(tt * out_stride);
            let mut c = 0;
            while c < covered {
                panel16x4(
                    xrow,
                    x_stride,
                    rows,
                    base.add(c / 2),
                    stride,
                    half_norm,
                    orow.add(c),
                    out_stride,
                );
                c += 16;
            }
            // Scalar half-unit tail for the block's last < 16 columns —
            // the same non-fused mul+add chain as `matvec_block`'s tail.
            for j in col_range.start + covered..col_range.end {
                let shift = (j % 2) * 4;
                let col = j / 2;
                for tok in 0..TOKEN_BLOCK {
                    let x = &xs[(tt + tok) * x_stride..][..rows];
                    let mut acc = 0.0f32;
                    for (i, &xi) in x.iter().enumerate() {
                        let byte = data[(row_offset + i) * stride + col];
                        acc += xi * f32::from(HALF_UNITS[((byte >> shift) & 0x0F) as usize]);
                    }
                    outs[(tt + tok) * out_stride + (j - col_range.start)] = acc * half_norm;
                }
            }
            tt += TOKEN_BLOCK;
        }
        while tt < t {
            matvec_block(
                &xs[tt * x_stride..][..rows],
                m,
                row_offset,
                col_range.start..col_range.end,
                &mut outs[tt * out_stride..][..len],
            );
            tt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{add_assign, vec_mat};
    use hnlpu_model::Fp4;
    use proptest::prelude::*;

    fn packed_from(codes: &[u8], rows: usize, cols: usize) -> PackedFp4Matrix {
        let codes: Vec<Fp4> = codes.iter().map(|&c| Fp4::from_code(c)).collect();
        let norm = 1.0 / (rows as f32).sqrt() / 1.8;
        PackedFp4Matrix::from_codes(&codes, rows, cols, norm)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs()),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_identity() {
        // Codes picked so the packed matrix dequantizes to (1/norm-scaled)
        // diagonal: code 2 = +1.0.
        let mut codes = vec![0u8; 9];
        for i in 0..3 {
            codes[i * 3 + i] = 2;
        }
        let m = packed_from(&codes, 3, 3);
        let mut out = [0.0f32; 3];
        matvec_into(&[2.0, 3.0, 4.0], &m, &mut out);
        let expect: Vec<f32> = [2.0f32, 3.0, 4.0].iter().map(|v| v * m.norm()).collect();
        assert_close(&out, &expect, 1e-6);
    }

    #[test]
    fn region_kernel_and_fast_path_agree() {
        let codes: Vec<u8> = (0..96 * 80).map(|i| ((i * 7 + 3) % 16) as u8).collect();
        let m = packed_from(&codes, 96, 80);
        let x: Vec<f32> = (0..96)
            .map(|i| ((i * 31) % 17) as f32 * 0.1 - 0.8)
            .collect();
        let mut fast = vec![0.0f32; 80];
        let mut regions = vec![0.0f32; 80];
        matvec_into(&x, &m, &mut fast);
        region_matvec_block_into(&x, &m, 0, 0..80, &mut regions);
        assert_close(&fast, &regions, 1e-5);
    }

    #[test]
    fn block_partials_sum_to_full() {
        let codes: Vec<u8> = (0..64 * 48).map(|i| ((i * 11 + 5) % 16) as u8).collect();
        let m = packed_from(&codes, 64, 48);
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut full = vec![0.0f32; 48];
        matvec_into(&x, &m, &mut full);
        // Four row blocks × col range [16, 48), as a chip column computes.
        let mut acc = vec![0.0f32; 32];
        let mut part = vec![0.0f32; 32];
        for r in 0..4 {
            matvec_block_into(&x[r * 16..(r + 1) * 16], &m, r * 16, 16..48, &mut part);
            add_assign(&mut acc, &part);
        }
        assert_close(&acc, &full[16..48], 1e-5);
    }

    #[test]
    fn region_sums_with_unit_input_count_occupancy() {
        // With x = 1⃗ the region sums ARE the per-column code occupancy, so
        // summing them over columns reproduces `code_histogram` exactly.
        let codes: Vec<u8> = (0..40 * 33).map(|i| ((i * 13 + 1) % 16) as u8).collect();
        let m = packed_from(&codes, 40, 33);
        let ones = vec![1.0f32; 40];
        let mut totals = [0u64; 16];
        for col in 0..33 {
            let sums = region_sums(&ones, &m, col);
            for (t, s) in totals.iter_mut().zip(sums.iter()) {
                assert_eq!(s.fract(), 0.0);
                *t += *s as u64;
            }
        }
        assert_eq!(totals, m.code_histogram());
    }

    #[test]
    fn kernel_path_names_a_realization() {
        assert!(["avx2-half-units", "scalar-regions"].contains(&kernel_path()));
    }

    #[test]
    #[should_panic(expected = "row block out of bounds")]
    fn oversized_row_block_rejected() {
        let m = packed_from(&[0; 16], 4, 4);
        let mut out = [0.0; 4];
        matvec_block_into(&[1.0; 3], &m, 2, 0..4, &mut out);
    }

    #[test]
    #[should_panic(expected = "activation panel too short")]
    fn short_activation_panel_rejected() {
        let m = packed_from(&[0; 16], 4, 4);
        let mut outs = [0.0; 8];
        matmul_block_into(&[1.0; 6], 4, 2, &m, 0, 4, 0..4, &mut outs, 4);
    }

    #[test]
    fn rows_parallel_below_threshold_is_bitwise_matvec() {
        // Small matrices keep the single accumulation chain: bit-equal to
        // `matvec_into`, so test-model numerics are untouched.
        let codes: Vec<u8> = (0..64 * 48).map(|i| ((i * 11 + 5) % 16) as u8).collect();
        let m = packed_from(&codes, 64, 48);
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut serial = vec![0.0f32; 48];
        let mut par = vec![0.0f32; 48];
        let mut partials = vec![0.0f32; ROW_SPLITS * 48];
        matvec_into(&x, &m, &mut serial);
        matvec_rows_parallel_into(&x, &m, &mut par, &mut partials);
        assert_eq!(serial, par);
    }

    #[test]
    fn rows_parallel_above_threshold_matches_split_oracle_bitwise() {
        // 2048 × 1024 = 2^21 rows×cols: exactly at the fan-out threshold,
        // so the scoped-thread path runs under the `parallel` feature (and
        // the sequential split under `--no-default-features`). Both must
        // equal the hand-rolled fixed-split serial oracle bit for bit.
        let (rows, cols) = (2048usize, 1024usize);
        let codes: Vec<u8> = (0..rows * cols)
            .map(|i| (((i as u64).wrapping_mul(2654435761)) % 16) as u8)
            .collect();
        let m = packed_from(&codes, rows, cols);
        let x: Vec<f32> = (0..rows)
            .map(|i| ((i % 251) as f32 - 125.0) * 0.01)
            .collect();
        let mut out = vec![0.0f32; cols];
        let mut partials = vec![0.0f32; ROW_SPLITS * cols];
        matvec_rows_parallel_into(&x, &m, &mut out, &mut partials);
        // Oracle: the same fixed 4-way split and in-order reduction,
        // entirely on this thread.
        let mut oracle = vec![0.0f32; cols];
        let mut part = vec![0.0f32; cols];
        for s in 0..ROW_SPLITS {
            let lo = s * rows / ROW_SPLITS;
            let hi = (s + 1) * rows / ROW_SPLITS;
            matvec_block_into(&x[lo..hi], &m, lo, 0..cols, &mut part);
            add_assign(&mut oracle, &part);
        }
        assert_eq!(out, oracle);
    }

    proptest! {
        /// The region-accumulation kernel matches the naive dense f32
        /// `vec_mat` within 1e-4 relative tolerance on random matrices —
        /// the satellite acceptance property. Covers both realizations
        /// plus odd widths and the scalar column tail.
        #[test]
        fn matvec_matches_naive_vec_mat(
            rows in 1usize..96,
            cols in 1usize..80,
            seed in 0u64..1000,
        ) {
            let codes: Vec<u8> = (0..rows * cols)
                .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97)) % 16) as u8)
                .collect();
            let m = packed_from(&codes, rows, cols);
            let x: Vec<f32> = (0..rows)
                .map(|i| {
                    let v = (i as u64).wrapping_mul(seed.wrapping_add(11)) % 2000;
                    v as f32 * 0.001 - 1.0
                })
                .collect();
            let dense = m.to_f32();
            let naive = vec_mat(&x, &dense, cols);
            let mut fast = vec![0.0f32; cols];
            matvec_into(&x, &m, &mut fast);
            let mut regions = vec![0.0f32; cols];
            region_matvec_block_into(&x, &m, 0, 0..cols, &mut regions);
            for j in 0..cols {
                prop_assert!((fast[j] - naive[j]).abs() <= 1e-4 * (1.0 + naive[j].abs()),
                    "fast col {j}: {} vs {}", fast[j], naive[j]);
                prop_assert!((regions[j] - naive[j]).abs() <= 1e-4 * (1.0 + naive[j].abs()),
                    "regions col {j}: {} vs {}", regions[j], naive[j]);
            }
        }

        /// The tentpole bit-identity property: the dispatched panel matmul
        /// equals a loop of per-token `matvec_block_into` calls **bit for
        /// bit**, over ragged token counts (covering both the vectorized
        /// token blocks and the per-token remainder), odd column ranges
        /// (scalar-dispatch path + scalar tails), strided activation and
        /// output panels, and row sub-blocks.
        #[test]
        fn matmul_is_bitwise_loop_of_matvecs(
            rows in 1usize..72,
            cols in 1usize..72,
            t in 1usize..11,
            c0 in 0usize..8,
            c1 in 0usize..8,
            r0 in 0usize..6,
            xpad in 0usize..5,
            opad in 0usize..5,
            seed in 0u64..500,
        ) {
            let full_rows = rows + r0;
            let codes: Vec<u8> = (0..full_rows * cols)
                .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 131)) % 16) as u8)
                .collect();
            let m = packed_from(&codes, full_rows, cols);
            let cs = c0.min(cols - 1);
            let ce = cols - c1.min(cols - 1 - cs);
            let len = ce - cs;
            let x_stride = rows + xpad;
            let out_stride = len + opad;
            let xs: Vec<f32> = (0..(t - 1) * x_stride + rows)
                .map(|i| {
                    let v = (i as u64).wrapping_mul(seed.wrapping_add(7)).wrapping_add(3) % 2000;
                    v as f32 * 0.001 - 1.0
                })
                .collect();
            let mut outs = vec![0.0f32; (t - 1) * out_stride + len];
            matmul_block_into(&xs, x_stride, t, &m, r0, rows, cs..ce, &mut outs, out_stride);
            let mut regions = vec![0.0f32; (t - 1) * out_stride + len];
            region_matmul_block_into(&xs, x_stride, t, &m, r0, rows, cs..ce, &mut regions, out_stride);
            let mut want = vec![0.0f32; len];
            let mut want_regions = vec![0.0f32; len];
            for tt in 0..t {
                let x = &xs[tt * x_stride..][..rows];
                matvec_block_into(x, &m, r0, cs..ce, &mut want);
                prop_assert_eq!(&outs[tt * out_stride..][..len], want.as_slice(),
                    "dispatched row {} differs", tt);
                region_matvec_block_into(x, &m, r0, cs..ce, &mut want_regions);
                prop_assert_eq!(&regions[tt * out_stride..][..len], want_regions.as_slice(),
                    "scalar region row {} differs", tt);
            }
        }

        /// The fixed-split row-partitioned matvec matches its serial
        /// oracle bit for bit on arbitrary shapes and column ranges (the
        /// split always happens; only the execution schedule varies).
        #[test]
        fn rows_split_matches_serial_oracle_bitwise(
            rows in 1usize..96,
            cols in 1usize..64,
            c0 in 0usize..6,
            seed in 0u64..200,
        ) {
            let codes: Vec<u8> = (0..rows * cols)
                .map(|i| (((i as u64).wrapping_mul(0x9E3779B9).wrapping_add(seed)) % 16) as u8)
                .collect();
            let m = packed_from(&codes, rows, cols);
            let cs = c0.min(cols - 1);
            let w = cols - cs;
            let x: Vec<f32> = (0..rows)
                .map(|i| ((i as u64 * 37 + seed) % 1000) as f32 * 0.002 - 1.0)
                .collect();
            let mut out = vec![0.0f32; w];
            let mut partials = vec![0.0f32; ROW_SPLITS * w];
            matvec_rows_split_into(&x, &m, cs..cols, &mut out, &mut partials);
            let mut oracle = vec![0.0f32; w];
            let mut part = vec![0.0f32; w];
            for s in 0..ROW_SPLITS {
                let lo = s * rows / ROW_SPLITS;
                let hi = (s + 1) * rows / ROW_SPLITS;
                matvec_block_into(&x[lo..hi], &m, lo, cs..cols, &mut part);
                add_assign(&mut oracle, &part);
            }
            prop_assert_eq!(out, oracle);
        }

        /// Arbitrary sub-blocks match the dense `vec_mat_block` partials.
        #[test]
        fn block_matches_naive_block(
            rows in 8usize..64,
            cols in 8usize..64,
            fr in 0usize..4,
            fc in 0usize..4,
        ) {
            let codes: Vec<u8> = (0..rows * cols).map(|i| ((i * 5 + 2) % 16) as u8).collect();
            let m = packed_from(&codes, rows, cols);
            let x: Vec<f32> = (0..rows).map(|i| (i as f32 * 0.13).cos()).collect();
            let r0 = fr * rows / 8;
            let r1 = rows - fr * rows / 8;
            let c0 = fc * cols / 8;
            let c1 = cols - fc * cols / 8;
            let dense = m.to_f32();
            let naive = crate::tensor::vec_mat_block(&x, &dense, cols, r0..r1, c0..c1);
            let mut out = vec![0.0f32; c1 - c0];
            matvec_block_into(&x[r0..r1], &m, r0, c0..c1, &mut out);
            for j in 0..out.len() {
                prop_assert!((out[j] - naive[j]).abs() <= 1e-4 * (1.0 + naive[j].abs()));
            }
        }
    }
}
