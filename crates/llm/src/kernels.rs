//! Region-accumulation matvec kernels over packed FP4 weights.
//!
//! A Hardwired Neuron never multiplies (Figure 4, §4.2): each input is
//! routed into one of 16 POPCNT accumulator regions keyed by its FP4 weight
//! code, the 16 per-region sums are weighted by the E2M1 magnitude lattice,
//! and a final shift applies the scale. These kernels compute `x · W`
//! directly on [`PackedFp4Matrix`] codes the same way — no dequantized
//! tensor ever exists — in two interchangeable realizations:
//!
//! * **Scalar region kernel** ([`region_matvec_block_into`]): the textbook
//!   form. Per output column, bucket `x_i` by the stored 4-bit code, then
//!   combine buckets with [`MAGNITUDES`] and the per-matrix norm. This is
//!   the semantic ground truth (and the portable fallback).
//! * **Vectorized half-unit kernel** (x86-64 AVX2+FMA, selected at
//!   runtime): the same 16 regions realized as the constant-multiplier
//!   bank. Every FP4 value is an exact multiple of 0.5, so a 16-entry
//!   `pshufb` lookup maps each nibble to its signed integer half-unit
//!   ([`HALF_UNITS`]) — the per-region constant the hardware wires — and an
//!   FMA accumulates `x_i · hu` with the trailing ×0.5 folded into the
//!   norm. Associativity of the per-region grouping is the only difference
//!   (float sums reorder), which is why both realizations agree to ~1e-5
//!   relative, not bitwise.
//!
//! Both inference engines call these kernels for every projection, router,
//! and expert matvec, so within one process they see one arithmetic: the
//! engines' token streams stay in lockstep exactly as they did on the dense
//! `f32` path.

use hnlpu_model::fp4::{HALF_UNITS, MAGNITUDES, NUM_CODES};
use hnlpu_model::PackedFp4Matrix;
use std::ops::Range;

/// `out = x · W` over the whole packed matrix (`x.len() == rows`,
/// `out.len() == cols`).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matvec_into(x: &[f32], m: &PackedFp4Matrix, out: &mut [f32]) {
    matvec_block_into(x, m, 0, 0..m.cols(), out);
}

/// Partial product `out = x · W[row_offset .. row_offset + x.len(),
/// col_range]`, overwriting `out` — the dataflow executor's workhorse: a
/// chip holds a block of the packed matrix and produces a partial sum for
/// its column group.
///
/// # Panics
///
/// Panics if the addressed block exceeds the matrix shape or
/// `out.len() != col_range.len()`.
pub fn matvec_block_into(
    x: &[f32],
    m: &PackedFp4Matrix,
    row_offset: usize,
    col_range: Range<usize>,
    out: &mut [f32],
) {
    assert!(row_offset + x.len() <= m.rows(), "row block out of bounds");
    assert!(col_range.end <= m.cols(), "col range out of bounds");
    assert_eq!(out.len(), col_range.len(), "output length mismatch");
    // The vectorized path walks packed bytes from the first addressed
    // column, so it needs the range to start on a byte boundary; odd
    // starts (never produced by the engines) take the scalar kernel.
    #[cfg(target_arch = "x86_64")]
    if col_range.start.is_multiple_of(2) && avx2::available() {
        // SAFETY: AVX2+FMA presence checked at runtime; bounds above.
        unsafe { avx2::matvec_block(x, m, row_offset, col_range, out) };
        return;
    }
    region_matvec_block_into(x, m, row_offset, col_range, out);
}

/// The scalar region-accumulation kernel (semantic reference and portable
/// fallback): per output column, accumulate each `x_i` into one of 16
/// buckets indexed by the stored code — one add per weight, no multiply —
/// then combine the buckets with the magnitude lattice and the norm.
///
/// # Panics
///
/// Panics on the same conditions as [`matvec_block_into`].
pub fn region_matvec_block_into(
    x: &[f32],
    m: &PackedFp4Matrix,
    row_offset: usize,
    col_range: Range<usize>,
    out: &mut [f32],
) {
    assert!(row_offset + x.len() <= m.rows(), "row block out of bounds");
    assert!(col_range.end <= m.cols(), "col range out of bounds");
    assert_eq!(out.len(), col_range.len(), "output length mismatch");
    let stride = m.stride();
    let data = m.data();
    let norm = m.norm();
    for (o, j) in out.iter_mut().zip(col_range) {
        let shift = (j % 2) * 4;
        let col = j / 2;
        let mut buckets = [0.0f32; NUM_CODES];
        for (i, &xi) in x.iter().enumerate() {
            let byte = data[(row_offset + i) * stride + col];
            buckets[((byte >> shift) & 0x0F) as usize] += xi;
        }
        *o = combine_regions(&buckets) * norm;
    }
}

/// The 16 per-region input sums for one output column of `x · W` — what a
/// Hardwired Neuron's POPCNT accumulator regions hold right before the
/// magnitude combine. Exposed for tests and analyses: with `x = 1⃗`, region
/// `k` equals the column's occupancy count of code `k`.
///
/// # Panics
///
/// Panics if `x.len() != m.rows()` or `col >= m.cols()`.
pub fn region_sums(x: &[f32], m: &PackedFp4Matrix, col: usize) -> [f32; NUM_CODES] {
    assert_eq!(x.len(), m.rows(), "input length mismatch");
    assert!(col < m.cols(), "col out of bounds");
    let stride = m.stride();
    let data = m.data();
    let shift = (col % 2) * 4;
    let mut buckets = [0.0f32; NUM_CODES];
    for (i, &xi) in x.iter().enumerate() {
        let byte = data[i * stride + col / 2];
        buckets[((byte >> shift) & 0x0F) as usize] += xi;
    }
    buckets
}

/// Magnitude-lattice combine: positive region `k` minus its sign twin
/// `k | 8`, weighted by `MAGNITUDES[k]`. Region 0 (±0) contributes nothing.
fn combine_regions(buckets: &[f32; NUM_CODES]) -> f32 {
    let mut acc = 0.0f32;
    for k in 1..8 {
        acc += MAGNITUDES[k] * (buckets[k] - buckets[k | 8]);
    }
    acc
}

/// Which kernel realization this process selected: `"avx2-half-units"` or
/// `"scalar-regions"`. Recorded by the benchmark baseline.
pub fn kernel_path() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        return "avx2-half-units";
    }
    "scalar-regions"
}

/// The vectorized constant-multiplier-bank realization (x86-64 only).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{Range, HALF_UNITS};
    use hnlpu_model::PackedFp4Matrix;
    use std::arch::x86_64::*;

    /// Runtime CPU support check (cached by `std`).
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// Decode 16 packed bytes (32 columns of one row) into 4×8 `f32`
    /// half-unit weights, in column order: the `pshufb` against the
    /// [`HALF_UNITS`] table is the software image of the 16-region decoder.
    // SAFETY: pure register arithmetic on AVX2 intrinsics — no memory
    // access. Callers must have verified AVX2 support (all call sites are
    // inside `#[target_feature(enable = "avx2")]` fns reached only via
    // `available()`).
    #[inline(always)]
    unsafe fn decode32(bytes: __m128i, lut: __m128i, mask: __m128i) -> [__m256; 4] {
        let lo = _mm_and_si128(bytes, mask);
        let hi = _mm_and_si128(_mm_srli_epi16(bytes, 4), mask);
        let vlo = _mm_shuffle_epi8(lut, lo);
        let vhi = _mm_shuffle_epi8(lut, hi);
        // Interleave even/odd column values back into column order.
        let ilo = _mm_unpacklo_epi8(vlo, vhi);
        let ihi = _mm_unpackhi_epi8(vlo, vhi);
        [
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(ilo)),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(ilo, 8))),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(ihi)),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(ihi, 8))),
        ]
    }

    /// 64-column panel: eight output accumulators live in registers across
    /// the whole row sweep, so there are no horizontal sums at all.
    // SAFETY: caller (`matvec_block`) guarantees AVX2+FMA support and that
    // `data` points at `x.len()` rows of ≥ 32 readable bytes at `stride`
    // spacing, and `out` at ≥ 64 writable f32s. Unaligned loads/stores are
    // used throughout, so no alignment requirement.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn panel64(x: &[f32], data: *const u8, stride: usize, half_norm: f32, out: *mut f32) {
        let lut = _mm_loadu_si128(HALF_UNITS.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let mut a = [_mm256_setzero_ps(); 8];
        for (i, &xi) in x.iter().enumerate() {
            let xv = _mm256_set1_ps(xi);
            let rowp = data.add(i * stride);
            let w0 = decode32(_mm_loadu_si128(rowp as *const __m128i), lut, mask);
            let w1 = decode32(_mm_loadu_si128(rowp.add(16) as *const __m128i), lut, mask);
            a[0] = _mm256_fmadd_ps(w0[0], xv, a[0]);
            a[1] = _mm256_fmadd_ps(w0[1], xv, a[1]);
            a[2] = _mm256_fmadd_ps(w0[2], xv, a[2]);
            a[3] = _mm256_fmadd_ps(w0[3], xv, a[3]);
            a[4] = _mm256_fmadd_ps(w1[0], xv, a[4]);
            a[5] = _mm256_fmadd_ps(w1[1], xv, a[5]);
            a[6] = _mm256_fmadd_ps(w1[2], xv, a[6]);
            a[7] = _mm256_fmadd_ps(w1[3], xv, a[7]);
        }
        let nv = _mm256_set1_ps(half_norm);
        for (k, acc) in a.iter().enumerate() {
            _mm256_storeu_ps(out.add(8 * k), _mm256_mul_ps(*acc, nv));
        }
    }

    /// 32-column panel.
    // SAFETY: caller (`matvec_block`) guarantees AVX2+FMA support and that
    // `data` points at `x.len()` rows of ≥ 16 readable bytes at `stride`
    // spacing, and `out` at ≥ 32 writable f32s. Unaligned accesses only.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn panel32(x: &[f32], data: *const u8, stride: usize, half_norm: f32, out: *mut f32) {
        let lut = _mm_loadu_si128(HALF_UNITS.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let mut a = [_mm256_setzero_ps(); 4];
        for (i, &xi) in x.iter().enumerate() {
            let xv = _mm256_set1_ps(xi);
            let w = decode32(
                _mm_loadu_si128(data.add(i * stride) as *const __m128i),
                lut,
                mask,
            );
            a[0] = _mm256_fmadd_ps(w[0], xv, a[0]);
            a[1] = _mm256_fmadd_ps(w[1], xv, a[1]);
            a[2] = _mm256_fmadd_ps(w[2], xv, a[2]);
            a[3] = _mm256_fmadd_ps(w[3], xv, a[3]);
        }
        let nv = _mm256_set1_ps(half_norm);
        for (k, acc) in a.iter().enumerate() {
            _mm256_storeu_ps(out.add(8 * k), _mm256_mul_ps(*acc, nv));
        }
    }

    /// 16-column panel (8-byte row loads).
    // SAFETY: caller (`matvec_block`) guarantees AVX2+FMA support and that
    // `data` points at `x.len()` rows of ≥ 8 readable bytes at `stride`
    // spacing, and `out` at ≥ 16 writable f32s. Unaligned accesses only.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn panel16(x: &[f32], data: *const u8, stride: usize, half_norm: f32, out: *mut f32) {
        let lut = _mm_loadu_si128(HALF_UNITS.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let mut a = [_mm256_setzero_ps(); 2];
        for (i, &xi) in x.iter().enumerate() {
            let xv = _mm256_set1_ps(xi);
            let bytes = _mm_loadl_epi64(data.add(i * stride) as *const __m128i);
            let lo = _mm_and_si128(bytes, mask);
            let hi = _mm_and_si128(_mm_srli_epi16(bytes, 4), mask);
            let inter = _mm_unpacklo_epi8(_mm_shuffle_epi8(lut, lo), _mm_shuffle_epi8(lut, hi));
            let w0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(inter));
            let w1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(inter, 8)));
            a[0] = _mm256_fmadd_ps(w0, xv, a[0]);
            a[1] = _mm256_fmadd_ps(w1, xv, a[1]);
        }
        let nv = _mm256_set1_ps(half_norm);
        _mm256_storeu_ps(out, _mm256_mul_ps(a[0], nv));
        _mm256_storeu_ps(out.add(8), _mm256_mul_ps(a[1], nv));
    }

    /// Block matvec over packed codes. Caller guarantees bounds and an
    /// even `col_range.start`.
    // SAFETY: caller must ensure AVX2+FMA are present (checked via
    // `available()` at the dispatch site), `row_offset + x.len() ≤ m.rows()`,
    // `col_range.end ≤ m.cols()`, `col_range.start` even, and
    // `out.len() ≥ col_range.len()` — these bound every `base.add`/`out.add`
    // below within `m.data()` / `out`. The panel helpers inherit exactly
    // these bounds, narrowed per panel width.
    pub unsafe fn matvec_block(
        x: &[f32],
        m: &PackedFp4Matrix,
        row_offset: usize,
        col_range: Range<usize>,
        out: &mut [f32],
    ) {
        debug_assert_eq!(col_range.start % 2, 0);
        let stride = m.stride();
        let half_norm = 0.5 * m.norm();
        let base = m
            .data()
            .as_ptr()
            .add(row_offset * stride + col_range.start / 2);
        let total = col_range.len();
        let mut c = 0;
        while total - c >= 64 {
            panel64(
                x,
                base.add(c / 2),
                stride,
                half_norm,
                out.as_mut_ptr().add(c),
            );
            c += 64;
        }
        if total - c >= 32 {
            panel32(
                x,
                base.add(c / 2),
                stride,
                half_norm,
                out.as_mut_ptr().add(c),
            );
            c += 32;
        }
        if total - c >= 16 {
            panel16(
                x,
                base.add(c / 2),
                stride,
                half_norm,
                out.as_mut_ptr().add(c),
            );
            c += 16;
        }
        // Scalar half-unit tail for the last < 16 columns.
        let data = m.data();
        for j in col_range.start + c..col_range.end {
            let shift = (j % 2) * 4;
            let mut acc = 0.0f32;
            for (i, &xi) in x.iter().enumerate() {
                let byte = data[(row_offset + i) * stride + j / 2];
                acc += xi * f32::from(HALF_UNITS[((byte >> shift) & 0x0F) as usize]);
            }
            out[j - col_range.start] = acc * half_norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{add_assign, vec_mat};
    use hnlpu_model::Fp4;
    use proptest::prelude::*;

    fn packed_from(codes: &[u8], rows: usize, cols: usize) -> PackedFp4Matrix {
        let codes: Vec<Fp4> = codes.iter().map(|&c| Fp4::from_code(c)).collect();
        let norm = 1.0 / (rows as f32).sqrt() / 1.8;
        PackedFp4Matrix::from_codes(&codes, rows, cols, norm)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs()),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_identity() {
        // Codes picked so the packed matrix dequantizes to (1/norm-scaled)
        // diagonal: code 2 = +1.0.
        let mut codes = vec![0u8; 9];
        for i in 0..3 {
            codes[i * 3 + i] = 2;
        }
        let m = packed_from(&codes, 3, 3);
        let mut out = [0.0f32; 3];
        matvec_into(&[2.0, 3.0, 4.0], &m, &mut out);
        let expect: Vec<f32> = [2.0f32, 3.0, 4.0].iter().map(|v| v * m.norm()).collect();
        assert_close(&out, &expect, 1e-6);
    }

    #[test]
    fn region_kernel_and_fast_path_agree() {
        let codes: Vec<u8> = (0..96 * 80).map(|i| ((i * 7 + 3) % 16) as u8).collect();
        let m = packed_from(&codes, 96, 80);
        let x: Vec<f32> = (0..96)
            .map(|i| ((i * 31) % 17) as f32 * 0.1 - 0.8)
            .collect();
        let mut fast = vec![0.0f32; 80];
        let mut regions = vec![0.0f32; 80];
        matvec_into(&x, &m, &mut fast);
        region_matvec_block_into(&x, &m, 0, 0..80, &mut regions);
        assert_close(&fast, &regions, 1e-5);
    }

    #[test]
    fn block_partials_sum_to_full() {
        let codes: Vec<u8> = (0..64 * 48).map(|i| ((i * 11 + 5) % 16) as u8).collect();
        let m = packed_from(&codes, 64, 48);
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut full = vec![0.0f32; 48];
        matvec_into(&x, &m, &mut full);
        // Four row blocks × col range [16, 48), as a chip column computes.
        let mut acc = vec![0.0f32; 32];
        let mut part = vec![0.0f32; 32];
        for r in 0..4 {
            matvec_block_into(&x[r * 16..(r + 1) * 16], &m, r * 16, 16..48, &mut part);
            add_assign(&mut acc, &part);
        }
        assert_close(&acc, &full[16..48], 1e-5);
    }

    #[test]
    fn region_sums_with_unit_input_count_occupancy() {
        // With x = 1⃗ the region sums ARE the per-column code occupancy, so
        // summing them over columns reproduces `code_histogram` exactly.
        let codes: Vec<u8> = (0..40 * 33).map(|i| ((i * 13 + 1) % 16) as u8).collect();
        let m = packed_from(&codes, 40, 33);
        let ones = vec![1.0f32; 40];
        let mut totals = [0u64; 16];
        for col in 0..33 {
            let sums = region_sums(&ones, &m, col);
            for (t, s) in totals.iter_mut().zip(sums.iter()) {
                assert_eq!(s.fract(), 0.0);
                *t += *s as u64;
            }
        }
        assert_eq!(totals, m.code_histogram());
    }

    #[test]
    fn kernel_path_names_a_realization() {
        assert!(["avx2-half-units", "scalar-regions"].contains(&kernel_path()));
    }

    #[test]
    #[should_panic(expected = "row block out of bounds")]
    fn oversized_row_block_rejected() {
        let m = packed_from(&[0; 16], 4, 4);
        let mut out = [0.0; 4];
        matvec_block_into(&[1.0; 3], &m, 2, 0..4, &mut out);
    }

    proptest! {
        /// The region-accumulation kernel matches the naive dense f32
        /// `vec_mat` within 1e-4 relative tolerance on random matrices —
        /// the satellite acceptance property. Covers both realizations
        /// plus odd widths and the scalar column tail.
        #[test]
        fn matvec_matches_naive_vec_mat(
            rows in 1usize..96,
            cols in 1usize..80,
            seed in 0u64..1000,
        ) {
            let codes: Vec<u8> = (0..rows * cols)
                .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97)) % 16) as u8)
                .collect();
            let m = packed_from(&codes, rows, cols);
            let x: Vec<f32> = (0..rows)
                .map(|i| {
                    let v = (i as u64).wrapping_mul(seed.wrapping_add(11)) % 2000;
                    v as f32 * 0.001 - 1.0
                })
                .collect();
            let dense = m.to_f32();
            let naive = vec_mat(&x, &dense, cols);
            let mut fast = vec![0.0f32; cols];
            matvec_into(&x, &m, &mut fast);
            let mut regions = vec![0.0f32; cols];
            region_matvec_block_into(&x, &m, 0, 0..cols, &mut regions);
            for j in 0..cols {
                prop_assert!((fast[j] - naive[j]).abs() <= 1e-4 * (1.0 + naive[j].abs()),
                    "fast col {j}: {} vs {}", fast[j], naive[j]);
                prop_assert!((regions[j] - naive[j]).abs() <= 1e-4 * (1.0 + naive[j].abs()),
                    "regions col {j}: {} vs {}", regions[j], naive[j]);
            }
        }

        /// Arbitrary sub-blocks match the dense `vec_mat_block` partials.
        #[test]
        fn block_matches_naive_block(
            rows in 8usize..64,
            cols in 8usize..64,
            fr in 0usize..4,
            fc in 0usize..4,
        ) {
            let codes: Vec<u8> = (0..rows * cols).map(|i| ((i * 5 + 2) % 16) as u8).collect();
            let m = packed_from(&codes, rows, cols);
            let x: Vec<f32> = (0..rows).map(|i| (i as f32 * 0.13).cos()).collect();
            let r0 = fr * rows / 8;
            let r1 = rows - fr * rows / 8;
            let c0 = fc * cols / 8;
            let c1 = cols - fc * cols / 8;
            let dense = m.to_f32();
            let naive = crate::tensor::vec_mat_block(&x, &dense, cols, r0..r1, c0..c1);
            let mut out = vec![0.0f32; c1 - c0];
            matvec_block_into(&x[r0..r1], &m, r0, c0..c1, &mut out);
            for j in 0..out.len() {
                prop_assert!((out[j] - naive[j]).abs() <= 1e-4 * (1.0 + naive[j].abs()));
            }
        }
    }
}
