//! Reusable per-sequence scratch memory for the decode hot path.
//!
//! The paper's machine has no heap: every intermediate of Figure 10 lives
//! in a fixed on-chip buffer. [`Scratch`] is the software analogue — one
//! arena per resident sequence holding every intermediate a decode step
//! needs, sized once from the [`TransformerConfig`] so the steady-state
//! forward pass performs no allocation at all. Both engines
//! ([`crate::reference::Transformer`] and
//! [`crate::dataflow::DataflowExecutor`]) thread the same arena type, and
//! the batched engine gives each KV slot its own.

use hnlpu_model::TransformerConfig;

/// Widest activation panel the prefill path runs through the matmul
/// kernels in one pass. Longer prompts are chunked into panels of at most
/// this many tokens; the [`Scratch`] arena sizes its panel buffers to it
/// so chunked prefill stays allocation-free.
pub const MAX_PREFILL_PANEL: usize = 64;

/// Precomputed rotary-embedding table for one sequence.
///
/// The seed path recomputed `10000^(2i/d)` with `powf` for every head of
/// every layer of every step. The frequencies depend only on the head
/// dimension, so they are computed once; per step the `d/2` sin/cos pairs
/// for the current position are computed once and shared by all heads. The
/// angles are produced by the *same* `position / 10000^(2i/d)` expression
/// as [`crate::ops::rope`], so rotation stays bit-identical to the seed
/// formula.
#[derive(Debug, Clone)]
pub struct RopeTable {
    /// `10000^(2i/d)` for `i in 0..d/2`.
    freq: Vec<f32>,
    sin: Vec<f32>,
    cos: Vec<f32>,
    /// Position the sin/cos rows currently hold.
    position: Option<usize>,
}

impl RopeTable {
    /// A table for head dimension `head_dim` (must be even).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd.
    // analyze: cold — constructor; runs once per sequence, not per token.
    pub fn new(head_dim: usize) -> Self {
        assert!(head_dim.is_multiple_of(2), "rope needs an even head dim");
        let half = head_dim / 2;
        RopeTable {
            freq: (0..half)
                .map(|i| 10_000f32.powf(2.0 * i as f32 / head_dim as f32))
                .collect(),
            sin: vec![0.0; half],
            cos: vec![0.0; half],
            position: None,
        }
    }

    /// Fill the sin/cos rows for `position` (no-op when already there).
    pub fn prepare(&mut self, position: usize) {
        if self.position == Some(position) {
            return;
        }
        for i in 0..self.freq.len() {
            let theta = position as f32 / self.freq[i];
            let (s, c) = theta.sin_cos();
            self.sin[i] = s;
            self.cos[i] = c;
        }
        self.position = Some(position);
    }

    /// Rotate one head vector in place using the prepared position.
    ///
    /// # Panics
    ///
    /// Panics if `head` does not match the table's head dimension or
    /// [`prepare`](Self::prepare) was never called.
    pub fn apply(&self, head: &mut [f32]) {
        assert_eq!(head.len(), 2 * self.freq.len(), "head dimension");
        assert!(self.position.is_some(), "prepare() before apply()");
        for i in 0..self.freq.len() {
            let (sin, cos) = (self.sin[i], self.cos[i]);
            let (a, b) = (head[2 * i], head[2 * i + 1]);
            head[2 * i] = a * cos - b * sin;
            head[2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Per-sequence scratch arena: every decode-step intermediate, allocated
/// once. See the module docs.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Residual stream (hidden).
    pub(crate) x: Vec<f32>,
    /// Normalized residual (hidden).
    pub(crate) xn: Vec<f32>,
    /// Post-attention residual (hidden).
    pub(crate) xo: Vec<f32>,
    /// MoE output accumulator (hidden).
    pub(crate) y: Vec<f32>,
    /// Query projection (q_width).
    pub(crate) q: Vec<f32>,
    /// Key projection (kv_width).
    pub(crate) k: Vec<f32>,
    /// Value projection (kv_width).
    pub(crate) v: Vec<f32>,
    /// Attention output heads (q_width).
    pub(crate) attn: Vec<f32>,
    /// One chip's partial sum (max column/row slice width).
    pub(crate) partial: Vec<f32>,
    /// Attention scores over the context (grows with the sequence).
    pub(crate) scores: Vec<f32>,
    /// Flash-attention per-chip value accumulators (GRID × head_dim).
    pub(crate) flash_acc: Vec<f32>,
    /// Flash-attention combine numerator (head_dim).
    pub(crate) numer: Vec<f32>,
    /// Router logits (num_experts).
    pub(crate) router_logits: Vec<f32>,
    /// Top-k expert indices (experts_per_token).
    pub(crate) chosen: Vec<usize>,
    /// Softmaxed expert weights (experts_per_token).
    pub(crate) expert_w: Vec<f32>,
    /// Expert up projection (intermediate).
    pub(crate) up: Vec<f32>,
    /// Expert gate projection, overwritten by the SwiGLU (intermediate).
    pub(crate) gate: Vec<f32>,
    /// Expert down projection (hidden).
    pub(crate) down: Vec<f32>,
    /// LoRA side-channel delta (q_width).
    pub(crate) delta: Vec<f32>,
    /// LoRA rank-r intermediate (resized to the adapter's rank on use).
    pub(crate) lora_hidden: Vec<f32>,
    /// Shared rotary table.
    pub(crate) rope: RopeTable,
    /// Next-token logits of the most recent step (vocab_size).
    pub(crate) logits: Vec<f32>,
    /// Row-partitioned matvec partials (`kernels::ROW_SPLITS` × widest
    /// projection output).
    pub(crate) partials: Vec<f32>,
    /// Prefill residual panel (T × hidden).
    pub(crate) xp: Vec<f32>,
    /// Prefill normalized panel (T × hidden).
    pub(crate) xnp: Vec<f32>,
    /// Prefill post-attention residual panel (T × hidden).
    pub(crate) xop: Vec<f32>,
    /// Prefill query panel (T × q_width).
    pub(crate) qp: Vec<f32>,
    /// Prefill key panel (T × kv_width).
    pub(crate) kp: Vec<f32>,
    /// Prefill value panel (T × kv_width).
    pub(crate) vp: Vec<f32>,
    /// Prefill attention-output panel (T × q_width).
    pub(crate) attnp: Vec<f32>,
    /// Prefill partial-product panel (T × max per-chip slice width).
    pub(crate) partp: Vec<f32>,
    /// Prefill router-logit panel (T × num_experts).
    pub(crate) routerp: Vec<f32>,
    /// Prefill top-k expert choices (T × experts_per_token).
    pub(crate) chosenp: Vec<usize>,
    /// Prefill softmaxed expert weights (T × experts_per_token).
    pub(crate) expertwp: Vec<f32>,
    /// Expert-grouped activation gather (≤ T rows × hidden); reused for
    /// the group's down-projection outputs.
    pub(crate) gatherp: Vec<f32>,
    /// Expert-grouped up projections (≤ T rows × intermediate).
    pub(crate) upp: Vec<f32>,
    /// Expert-grouped gate projections (≤ T rows × intermediate).
    pub(crate) gatep: Vec<f32>,
    /// Staged per-(token, chosen-slot) expert outputs (T ×
    /// experts_per_token × hidden), replayed in each token's chosen order.
    pub(crate) stagep: Vec<f32>,
    /// (token × experts_per_token) slot ids of the expert group currently
    /// being gathered (capacity T × experts_per_token).
    pub(crate) gidx: Vec<usize>,
}

impl Scratch {
    /// An arena sized for one sequence of `config`'s architecture.
    // analyze: cold — the arena is allocated once up front; every
    // per-token fn below reuses these buffers.
    pub fn new(config: &TransformerConfig) -> Self {
        let h = config.hidden_size;
        let qw = config.attention.q_width();
        let kvw = config.attention.kv_width();
        let hd = config.attention.head_dim;
        let grid = crate::dataflow::GRID;
        // Widest per-chip slice either engine hands to `partial`.
        let slice = (qw / grid).max(kvw / grid).max(h / grid).max(1);
        let inter = config.moe.intermediate_size;
        let experts = config.moe.num_experts;
        let per_tok = config.moe.experts_per_token;
        // Widest output a row-partitioned projection produces.
        let maxw = qw.max(kvw).max(h).max(inter).max(experts);
        let t = MAX_PREFILL_PANEL;
        Scratch {
            x: vec![0.0; h],
            xn: vec![0.0; h],
            xo: vec![0.0; h],
            y: vec![0.0; h],
            q: vec![0.0; qw],
            k: vec![0.0; kvw],
            v: vec![0.0; kvw],
            attn: vec![0.0; qw],
            partial: vec![0.0; slice],
            scores: Vec::new(),
            flash_acc: vec![0.0; grid * hd],
            numer: vec![0.0; hd],
            router_logits: vec![0.0; config.moe.num_experts],
            chosen: Vec::with_capacity(config.moe.experts_per_token),
            expert_w: Vec::with_capacity(config.moe.experts_per_token),
            up: vec![0.0; config.moe.intermediate_size],
            gate: vec![0.0; config.moe.intermediate_size],
            down: vec![0.0; h],
            delta: vec![0.0; qw],
            lora_hidden: Vec::new(),
            rope: RopeTable::new(hd),
            logits: vec![0.0; config.vocab_size],
            partials: vec![0.0; crate::kernels::ROW_SPLITS * maxw],
            xp: vec![0.0; t * h],
            xnp: vec![0.0; t * h],
            xop: vec![0.0; t * h],
            qp: vec![0.0; t * qw],
            kp: vec![0.0; t * kvw],
            vp: vec![0.0; t * kvw],
            attnp: vec![0.0; t * qw],
            partp: vec![0.0; t * slice],
            routerp: vec![0.0; t * experts],
            chosenp: vec![0; t * per_tok],
            expertwp: vec![0.0; t * per_tok],
            gatherp: vec![0.0; t * h],
            upp: vec![0.0; t * inter],
            gatep: vec![0.0; t * inter],
            stagep: vec![0.0; t * per_tok * h],
            gidx: Vec::with_capacity(t * per_tok),
        }
    }

    /// Pre-size the context-length-dependent buffers for sequences up to
    /// `positions` tokens, so steady-state decode stays reallocation-free
    /// (held by the zero-allocation sentinel in
    /// `tests/tests/zero_alloc_decode.rs`).
    pub fn reserve_context(&mut self, positions: usize) {
        self.scores
            .reserve(positions.saturating_sub(self.scores.len()));
    }

    /// Next-token logits produced by the most recent step.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// Final normalized hidden state of the most recent step.
    pub fn hidden(&self) -> &[f32] {
        &self.xn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::rope;
    use hnlpu_model::zoo;

    #[test]
    fn rope_table_matches_seed_formula_bitwise() {
        let mut table = RopeTable::new(16);
        for position in [0usize, 1, 7, 100, 4096] {
            table.prepare(position);
            let mut a: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
            let mut b = a.clone();
            table.apply(&mut a);
            rope(&mut b, position);
            assert_eq!(a, b, "position {position}");
        }
    }

    #[test]
    fn prepare_is_idempotent() {
        let mut t = RopeTable::new(8);
        t.prepare(5);
        let sin = t.sin.clone();
        t.prepare(5);
        assert_eq!(t.sin, sin);
        t.prepare(6);
        assert_ne!(t.sin, sin);
    }

    #[test]
    #[should_panic(expected = "even head dim")]
    fn odd_head_dim_rejected() {
        RopeTable::new(7);
    }

    #[test]
    fn scratch_sizes_follow_config() {
        let c = zoo::dataflow_test_model().config;
        let s = Scratch::new(&c);
        assert_eq!(s.x.len(), c.hidden_size);
        assert_eq!(s.q.len(), c.attention.q_width());
        assert_eq!(s.logits.len(), c.vocab_size);
        assert_eq!(s.router_logits.len(), c.moe.num_experts);
    }
}
