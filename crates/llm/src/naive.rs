//! The pre-optimization baseline: a dense-`f32`, allocation-per-op decoder.
//!
//! [`NaiveTransformer`] dequantizes every packed matrix up front
//! ([`hnlpu_model::PackedFp4Matrix::to_f32`]) and runs the seed's original
//! hot path — fresh `Vec`s for every intermediate, [`crate::tensor::vec_mat`]
//! over dense `f32` weights, `powf`-per-element rotary embedding. It exists
//! for two jobs:
//!
//! * the benchmark baseline the packed region-accumulation path is measured
//!   against (`hnlpu-bench`'s `inference` bench and `BENCH_inference.json`);
//! * a semantic cross-check: its logits must agree with the optimized
//!   [`crate::reference::Transformer`] within quantization-noise tolerance,
//!   since both compute the same function from the same codes.

use crate::kv_cache::KvCache;
use crate::ops::{rmsnorm, rope, softmax, swiglu, topk};
use crate::sampler::Sampler;
use crate::tensor::{add_assign, dot, vec_mat};
use hnlpu_model::{ModelWeights, TransformerConfig};

/// Dense `f32` weights of one layer (the memory layout the seed carried).
#[derive(Debug, Clone)]
struct DenseLayer {
    wq: Vec<f32>,
    wk: Vec<f32>,
    wv: Vec<f32>,
    wo: Vec<f32>,
    router: Vec<f32>,
    up: Vec<Vec<f32>>,
    gate: Vec<Vec<f32>>,
    down: Vec<Vec<f32>>,
}

/// The dense-`f32` baseline decoder. See the module docs.
#[derive(Debug, Clone)]
pub struct NaiveTransformer {
    config: TransformerConfig,
    embedding: Vec<f32>,
    layers: Vec<DenseLayer>,
}

impl NaiveTransformer {
    /// Dequantize `weights` into resident dense `f32` tensors.
    pub fn new(weights: &ModelWeights) -> Self {
        NaiveTransformer {
            config: weights.config,
            embedding: weights.embedding.clone(),
            layers: weights
                .layers
                .iter()
                .map(|l| DenseLayer {
                    wq: l.wq.to_f32(),
                    wk: l.wk.to_f32(),
                    wv: l.wv.to_f32(),
                    wo: l.wo.to_f32(),
                    router: l.router.to_f32(),
                    up: l.up.iter().map(|m| m.to_f32()).collect(),
                    gate: l.gate.iter().map(|m| m.to_f32()).collect(),
                    down: l.down.iter().map(|m| m.to_f32()).collect(),
                })
                .collect(),
        }
    }

    /// The architecture.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// An empty KV cache for this model.
    pub fn new_cache(&self) -> KvCache {
        let c = &self.config;
        KvCache::new(c.num_layers, c.attention.num_kv_heads, c.attention.head_dim)
    }

    /// Resident weight bytes of the dense representation.
    pub fn resident_weight_bytes(&self) -> usize {
        let layer_bytes: usize = self
            .layers
            .iter()
            .map(|l| {
                (l.wq.len()
                    + l.wk.len()
                    + l.wv.len()
                    + l.wo.len()
                    + l.router.len()
                    + l.up.iter().map(Vec::len).sum::<usize>()
                    + l.gate.iter().map(Vec::len).sum::<usize>()
                    + l.down.iter().map(Vec::len).sum::<usize>())
                    * 4
            })
            .sum();
        layer_bytes + self.embedding.len() * 4
    }

    /// One decode step, exactly the seed's allocating code path.
    pub fn step(&self, token: u32, cache: &mut KvCache) -> Vec<f32> {
        let c = self.config;
        let h = c.hidden_size;
        assert!((token as usize) < c.vocab_size, "token out of vocabulary");
        let position = cache.len();
        let mut x: Vec<f32> = self.embedding[token as usize * h..(token as usize + 1) * h].to_vec();
        for layer in 0..c.num_layers {
            x = self.block(&x, layer, position, cache);
        }
        let xf = rmsnorm(&x);
        (0..c.vocab_size)
            .map(|t| dot(&xf, &self.embedding[t * h..(t + 1) * h]))
            .collect()
    }

    fn block(&self, x: &[f32], layer: usize, position: usize, cache: &mut KvCache) -> Vec<f32> {
        let c = self.config;
        let w = &self.layers[layer];
        let (hd, qh, kvh) = (
            c.attention.head_dim,
            c.attention.num_query_heads,
            c.attention.num_kv_heads,
        );
        let group = c.attention.group_size();

        let xn = rmsnorm(x);
        let mut q = vec_mat(&xn, &w.wq, c.attention.q_width());
        let mut k = vec_mat(&xn, &w.wk, c.attention.kv_width());
        let v = vec_mat(&xn, &w.wv, c.attention.kv_width());
        for head in 0..qh {
            rope(&mut q[head * hd..(head + 1) * hd], position);
        }
        for head in 0..kvh {
            rope(&mut k[head * hd..(head + 1) * hd], position);
        }
        cache.append(layer, &k, &v);
        let ctx = cache.len();
        let scale = 1.0 / (hd as f32).sqrt();

        let mut attn_out = vec![0.0f32; qh * hd];
        for head in 0..qh {
            let kv_head = head / group;
            let qh_vec = &q[head * hd..(head + 1) * hd];
            let scores: Vec<f32> = (0..ctx)
                .map(|p| dot(qh_vec, cache.key(layer, p, kv_head)) * scale)
                .collect();
            let probs = softmax(&scores);
            let out = &mut attn_out[head * hd..(head + 1) * hd];
            for (p, &pr) in probs.iter().enumerate() {
                let val = cache.value(layer, p, kv_head);
                for (o, &vv) in out.iter_mut().zip(val.iter()) {
                    *o += pr * vv;
                }
            }
        }
        let mut xo = vec_mat(&attn_out, &w.wo, c.hidden_size);
        add_assign(&mut xo, x);

        let xn = rmsnorm(&xo);
        let router_logits = vec_mat(&xn, &w.router, c.moe.num_experts);
        let chosen = topk(&router_logits, c.moe.experts_per_token);
        let chosen_logits: Vec<f32> = chosen.iter().map(|&e| router_logits[e]).collect();
        let expert_weights = softmax(&chosen_logits);

        let mut y = vec![0.0f32; c.hidden_size];
        for (&expert, &ew) in chosen.iter().zip(expert_weights.iter()) {
            let up = vec_mat(&xn, &w.up[expert], c.moe.intermediate_size);
            let gate = vec_mat(&xn, &w.gate[expert], c.moe.intermediate_size);
            let act = swiglu(&gate, &up);
            let down = vec_mat(&act, &w.down[expert], c.hidden_size);
            for (yo, &d) in y.iter_mut().zip(down.iter()) {
                *yo += ew * d;
            }
        }
        add_assign(&mut y, &xo);
        y
    }

    /// Prefill `prompt` then greedily decode `n` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_greedy(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must contain at least one token");
        let mut cache = self.new_cache();
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.step(t, &mut cache);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = Sampler::Greedy.sample(&logits);
            out.push(next);
            if out.len() == n {
                break;
            }
            logits = self.step(next, &mut cache);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Transformer;
    use hnlpu_model::{zoo, WeightGenerator};

    fn weights() -> ModelWeights {
        let card = zoo::dataflow_test_model();
        ModelWeights::materialize(&card.config, &WeightGenerator::new(2026))
    }

    #[test]
    fn naive_logits_match_packed_reference() {
        // Dense f32 and packed region accumulation compute the same
        // function from the same codes; only summation order differs.
        let w = weights();
        let naive = NaiveTransformer::new(&w);
        let packed = Transformer::new(w);
        let mut nc = naive.new_cache();
        let mut pc = packed.new_cache();
        for &t in &[1u32, 9, 17, 33] {
            let ln = naive.step(t, &mut nc);
            let lp = packed.step(t, &mut pc);
            for (i, (&a, &b)) in ln.iter().zip(lp.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-3 * (1.0 + a.abs()),
                    "token {t} logit {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn naive_greedy_tokens_match_packed_reference() {
        let w = weights();
        let naive = NaiveTransformer::new(&w);
        let packed = Transformer::new(w);
        assert_eq!(
            naive.generate_greedy(&[1, 5, 9], 10),
            packed.generate_greedy(&[1, 5, 9], 10)
        );
    }

    #[test]
    fn dense_residency_is_at_least_four_times_packed() {
        let w = weights();
        let naive = NaiveTransformer::new(&w);
        let packed_bytes = w.resident_weight_bytes();
        assert!(
            packed_bytes * 4 <= naive.resident_weight_bytes() as u64,
            "packed {packed_bytes} vs dense {}",
            naive.resident_weight_bytes()
        );
    }
}
