//! Per-layer key/value cache (the functional twin of the Attention Buffer).

/// KV storage for one sequence: `layers × positions × kv_heads × head_dim`.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    layers: Vec<LayerKv>,
    kv_heads: usize,
    head_dim: usize,
}

#[derive(Debug, Clone, Default)]
struct LayerKv {
    /// Flattened `(positions, kv_heads * head_dim)` keys.
    keys: Vec<f32>,
    /// Flattened values, same layout.
    values: Vec<f32>,
}

impl KvCache {
    /// An empty cache for `num_layers` layers of `kv_heads × head_dim`.
    pub fn new(num_layers: usize, kv_heads: usize, head_dim: usize) -> Self {
        KvCache {
            layers: vec![LayerKv::default(); num_layers],
            kv_heads,
            head_dim,
        }
    }

    /// Cached positions (context length).
    pub fn len(&self) -> usize {
        self.layers
            .first()
            .map_or(0, |l| l.keys.len() / (self.kv_heads * self.head_dim).max(1))
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one position's K and V for `layer`.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `kv_heads * head_dim` long or the layer
    /// index is out of range.
    pub fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        let width = self.kv_heads * self.head_dim;
        assert_eq!(k.len(), width, "key width");
        assert_eq!(v.len(), width, "value width");
        let l = &mut self.layers[layer];
        l.keys.extend_from_slice(k);
        l.values.extend_from_slice(v);
    }

    /// Key vector of `head` at `position` in `layer`.
    pub fn key(&self, layer: usize, position: usize, head: usize) -> &[f32] {
        let width = self.kv_heads * self.head_dim;
        let base = position * width + head * self.head_dim;
        &self.layers[layer].keys[base..base + self.head_dim]
    }

    /// Value vector of `head` at `position` in `layer`.
    pub fn value(&self, layer: usize, position: usize, head: usize) -> &[f32] {
        let width = self.kv_heads * self.head_dim;
        let base = position * width + head * self.head_dim;
        &self.layers[layer].values[base..base + self.head_dim]
    }

    /// Total cached bytes at fp16 storage (capacity planning).
    pub fn bytes_fp16(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.keys.len() + l.values.len()) as u64 * 2)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_fetch() {
        let mut c = KvCache::new(2, 2, 4);
        assert!(c.is_empty());
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v: Vec<f32> = (0..8).map(|i| -(i as f32)).collect();
        c.append(0, &k, &v);
        c.append(1, &v, &k);
        assert_eq!(c.len(), 1);
        assert_eq!(c.key(0, 0, 1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(c.value(1, 0, 0), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn grows_with_positions() {
        let mut c = KvCache::new(1, 1, 2);
        for p in 0..5 {
            c.append(0, &[p as f32, 0.0], &[0.0, p as f32]);
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.key(0, 3, 0), &[3.0, 0.0]);
        assert_eq!(c.bytes_fp16(), 5 * 2 * 2 * 2);
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn wrong_width_rejected() {
        KvCache::new(1, 2, 4).append(0, &[0.0; 7], &[0.0; 8]);
    }
}
