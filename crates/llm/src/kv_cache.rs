//! Per-layer key/value cache (the functional twin of the Attention Buffer).

/// KV storage for one sequence: `layers × positions × kv_heads × head_dim`.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    layers: Vec<LayerKv>,
    kv_heads: usize,
    head_dim: usize,
}

#[derive(Debug, Clone, Default)]
struct LayerKv {
    /// Flattened `(positions, kv_heads * head_dim)` keys.
    keys: Vec<f32>,
    /// Flattened values, same layout.
    values: Vec<f32>,
}

impl KvCache {
    /// An empty cache for `num_layers` layers of `kv_heads × head_dim`.
    pub fn new(num_layers: usize, kv_heads: usize, head_dim: usize) -> Self {
        KvCache {
            layers: vec![LayerKv::default(); num_layers],
            kv_heads,
            head_dim,
        }
    }

    /// Cached positions (context length).
    pub fn len(&self) -> usize {
        self.layers
            .first()
            .map_or(0, |l| l.keys.len() / (self.kv_heads * self.head_dim).max(1))
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one position's K and V for `layer`.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `kv_heads * head_dim` long or the layer
    /// index is out of range.
    pub fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        let width = self.kv_heads * self.head_dim;
        assert_eq!(k.len(), width, "key width");
        assert_eq!(v.len(), width, "value width");
        let l = &mut self.layers[layer];
        l.keys.extend_from_slice(k);
        l.values.extend_from_slice(v);
    }

    /// Key vector of `head` at `position` in `layer`.
    pub fn key(&self, layer: usize, position: usize, head: usize) -> &[f32] {
        let width = self.kv_heads * self.head_dim;
        let base = position * width + head * self.head_dim;
        &self.layers[layer].keys[base..base + self.head_dim]
    }

    /// Value vector of `head` at `position` in `layer`.
    pub fn value(&self, layer: usize, position: usize, head: usize) -> &[f32] {
        let width = self.kv_heads * self.head_dim;
        let base = position * width + head * self.head_dim;
        &self.layers[layer].values[base..base + self.head_dim]
    }

    /// KV heads per cached position.
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Number of layers this cache covers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Pre-size every layer for `positions` cached positions, so
    /// steady-state [`append`](Self::append) never reallocates — the
    /// zero-allocation decode sentinel (`tests/tests/zero_alloc_decode.rs`)
    /// holds the engine to that.
    pub fn reserve(&mut self, positions: usize) {
        let width = self.kv_heads * self.head_dim;
        let target = positions.saturating_mul(width);
        for l in &mut self.layers {
            l.keys.reserve(target.saturating_sub(l.keys.len()));
            l.values.reserve(target.saturating_sub(l.values.len()));
        }
    }

    /// Drop every cached position but keep the allocations, so a
    /// recovering sequence re-prefills into warm buffers.
    pub fn clear(&mut self) {
        for l in &mut self.layers {
            l.keys.clear();
            l.values.clear();
        }
    }

    /// Total cached bytes at fp16 storage (capacity planning).
    pub fn bytes_fp16(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.keys.len() + l.values.len()) as u64 * 2)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_fetch() {
        let mut c = KvCache::new(2, 2, 4);
        assert!(c.is_empty());
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v: Vec<f32> = (0..8).map(|i| -(i as f32)).collect();
        c.append(0, &k, &v);
        c.append(1, &v, &k);
        assert_eq!(c.len(), 1);
        assert_eq!(c.key(0, 0, 1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(c.value(1, 0, 0), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn grows_with_positions() {
        let mut c = KvCache::new(1, 1, 2);
        for p in 0..5 {
            c.append(0, &[p as f32, 0.0], &[0.0, p as f32]);
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.key(0, 3, 0), &[3.0, 0.0]);
        assert_eq!(c.bytes_fp16(), 5 * 2 * 2 * 2);
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn wrong_width_rejected() {
        KvCache::new(1, 2, 4).append(0, &[0.0; 7], &[0.0; 8]);
    }

    #[test]
    fn shape_accessors() {
        let c = KvCache::new(3, 2, 4);
        assert_eq!(c.num_layers(), 3);
        assert_eq!(c.kv_heads(), 2);
        assert_eq!(c.head_dim(), 4);
    }

    /// Model the dataflow executor's `p % 4 == chip_in_col` sharding: four
    /// caches, position `p` appended to cache `p % 4`, and check that every
    /// global position round-trips from exactly the shard that owns it.
    #[test]
    fn mod4_sharding_round_trips_across_boundaries() {
        const GRID: usize = 4;
        let mut shards: Vec<KvCache> = (0..GRID).map(|_| KvCache::new(2, 1, 2)).collect();
        // 4n - 1, 4n, and 4n + 1 positions all exercise boundary wrap.
        for total in [3usize, 4, 5, 8, 9] {
            for s in shards.iter_mut() {
                *s = KvCache::new(2, 1, 2);
            }
            for p in 0..total {
                let k = [p as f32, 100.0 + p as f32];
                let v = [-(p as f32), 0.5 * p as f32];
                for layer in 0..2 {
                    shards[p % GRID].append(layer, &k, &v);
                }
            }
            for (chip, shard) in shards.iter().enumerate() {
                // Owner shard holds ceil((total - chip) / 4) positions.
                let expected = (total + GRID - 1).saturating_sub(chip) / GRID;
                assert_eq!(shard.len(), expected, "total {total} chip {chip}");
                // Local index l maps back to global position 4l + chip.
                for l in 0..shard.len() {
                    let p = GRID * l + chip;
                    assert_eq!(shard.key(0, l, 0), &[p as f32, 100.0 + p as f32]);
                    assert_eq!(shard.value(1, l, 0), &[-(p as f32), 0.5 * p as f32]);
                }
            }
        }
    }

    /// `clear` forgets every position but keeps shape and allocations, and
    /// the cache refills exactly like a fresh one (the recovery path's
    /// warm re-prefill buffer).
    #[test]
    fn clear_resets_positions_and_refills_like_new() {
        let mut c = KvCache::new(2, 1, 2);
        for p in 0..3 {
            for layer in 0..2 {
                c.append(layer, &[p as f32, 1.0], &[2.0, p as f32]);
            }
        }
        assert_eq!(c.len(), 3);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes_fp16(), 0);
        assert_eq!(c.num_layers(), 2);
        c.append(0, &[9.0, 8.0], &[7.0, 6.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.key(0, 0, 0), &[9.0, 8.0]);
        assert_eq!(c.value(0, 0, 0), &[7.0, 6.0]);
    }

    /// Appending out-of-order across layers keeps per-layer counts
    /// independent until every layer has seen the position.
    #[test]
    fn per_layer_lengths_follow_first_layer() {
        let mut c = KvCache::new(2, 1, 2);
        c.append(0, &[1.0, 2.0], &[3.0, 4.0]);
        // `len` reports layer-0 positions; layer 1 catches up on append.
        assert_eq!(c.len(), 1);
        c.append(1, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.key(1, 0, 0), &[1.0, 2.0]);
    }
}
